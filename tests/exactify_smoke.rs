//! Smoke test for the exact-arithmetic certificate upgrade: run the full
//! numeric pipeline on the toy two-mode spiral, then re-state its Lyapunov
//! claims as exact rational theorems through `exactify_certificates`.
//!
//! This wires the previously library-only `cppll-verify::exactify` module
//! into the end-to-end suite: the certificates being upgraded here are the
//! ones the inevitability pipeline actually produced, not ones synthesised
//! specially for the test.

use cppll::hybrid::{HybridSystem, Jump, Mode};
use cppll::poly::Polynomial;
use cppll::verify::{
    exactify_certificates, ExactifyOptions, InevitabilityVerifier, PipelineOptions, Region,
};

/// Planar two-mode switched system split at `x = 0`, both modes spiralling
/// into the origin, identity jumps on the switching line.
fn two_mode_spiral() -> HybridSystem {
    let right = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
    ];
    let left = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
        Polynomial::from_terms(2, &[(&[1, 0], -0.5), (&[0, 1], -1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("right", right).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("left", left).with_flow_set(vec![x.scale(-1.0)]);
    let guard = vec![Polynomial::var(2, 0)];
    let jumps = vec![
        Jump::identity(0, 1).with_guard_eq(guard.clone()),
        Jump::identity(1, 0).with_guard_eq(guard),
    ];
    HybridSystem::new(2, vec![m0, m1], jumps)
}

#[test]
fn pipeline_certificates_exactify_on_the_toy_system() {
    let sys = two_mode_spiral();
    let mut boundary = Vec::new();
    for i in 0..2 {
        let xi = Polynomial::var(2, i);
        boundary.push(&Polynomial::constant(2, 3.0) - &xi);
        boundary.push(&Polynomial::constant(2, 3.0) + &xi);
    }
    let verifier = InevitabilityVerifier::new(&sys, boundary, Region::ball(2, 2.0));
    let report = verifier
        .verify(&PipelineOptions::degree(2))
        .expect("toy system verifies");
    assert!(report.verdict.is_verified());
    let certs = report
        .certificates
        .as_ref()
        .expect("verified run has certificates");

    // Upgrade the numeric claims on the box |x|, |y| ≤ 2 covering the
    // certified attractive invariant.
    let exact = exactify_certificates(&sys, certs, &[2.0, 2.0], &ExactifyOptions::default())
        .expect("toy certificates exactify");

    // Every claim upgraded: nothing left resting on floating point.
    assert!(exact.complete(), "unproven claims: {}", exact.unproven.len());
    assert!(exact.claims() >= 2, "claims: {}", exact.claims());
    // Decrease must be certified per mode and parameter vertex (the toy
    // system has no parameters, so one vertex per mode).
    assert_eq!(exact.decrease.len(), sys.modes().len());

    // Audit one proof against its exact target: positivity of V − δ(‖x‖²
    // + ‖x‖^deg) for the (shared or per-mode) certificate.
    let delta = ExactifyOptions::default().delta;
    let v = certs.for_mode(0);
    let eps = &Polynomial::norm_squared(2).scale(delta)
        + &Polynomial::norm_squared(2)
            .pow(certs.degree() / 2)
            .scale(delta);
    let target = v - &eps;
    assert!(
        exact.positivity[0].is_valid_for(&target),
        "positivity proof does not re-verify against its target"
    );
}
