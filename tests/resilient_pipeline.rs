//! Resilience of the verification pipeline under injected solver faults:
//! retries rescue transient failures, exhausted retries degrade into
//! partial reports (never panics, never loses earlier stages' results),
//! and deadlines cut runs short cooperatively.

use std::sync::Arc;
use std::time::Duration;

use cppll::hybrid::{HybridSystem, Jump, Mode};
use cppll::poly::Polynomial;
use cppll::sdp::{FaultInjector, FaultKind, FaultPlan, SdpStatus};
use cppll::verify::{
    InevitabilityVerifier, PipelineOptions, PipelineStage, Region, ResilienceConfig, Verdict,
};

/// The same planar two-mode switched system as `toy_inevitability.rs`:
/// both modes spiral into the origin, identity jumps at `x = 0`.
fn two_mode_spiral() -> HybridSystem {
    let right = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
    ];
    let left = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
        Polynomial::from_terms(2, &[(&[1, 0], -0.5), (&[0, 1], -1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("right", right).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("left", left).with_flow_set(vec![x.scale(-1.0)]);
    let guard = vec![Polynomial::var(2, 0)];
    let jumps = vec![
        Jump::identity(0, 1).with_guard_eq(guard.clone()),
        Jump::identity(1, 0).with_guard_eq(guard),
    ];
    HybridSystem::new(2, vec![m0, m1], jumps)
}

fn toy_verifier(sys: &HybridSystem) -> InevitabilityVerifier<'_> {
    let mut boundary = Vec::new();
    for i in 0..2 {
        let xi = Polynomial::var(2, i);
        boundary.push(&Polynomial::constant(2, 3.0) - &xi);
        boundary.push(&Polynomial::constant(2, 3.0) + &xi);
    }
    InevitabilityVerifier::new(sys, boundary, Region::ball(2, 2.0))
}

#[test]
fn retries_rescue_first_solve_faults_in_every_stage() {
    // The first solve of each pipeline stage stalls; one retry per solve
    // must be enough to recover a full Inevitable verdict.
    let sys = two_mode_spiral();
    let verifier = toy_verifier(&sys);
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::new().fault_first_solve_per_stage(FaultKind::Stall),
    ));
    let mut opt = PipelineOptions::degree(2);
    opt.resilience = ResilienceConfig::with_retries(1);
    opt.resilience.fault = Some(injector.clone());
    let report = verifier.verify(&opt).expect("retries absorb the faults");
    assert!(
        report.verdict.is_verified(),
        "verdict: {:?}",
        report.verdict
    );
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert!(injector.fired() >= 1, "no fault was actually injected");
    assert!(
        report.solve_stats.retries >= injector.fired(),
        "every injected fault should have cost a retry: {} faults, stats {}",
        injector.fired(),
        report.solve_stats
    );
    assert_eq!(report.solve_stats.failures, 0);
}

#[test]
fn exhausted_retries_degrade_with_a_failure_report() {
    // Same fault schedule, but no retries allowed: the very first Lyapunov
    // solve fails terminally and the pipeline degrades instead of erroring.
    // Pinned to the legacy compile — under the default support mode a failed
    // reduced attempt falls back to the legacy compile, which absorbs the
    // injected fault (see `pll_resilience.rs` for the support-mode contract).
    let sys = two_mode_spiral();
    let verifier = toy_verifier(&sys);
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::new().fault_first_solve_per_stage(FaultKind::Stall),
    ));
    let mut opt = PipelineOptions::degree(2);
    opt.reduction.mode = cppll::verify::ReduceMode::Legacy;
    opt.resilience.retries = 0;
    opt.resilience.fault = Some(injector.clone());
    let report = verifier.verify(&opt).expect("degrades, does not error");
    match &report.verdict {
        Verdict::Degraded { stage, .. } => assert_eq!(*stage, PipelineStage::Lyapunov),
        other => panic!("expected a degraded verdict, got {other:?}"),
    }
    assert!(report.certificates.is_none());
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    assert_eq!(failure.stage, PipelineStage::Lyapunov);
    assert!(
        !failure.attempts.is_empty(),
        "failure report must carry the attempt log"
    );
    assert_eq!(failure.attempts[0].status, SdpStatus::Stalled);
    assert!(report.solve_stats.failures >= 1);
}

#[test]
fn advection_faults_keep_certificates_and_level_in_the_partial_report() {
    // P1 succeeds; every solve of the advection and escape stages fails.
    // The partial report must still carry the Lyapunov certificates and
    // the attractive-invariant level — degradation never discards what was
    // already proven.
    let sys = two_mode_spiral();
    let verifier = toy_verifier(&sys);
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::new()
            .fault_at_stage("advection", FaultKind::Stall)
            .fault_at_stage("escape", FaultKind::Cholesky),
    ));
    let mut opt = PipelineOptions::degree(2);
    opt.max_advection_iters = 3; // every inclusion check fails anyway
    opt.resilience.fault = Some(injector.clone());
    let report = verifier.verify(&opt).expect("degrades, does not error");
    assert!(
        report.certificates.is_some(),
        "P1 certificates must survive the degradation"
    );
    assert!(
        report.levels.level > 0.0,
        "the AI level must survive the degradation"
    );
    assert!(
        report.verdict.is_degraded(),
        "verdict: {:?}",
        report.verdict
    );
    assert!(!report.failures.is_empty());
    assert!(report
        .failures
        .iter()
        .any(|f| f.stage == PipelineStage::Advection || f.stage == PipelineStage::Escape));
}

#[test]
fn an_expired_deadline_degrades_cooperatively() {
    // A zero deadline means every solve hits the cooperative deadline check
    // on its first iteration; the run degrades at the Lyapunov stage with
    // DeadlineExceeded attempts (which are, by design, not retried).
    let sys = two_mode_spiral();
    let verifier = toy_verifier(&sys);
    let mut opt = PipelineOptions::degree(2);
    opt.resilience.retries = 5; // must not matter: deadline is terminal
    opt.resilience.deadline = Some(Duration::ZERO);
    let report = verifier.verify(&opt).expect("degrades, does not error");
    match &report.verdict {
        Verdict::Degraded { stage, .. } => assert_eq!(*stage, PipelineStage::Lyapunov),
        other => panic!("expected a degraded verdict, got {other:?}"),
    }
    let failure = &report.failures[0];
    assert_eq!(failure.attempts.len(), 1, "deadline must not be retried");
    assert_eq!(failure.attempts[0].status, SdpStatus::DeadlineExceeded);
}
