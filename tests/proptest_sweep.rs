//! Property tests for the sweep engine's two core guarantees:
//!
//! * **Warm-start neutrality** — seeding a cell's advection solves from a
//!   certified neighbour must never change its verdict, and certified cells
//!   must produce the same canonical result digest warm or cold (the seeded
//!   solver falls back to a cold solve whenever the seed is rejected, so
//!   seeding is an accelerator, not an input).
//! * **Bisection soundness** — every `certified`/`failed` cell in an atlas
//!   carries an actual solve record (problem fingerprint, and a digest when
//!   certified), and cells the bisection skipped are only ever labeled
//!   `interior` (with an implied verdict) or `unresolved` — never silently
//!   given a verdict without either a solve or an agreeing bounding
//!   rectangle.

use cppll::verify::sweep::local_cell_solver;
use cppll::verify::{
    run_sweep, run_sweep_with, CellStatus, SweepAxis, SweepOptions, SweepSpec, SweepTarget,
};
use cppll::verify::SystemSpec;
use proptest::prelude::*;

/// A 1D sweep ladder over `$a` in the planar toy template, with the second
/// flow's rate fixed at `b` (always contracting). `a < 0` certifies and
/// `a > 0` fails, so random ranges straddling zero exercise both verdicts
/// and the certified/failed boundary.
fn ladder_spec(amin: f64, amax: f64, cells: usize, b: f64, bisect: bool) -> SweepSpec {
    let template = SystemSpec::from_json_str(&format!(
        r#"{{
          "states": 2,
          "modes": [
            {{"name": "flow", "flow": ["$a x0", "{b} x1"]}}
          ],
          "boundary": ["3 - 1 x0", "3 + 1 x0", "3 - 1 x1", "3 + 1 x1"],
          "initial_radii": [2.0, 2.0],
          "degree": 2
        }}"#
    ))
    .expect("ladder template is valid");
    SweepSpec {
        target: SweepTarget::Spec { template },
        axes: vec![SweepAxis {
            name: "a".into(),
            min: amin,
            max: amax,
            cells,
        }],
        bisect,
        coarse: 0,
        resolution: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Warm-started and cold sweeps agree cell by cell on randomized 1D
    /// parameter ladders: same status everywhere, same digest on every
    /// certified cell.
    #[test]
    fn warm_and_cold_ladders_agree(
        amin in -1.0..-0.2f64,
        amax in 0.2..1.0f64,
        cells in 3..7usize,
        b in -1.5..-0.5f64,
    ) {
        let spec = ladder_spec(amin, amax, cells, b, false);
        spec.validate().expect("spec is valid");
        let opt = SweepOptions::default();

        let warm = run_sweep(&spec, &opt).expect("warm sweep completes");
        // Cold: same solver, but every seed withheld.
        let solver = local_cell_solver(&opt);
        let cold_solver = |cell: usize, prob: &_, _seed: Option<_>| solver(cell, prob, None);
        let cold = run_sweep_with(&spec, &opt, &cold_solver).expect("cold sweep completes");

        // Note `cold` still reports warm-start hits: the pipeline seeds
        // *within* a cell (advection pieces reusing earlier iterates); the
        // withheld seeds here are the cross-cell neighbour ones.
        prop_assert_eq!(warm.cells.len(), cold.cells.len());
        for (w, c) in warm.cells.iter().zip(&cold.cells) {
            prop_assert_eq!(w.status, c.status, "cell ({}, {})", w.ix, w.iy);
            if w.status == CellStatus::Certified {
                prop_assert!(w.digest.is_some());
                prop_assert_eq!(&w.digest, &c.digest, "cell ({}, {})", w.ix, w.iy);
            }
        }
    }

    /// Every verdict in a bisected atlas is backed by a solve record, and
    /// skipped cells are only ever `interior` (with an implied verdict) or
    /// `unresolved`.
    #[test]
    fn bisection_is_sound_on_random_ladders(
        amin in -1.0..-0.2f64,
        amax in 0.2..1.0f64,
        cells in 9..14usize,
        b in -1.5..-0.5f64,
    ) {
        let spec = ladder_spec(amin, amax, cells, b, true);
        let atlas = run_sweep(&spec, &SweepOptions::default()).expect("sweep completes");

        let mut solved = 0;
        for cell in &atlas.cells {
            match cell.status {
                CellStatus::Certified => {
                    solved += 1;
                    prop_assert!(cell.fingerprint.is_some(), "certified cell without a solve");
                    prop_assert!(cell.digest.is_some(), "certified cell without a digest");
                    prop_assert!(cell.implied.is_none());
                }
                CellStatus::Failed => {
                    solved += 1;
                    prop_assert!(cell.fingerprint.is_some(), "failed cell without a solve");
                }
                CellStatus::Interior => {
                    prop_assert!(cell.fingerprint.is_none());
                    prop_assert!(cell.digest.is_none());
                    prop_assert!(cell.implied.is_some(), "interior cell without an implied verdict");
                }
                CellStatus::Unresolved => {
                    prop_assert!(cell.fingerprint.is_none());
                    prop_assert!(cell.digest.is_none());
                }
            }
        }
        // Counter bookkeeping matches the per-cell labels exactly.
        prop_assert_eq!(atlas.counters.cells_certified + atlas.counters.cells_failed, solved);
        prop_assert_eq!(
            solved + atlas.counters.cells_skipped_by_bisection,
            atlas.cells.len()
        );
        // The ladder straddles a = 0, so both verdicts must be present.
        prop_assert!(atlas.counters.cells_certified > 0);
        prop_assert!(atlas.counters.cells_failed > 0);
    }
}
