//! Acceptance scenario from the robustness work: the third-order CP PLL
//! verification survives a fault schedule that stalls the first solve of
//! every pipeline stage when one retry is allowed, and degrades into a
//! structured partial report (not a bare error) when retries are disabled.

use std::sync::Arc;

use cppll::pll::{PllModelBuilder, PllOrder, UncertaintySelection};
use cppll::sdp::{FaultInjector, FaultKind, FaultPlan};
use cppll::verify::{
    InevitabilityVerifier, PipelineOptions, PipelineStage, ReduceMode, ResilienceConfig, Verdict,
};

fn nominal_model() -> cppll::pll::VerificationModel {
    PllModelBuilder::new(PllOrder::Third)
        .with_uncertainty(UncertaintySelection::Nominal)
        .build()
}

#[test]
fn third_order_pll_survives_stage_faults_with_one_retry() {
    let model = nominal_model();
    let verifier = InevitabilityVerifier::for_pll(&model);
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::new().fault_first_solve_per_stage(FaultKind::Stall),
    ));
    let mut opt = PipelineOptions::degree(4);
    opt.resilience = ResilienceConfig::with_retries(1);
    opt.resilience.fault = Some(injector.clone());
    let report = verifier.verify(&opt).expect("retries absorb the faults");
    assert!(
        report.verdict.is_verified(),
        "verdict: {:?}",
        report.verdict
    );
    assert!(report.levels.level > 0.1, "c* = {}", report.levels.level);
    assert!(injector.fired() >= 1, "no fault was injected");
    assert!(
        report.solve_stats.retries >= injector.fired(),
        "faults {} vs stats {}",
        injector.fired(),
        report.solve_stats
    );
    // Note: `solve_stats.failures` may legitimately be nonzero even on a
    // verified run — bisection probes near the feasibility boundary can
    // fail numerically and are absorbed as unsuccessful probes. What must
    // hold is that no stage *degraded*.
    assert!(!report.verdict.is_degraded());
}

#[test]
fn third_order_pll_degrades_without_retries() {
    // The very same schedule with retries disabled: the first Lyapunov
    // solve fails terminally and `verify` returns a partial report with a
    // populated failure log instead of an error. Pinned to the legacy
    // compile: support mode deliberately absorbs a failed first attempt by
    // falling back to the legacy compile (see the companion test below), so
    // the terminal-failure contract is a legacy-supervision property.
    let model = nominal_model();
    let verifier = InevitabilityVerifier::for_pll(&model);
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::new().fault_first_solve_per_stage(FaultKind::Stall),
    ));
    let mut opt = PipelineOptions::degree(4);
    opt.reduction.mode = ReduceMode::Legacy;
    opt.resilience.retries = 0;
    opt.resilience.fault = Some(injector);
    let report = verifier.verify(&opt).expect("degrades, does not error");
    match &report.verdict {
        Verdict::Degraded { stage, .. } => assert_eq!(*stage, PipelineStage::Lyapunov),
        other => panic!("expected a degraded verdict, got {other:?}"),
    }
    assert!(!report.failures.is_empty());
    assert!(!report.failures[0].attempts.is_empty());
}

#[test]
fn support_mode_absorbs_stage_faults_even_without_retries() {
    // Under the default support-reduced compile the same fault schedule is
    // survivable with zero retries: a failed reduced attempt falls back to
    // the legacy compile (screen miss on verdict-critical solves, trusted
    // fallback on bisection probes), which acts as a second independent
    // attempt with a differently-conditioned program.
    let model = nominal_model();
    let verifier = InevitabilityVerifier::for_pll(&model);
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::new().fault_first_solve_per_stage(FaultKind::Stall),
    ));
    let mut opt = PipelineOptions::degree(4);
    opt.resilience.retries = 0;
    opt.resilience.fault = Some(injector.clone());
    let report = verifier.verify(&opt).expect("fallback absorbs the faults");
    assert!(
        report.verdict.is_verified(),
        "verdict: {:?}",
        report.verdict
    );
    assert!(injector.fired() >= 1, "no fault was injected");
    assert!(report.levels.level > 0.1, "c* = {}", report.levels.level);
}
