//! The two robustness encodings (vertex enumeration and the paper's
//! S-procedure over the parameter box) must agree on conclusions, and the
//! certificates each produces must be valid under the *other* encoding's
//! acceptance check.

use cppll::hybrid::{HybridSystem, Mode, ParamBox};
use cppll::poly::Polynomial;
use cppll::verify::{LyapunovOptions, LyapunovSynthesizer, RobustEncoding};

/// Uncertain planar system ẋ = −u·x + y, ẏ = −u·y with u ∈ [0.5, 1.5]
/// (ring: 2 states + 1 parameter).
fn uncertain_spiral() -> HybridSystem {
    let f = vec![
        Polynomial::from_terms(3, &[(&[1, 0, 1], -1.0), (&[0, 1, 0], 1.0)]),
        Polynomial::from_terms(3, &[(&[0, 1, 1], -1.0)]),
    ];
    let g = vec![
        &Polynomial::constant(2, 2.0) - &Polynomial::var(2, 0),
        &Polynomial::constant(2, 2.0) + &Polynomial::var(2, 0),
    ];
    HybridSystem::with_params(
        2,
        vec![Mode::new("m", f).with_flow_set(g)],
        vec![],
        ParamBox::new(vec![0.5], vec![1.5]),
    )
}

#[test]
fn vertex_and_sprocedure_encodings_agree() {
    let sys = uncertain_spiral();
    let vert = LyapunovSynthesizer::new(&sys)
        .synthesize(&LyapunovOptions::degree(2))
        .expect("vertex encoding feasible");
    let sproc = LyapunovSynthesizer::new(&sys)
        .synthesize(&LyapunovOptions::degree(2).with_robust(RobustEncoding::SProcedure))
        .expect("s-procedure encoding feasible");
    // Both certificates decrease at both box vertices across samples.
    for certs in [&vert, &sproc] {
        for &u in &[0.5, 1.5, 1.0] {
            for &(x, y) in &[(1.0, 0.5), (-0.5, 1.0), (0.3, -0.7)] {
                let (v, vdot) = certs.check_at(&sys, 0, &[x, y], &[u]);
                assert!(v > 0.0, "V must be positive at ({x},{y})");
                assert!(vdot < 0.0, "V̇ must be negative at ({x},{y}), u={u}");
            }
        }
    }
    // Both certificates live in the state-only ring.
    assert_eq!(vert.for_mode(0).nvars(), 2);
    assert_eq!(sproc.for_mode(0).nvars(), 2);
}

#[test]
fn both_encodings_reject_vertex_unstable_systems() {
    // ẋ = u·x with u ∈ [−1, 1]: unstable at the u = 1 vertex. Neither
    // encoding may produce a certificate.
    let f = vec![Polynomial::from_terms(2, &[(&[1, 1], 1.0)])];
    let g = vec![
        &Polynomial::constant(1, 1.0) - &Polynomial::var(1, 0),
        &Polynomial::constant(1, 1.0) + &Polynomial::var(1, 0),
    ];
    let sys = HybridSystem::with_params(
        1,
        vec![Mode::new("m", f).with_flow_set(g)],
        vec![],
        ParamBox::new(vec![-1.0], vec![1.0]),
    );
    assert!(LyapunovSynthesizer::new(&sys)
        .synthesize(&LyapunovOptions::degree(2))
        .is_err());
    assert!(LyapunovSynthesizer::new(&sys)
        .synthesize(&LyapunovOptions::degree(2).with_robust(RobustEncoding::SProcedure))
        .is_err());
}
