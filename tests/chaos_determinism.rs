//! Chaos determinism across thread counts: a pipeline run under a fixed
//! fault schedule must produce the same result digest, the same attempt
//! log, and fire the same number of injected faults no matter how many SDP
//! worker threads it uses. Fault injection keys off deterministic solve
//! indices — never off scheduling — so chaos tests are reproducible on any
//! machine.

use std::sync::Arc;

use cppll::hybrid::{HybridSystem, Jump, Mode};
use cppll::poly::Polynomial;
use cppll::verify::{
    FaultInjector, FaultKind, FaultPlan, InevitabilityVerifier, PipelineOptions, Region,
};

/// Planar two-mode switched system from `toy_inevitability.rs` — cheap
/// enough to run the pipeline once per thread count.
fn two_mode_spiral() -> HybridSystem {
    let right = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
    ];
    let left = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
        Polynomial::from_terms(2, &[(&[1, 0], -0.5), (&[0, 1], -1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("right", right).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("left", left).with_flow_set(vec![x.scale(-1.0)]);
    let guard = vec![Polynomial::var(2, 0)];
    let jumps = vec![
        Jump::identity(0, 1).with_guard_eq(guard.clone()),
        Jump::identity(1, 0).with_guard_eq(guard),
    ];
    HybridSystem::new(2, vec![m0, m1], jumps)
}

fn toy_boundary() -> Vec<Polynomial> {
    let mut boundary = Vec::new();
    for i in 0..2 {
        let xi = Polynomial::var(2, i);
        boundary.push(&Polynomial::constant(2, 3.0) - &xi);
        boundary.push(&Polynomial::constant(2, 3.0) + &xi);
    }
    boundary
}

/// One faulted run at `threads` SDP worker threads: transient stalls on the
/// first solve of every stage, absorbed by retries. Returns the digest, the
/// canonical attempt log, and how many faults actually fired.
fn chaotic_run(threads: usize) -> (String, Vec<String>, usize) {
    cppll::par::set_threads(threads);
    let sys = two_mode_spiral();
    let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::default().fault_first_solve_per_stage(FaultKind::Stall),
    ));
    let mut opt = PipelineOptions::degree(2);
    opt.resilience.retries = 2;
    opt.resilience.fault = Some(Arc::clone(&injector));
    let report = verifier.verify(&opt).expect("toy verifies through the chaos");
    assert!(report.verdict.is_verified());
    let log: Vec<String> = report
        .failures
        .iter()
        .flat_map(|f| f.attempts.iter().map(|a| a.log_line()))
        .collect();
    (report.result_digest(), log, injector.fired())
}

#[test]
fn chaotic_pipeline_is_deterministic_across_thread_counts() {
    let (digest_1, log_1, fired_1) = chaotic_run(1);
    assert!(fired_1 > 0, "the fault schedule must actually fire");
    for threads in [2, 4, 8] {
        let (digest, log, fired) = chaotic_run(threads);
        assert_eq!(
            digest, digest_1,
            "result digest diverged at {threads} threads"
        );
        assert_eq!(log, log_1, "attempt log diverged at {threads} threads");
        assert_eq!(
            fired, fired_1,
            "fault count diverged at {threads} threads"
        );
    }
    // Leave the global thread pool setting as the test found it.
    cppll::par::set_threads(0);
}
