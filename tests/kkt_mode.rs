//! Cross-mode agreement for the KKT factorisation kernels.
//!
//! `--kkt-mode schur` (serial blocked LDLᵀ) and `--kkt-mode augmented`
//! (packed parallel LDLᵀ) are required to be *bit-identical*, not merely
//! numerically close: both kernels apply the same floating-point operation
//! sequence and only differ in memory layout and scheduling. These tests pin
//! that contract at the SDP level (objectives, multipliers, iterates) and at
//! the pipeline level (verdict and result digest of a full toy run).

use cppll::hybrid::{HybridSystem, Jump, Mode};
use cppll::poly::Polynomial;
use cppll::sdp::{set_default_kkt_mode, KktMode, SdpProblem, SolverOptions};
use cppll::verify::{InevitabilityVerifier, PipelineOptions, Region};

/// Planar two-mode switched system (same as `toy_inevitability.rs`).
fn two_mode_spiral() -> HybridSystem {
    let right = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
    ];
    let left = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
        Polynomial::from_terms(2, &[(&[1, 0], -0.5), (&[0, 1], -1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("right", right).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("left", left).with_flow_set(vec![x.scale(-1.0)]);
    let guard = vec![Polynomial::var(2, 0)];
    let jumps = vec![
        Jump::identity(0, 1).with_guard_eq(guard.clone()),
        Jump::identity(1, 0).with_guard_eq(guard),
    ];
    HybridSystem::new(2, vec![m0, m1], jumps)
}

/// A small strictly-feasible SDP with free variables so both the Schur `M`
/// block and the quasidefinite tail of the KKT system are exercised.
fn toy_sdp() -> SdpProblem {
    let mut p = SdpProblem::new();
    let b = p.add_psd_block(4);
    p.set_block_cost_identity(b, 1.0);
    let u = p.add_free_var(0.5);
    for k in 0..4 {
        let c = p.add_constraint(1.0 + 0.25 * k as f64);
        p.set_entry(c, b, k, k, 1.0);
        if k % 2 == 0 {
            p.set_free_coeff(c, u, 1.0);
        }
    }
    let c = p.add_constraint(0.1);
    p.set_entry(c, b, 0, 1, 1.0);
    p
}

#[test]
fn kkt_modes_agree_bitwise_on_toy_sdp() {
    let solve = |mode: KktMode| {
        let opts = SolverOptions {
            kkt_mode: mode,
            ..SolverOptions::default()
        };
        toy_sdp().solve(&opts)
    };
    let base = solve(KktMode::Schur);
    assert!(base.is_ok(), "baseline solve failed: {base}");
    for mode in [KktMode::Auto, KktMode::Augmented] {
        let sol = solve(mode);
        assert_eq!(sol.status, base.status, "status differs in {mode:?}");
        assert_eq!(sol.iterations, base.iterations);
        assert_eq!(
            sol.primal_objective.to_bits(),
            base.primal_objective.to_bits(),
            "objective differs in {mode:?}"
        );
        assert_eq!(sol.dual_objective.to_bits(), base.dual_objective.to_bits());
        for (a, b) in sol.y.iter().zip(&base.y) {
            assert_eq!(a.to_bits(), b.to_bits(), "y differs in {mode:?}");
        }
        for (a, b) in sol.free.iter().zip(&base.free) {
            assert_eq!(a.to_bits(), b.to_bits(), "free vars differ in {mode:?}");
        }
        for (xa, xb) in sol.x.iter().zip(&base.x) {
            for (a, b) in xa.as_slice().iter().zip(xb.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "X differs in {mode:?}");
            }
        }
    }
}

#[test]
fn kkt_modes_agree_on_toy_pipeline_verdict_and_digest() {
    let run = || {
        let sys = two_mode_spiral();
        let mut boundary = Vec::new();
        for i in 0..2 {
            let xi = Polynomial::var(2, i);
            boundary.push(&Polynomial::constant(2, 3.0) - &xi);
            boundary.push(&Polynomial::constant(2, 3.0) + &xi);
        }
        let verifier =
            InevitabilityVerifier::new(&sys, boundary, Region::ball(2, 2.0));
        verifier
            .verify(&PipelineOptions::degree(2))
            .expect("toy system verifies")
    };

    // The process-global default is what the CLI's --kkt-mode flag sets;
    // drive the pipeline through it the same way.
    set_default_kkt_mode(KktMode::Schur);
    let schur = run();
    set_default_kkt_mode(KktMode::Augmented);
    let augmented = run();
    set_default_kkt_mode(KktMode::Auto);

    assert_eq!(
        format!("{:?}", schur.verdict),
        format!("{:?}", augmented.verdict)
    );
    assert_eq!(
        schur.levels.level.to_bits(),
        augmented.levels.level.to_bits(),
        "invariant level differs between KKT modes"
    );
    assert_eq!(
        schur.result_digest(),
        augmented.result_digest(),
        "result digest differs between KKT modes"
    );
}

#[test]
fn kkt_mode_parse_round_trips() {
    for mode in [KktMode::Auto, KktMode::Schur, KktMode::Augmented] {
        assert_eq!(KktMode::parse(mode.as_str()), Some(mode));
    }
    assert_eq!(KktMode::parse("dense"), None);
}
