//! Self-healing journal acceptance tests: a run journal whose *final*
//! record was torn — by a crash mid-append, a supervisor kill, or filesystem
//! damage — must be recovered by truncating to the last valid framed record
//! and resuming, producing a report bit-identical to an uninterrupted run.
//! Damage anywhere else (mid-file) stays a hard error: the framing makes
//! tail damage provably distinguishable from interior damage.

use std::path::PathBuf;
use std::sync::Arc;

use cppll::hybrid::{HybridSystem, Jump, Mode};
use cppll::poly::Polynomial;
use cppll::verify::{
    CheckpointConfig, CheckpointError, CrashMode, FaultInjector, FaultPlan, InevitabilityVerifier,
    JournalFault, PipelineOptions, Region, TraceLevel, TraceRecorder, VerifyError,
};

/// Planar two-mode switched system from `toy_inevitability.rs` — cheap
/// enough to run the pipeline several times per test.
fn two_mode_spiral() -> HybridSystem {
    let right = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
    ];
    let left = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
        Polynomial::from_terms(2, &[(&[1, 0], -0.5), (&[0, 1], -1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("right", right).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("left", left).with_flow_set(vec![x.scale(-1.0)]);
    let guard = vec![Polynomial::var(2, 0)];
    let jumps = vec![
        Jump::identity(0, 1).with_guard_eq(guard.clone()),
        Jump::identity(1, 0).with_guard_eq(guard),
    ];
    HybridSystem::new(2, vec![m0, m1], jumps)
}

fn toy_boundary() -> Vec<Polynomial> {
    let mut boundary = Vec::new();
    for i in 0..2 {
        let xi = Polynomial::var(2, i);
        boundary.push(&Polynomial::constant(2, 3.0) - &xi);
        boundary.push(&Polynomial::constant(2, 3.0) + &xi);
    }
    boundary
}

fn runs_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cppll-selfheal-tests").join(test);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Chops `chop` bytes off the end of a file.
fn chop_tail(path: &PathBuf, chop: u64) {
    let len = std::fs::metadata(path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.set_len(len.saturating_sub(chop)).unwrap();
}

#[test]
fn torn_journal_tail_is_recovered_and_resume_matches_plain_run() {
    let dir = runs_dir("torn-tail");
    let sys = two_mode_spiral();
    let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));

    let plain = verifier
        .verify(&PipelineOptions::degree(2))
        .expect("toy verifies");

    // Complete a checkpointed run, then vandalise the journal tail: the
    // last record loses its end, exactly like a torn final append.
    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir));
    verifier.verify(&opt).expect("checkpointed toy verifies");
    let journal = dir.join("toy/journal.jsonl");
    chop_tail(&journal, 17);

    let recorder = TraceRecorder::new(TraceLevel::Stage);
    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir).resuming());
    opt.trace = Some(recorder.tracer());
    let resumed = verifier.verify(&opt).expect("recovered journal resumes");

    assert_eq!(
        resumed.canonical_result_json(),
        plain.canonical_result_json(),
        "self-healed resume must reproduce the plain result bit for bit"
    );
    assert_eq!(
        resumed.resume.journal_recovered_records, 1,
        "exactly the torn final record is dropped: {:?}",
        resumed.resume
    );
    // The torn stage is simply recomputed.
    assert!(resumed.resume.stages_fresh >= 1, "{:?}", resumed.resume);
    assert_eq!(recorder.counter_total("journal_recovered"), 1);

    // The healed journal is fully valid again: a second resume replays
    // everything without recovery.
    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir).resuming());
    let again = verifier.verify(&opt).expect("healed journal resumes");
    assert_eq!(again.resume.journal_recovered_records, 0);
    assert_eq!(again.resume.stages_fresh, 0);
    assert_eq!(again.canonical_result_json(), plain.canonical_result_json());
}

#[test]
fn mid_file_journal_damage_is_a_hard_error_not_a_silent_heal() {
    let dir = runs_dir("mid-file");
    let sys = two_mode_spiral();
    let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));

    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir));
    verifier.verify(&opt).expect("checkpointed toy verifies");

    // Flip a payload byte in an interior record: the CRC catches it, and
    // because later records exist, truncating would silently discard good
    // work — this must be a hard Corrupt error instead.
    let journal = dir.join("toy/journal.jsonl");
    let mut bytes = std::fs::read(&journal).unwrap();
    let lines: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == b'\n').then_some(i))
        .collect();
    assert!(lines.len() >= 3, "need header + at least two records");
    let target = lines[0] + 40; // inside the first record line
    bytes[target] ^= 0x01;
    std::fs::write(&journal, bytes).unwrap();

    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir).resuming());
    match verifier.verify(&opt) {
        Err(VerifyError::Checkpoint {
            source: CheckpointError::Corrupt { line, .. },
        }) => assert_eq!(line, 2, "damage was in the first record (journal line 2)"),
        other => panic!("expected a corrupt-journal rejection, got {other:?}"),
    }
}

#[test]
fn injected_enospc_fails_cleanly_and_the_journal_resumes() {
    let dir = runs_dir("enospc");
    let sys = two_mode_spiral();
    let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));

    let plain = verifier
        .verify(&PipelineOptions::degree(2))
        .expect("toy verifies");

    // The second journal append hits a full disk: the run must fail with a
    // checkpoint error (not a panic, not a silent loss).
    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir));
    opt.resilience.fault = Some(Arc::new(FaultInjector::new(
        FaultPlan::default().fault_journal_append(1, JournalFault::Enospc),
    )));
    match verifier.verify(&opt) {
        Err(VerifyError::Checkpoint {
            source: CheckpointError::Io { source, .. },
        }) => assert_eq!(source.raw_os_error(), Some(28), "ENOSPC"),
        other => panic!("expected a journal I/O failure, got {other:?}"),
    }

    // The failed append wrote nothing: the journal is still valid, and a
    // resume (with space back) completes and matches the plain run.
    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir).resuming());
    let resumed = verifier.verify(&opt).expect("resume after ENOSPC");
    assert_eq!(resumed.resume.journal_recovered_records, 0);
    assert_eq!(resumed.canonical_result_json(), plain.canonical_result_json());
}

#[test]
fn in_process_torn_write_crash_heals_on_resume() {
    let dir = runs_dir("torn-write");
    let sys = two_mode_spiral();

    // The process dies mid-append, leaving half a framed record on disk —
    // the classic torn write the CRC framing exists for.
    let crashed = {
        let sys = sys.clone();
        let dir = dir.clone();
        std::thread::spawn(move || {
            let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));
            let mut opt = PipelineOptions::degree(2);
            opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir));
            opt.resilience.fault = Some(Arc::new(FaultInjector::new(
                FaultPlan::default().fault_journal_append(
                    1,
                    JournalFault::TornWrite {
                        keep_bytes: 25,
                        then: CrashMode::Panic,
                    },
                ),
            )));
            let _ = verifier.verify(&opt);
        })
        .join()
    };
    assert!(crashed.is_err(), "the torn write must kill the run");
    let journal = dir.join("toy/journal.jsonl");
    let text = std::fs::read_to_string(&journal).unwrap();
    assert!(
        !text.ends_with('\n'),
        "the tail must actually be torn: {text:?}"
    );

    let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));
    let plain = verifier
        .verify(&PipelineOptions::degree(2))
        .expect("toy verifies");
    let recorder = TraceRecorder::new(TraceLevel::Stage);
    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir).resuming());
    opt.trace = Some(recorder.tracer());
    let resumed = verifier.verify(&opt).expect("torn journal heals on resume");
    assert_eq!(resumed.resume.journal_recovered_records, 1);
    assert_eq!(recorder.counter_total("journal_recovered"), 1);
    assert_eq!(resumed.canonical_result_json(), plain.canonical_result_json());
    assert!(resumed.verdict.is_verified());
}
