//! Cross-crate consistency checks that exercise the whole stack from
//! polynomial arithmetic down to the interior-point solver on instances
//! with known answers.

use cppll::poly::Polynomial;
use cppll::sos::{
    check_inclusion, maximize_bisect, InclusionOptions, PolyExpr, SosOptions, SosProgram,
};

/// Global minimum of a univariate quartic via SOS: max c s.t. p − c ∈ Σ.
#[test]
fn univariate_minimum_matches_calculus() {
    // p(x) = x⁴ − 4x³ + 6x² − 4x + 5 = (x−1)⁴ + 4 ⇒ min = 4 at x = 1.
    let p = Polynomial::from_terms(
        1,
        &[
            (&[4], 1.0),
            (&[3], -4.0),
            (&[2], 6.0),
            (&[1], -4.0),
            (&[0], 5.0),
        ],
    );
    let r = maximize_bisect(0.0, 10.0, 1e-4, |c| {
        let mut prog = SosProgram::new(1);
        let expr = PolyExpr::from(&p - &Polynomial::constant(1, c));
        prog.require_sos(expr);
        prog.solve(&SosOptions::default()).is_ok()
    });
    let c = r.best.expect("p is bounded below");
    assert!((c - 4.0).abs() < 1e-2, "min = {c}, expected 4");
}

/// Constrained positivity via the S-procedure against a known threshold.
#[test]
fn constrained_bound_on_interval() {
    // p(x) = x² − x on {0 ≤ x ≤ 1} has minimum −1/4.
    let p = Polynomial::from_terms(1, &[(&[2], 1.0), (&[1], -1.0)]);
    let x = Polynomial::var(1, 0);
    let domain = vec![x.clone(), &Polynomial::constant(1, 1.0) - &x];
    let r = maximize_bisect(-2.0, 1.0, 1e-4, |c| {
        let mut prog = SosProgram::new(1);
        let expr = PolyExpr::from(&p - &Polynomial::constant(1, c));
        prog.require_nonneg_on(expr, &domain, 1);
        prog.solve(&SosOptions::default()).is_ok()
    });
    let c = r.best.expect("bounded below on the interval");
    assert!((c + 0.25).abs() < 1e-2, "min = {c}, expected -0.25");
}

/// Inclusion chains must be transitive and asymmetric.
#[test]
fn inclusion_chain_transitivity() {
    let disc =
        |r2: f64| -> Polynomial { &Polynomial::norm_squared(2) - &Polynomial::constant(2, r2) };
    let small = disc(0.5);
    let mid = disc(2.0);
    let big = disc(8.0);
    let opt = InclusionOptions::default();
    assert!(check_inclusion(&small, &mid, &[], &opt));
    assert!(check_inclusion(&mid, &big, &[], &opt));
    assert!(check_inclusion(&small, &big, &[], &opt));
    assert!(!check_inclusion(&big, &small, &[], &opt));
    assert!(!check_inclusion(&mid, &small, &[], &opt));
}

/// The SOS relaxation of a copositivity-style instance: the Choi–Lam-like
/// quartic `x⁴ + y⁴ + 1 − 3x²y²·t` stops being SOS between t = 2/3 and
/// t = 1 even while still nonnegative near the AM–GM threshold; the solver
/// must find the SOS boundary consistently by bisection.
#[test]
fn sos_boundary_is_monotone() {
    let is_sos = |t: f64| {
        let p = Polynomial::from_terms(
            2,
            &[
                (&[4, 0], 1.0),
                (&[0, 4], 1.0),
                (&[0, 0], 1.0),
                (&[2, 2], -3.0 * t),
            ],
        );
        let mut prog = SosProgram::new(2);
        prog.require_sos(p.into());
        prog.solve(&SosOptions::default()).is_ok()
    };
    // By AM–GM, nonnegative for t ≤ 1; SOS threshold is somewhere in (0, 1].
    assert!(is_sos(0.3));
    assert!(!is_sos(1.2));
    let r = maximize_bisect(0.0, 1.2, 1e-3, is_sos);
    let boundary = r.best.expect("sos for small t");
    assert!(
        (0.3..=1.01).contains(&boundary),
        "sos boundary at t = {boundary}"
    );
    // Monotonicity sanity: below the boundary stays SOS.
    assert!(is_sos(boundary * 0.9));
}

/// Polynomial calculus consistency against the SOS layer: the Lie-derivative
/// expression compiled by the program equals the numeric Lie derivative of
/// the recovered certificate.
#[test]
fn compiled_lie_derivative_matches_numeric() {
    let f = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -2.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -3.0)]),
    ];
    let mut prog = SosProgram::new(2);
    let v = prog.new_poly_of_degree(2, 2);
    let eps = Polynomial::norm_squared(2).scale(1e-2);
    prog.require_sos(prog.poly(v).sub(&eps.clone().into()));
    prog.require_sos(prog.poly_lie_derivative(v, &f).neg().sub(&eps.into()));
    let sol = prog.solve(&SosOptions::default()).expect("stable system");
    let vp = sol.poly_value(v);
    // The numeric Lie derivative must indeed be negative where certified.
    for &(x, y) in &[(1.0, 0.0), (0.0, 1.0), (-1.0, 2.0), (0.5, -0.5)] {
        let vd = vp.lie_derivative(&f).eval(&[x, y]);
        assert!(vd < 0.0, "V̇({x},{y}) = {vd}");
    }
}
