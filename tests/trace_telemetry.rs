//! Acceptance tests for the `cppll-trace` observability subsystem: the
//! golden span-tree shape of a traced third-order PLL run, bit-identical
//! results with tracing on vs off at every solver thread count, retry and
//! backoff counters under injected faults, and replay events on resumed
//! checkpointed runs. Tracing is read-only with respect to the numerics,
//! so every test here also pins the result digest across trace levels.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cppll::hybrid::{HybridSystem, Jump, Mode};
use cppll::pll::{PllModelBuilder, PllOrder};
use cppll::poly::Polynomial;
use cppll::sdp::{FaultInjector, FaultKind, FaultPlan, SdpProblem, SolverOptions};
use cppll::verify::{
    check_lane_monotonic, CheckpointConfig, CrashMode, EventKind, InevitabilityVerifier,
    PipelineOptions, Region, TraceLevel, TraceRecorder, Tracer,
};
use cppll_trace::assert_span_tree;
use proptest::prelude::*;

/// The planar two-mode switched system from `toy_inevitability.rs` — cheap
/// enough to run the pipeline several times per test.
fn two_mode_spiral() -> HybridSystem {
    let right = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
    ];
    let left = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
        Polynomial::from_terms(2, &[(&[1, 0], -0.5), (&[0, 1], -1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("right", right).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("left", left).with_flow_set(vec![x.scale(-1.0)]);
    let guard = vec![Polynomial::var(2, 0)];
    let jumps = vec![
        Jump::identity(0, 1).with_guard_eq(guard.clone()),
        Jump::identity(1, 0).with_guard_eq(guard),
    ];
    HybridSystem::new(2, vec![m0, m1], jumps)
}

fn toy_boundary() -> Vec<Polynomial> {
    let mut boundary = Vec::new();
    for i in 0..2 {
        let xi = Polynomial::var(2, i);
        boundary.push(&Polynomial::constant(2, 3.0) - &xi);
        boundary.push(&Polynomial::constant(2, 3.0) + &xi);
    }
    boundary
}

/// A fresh runs directory for one test, wiped before use.
fn runs_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cppll-trace-tests").join(test);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The golden-trace regression: a third-order PLL run at `solve` level has
/// the documented span-tree shape (pipeline → lyapunov → levelset →
/// advection steps, escape only when advection does not suffice), carries
/// no iteration instants, and its result digest is the same golden value
/// whether tracing is on or off.
#[test]
fn golden_trace_third_order_pll_at_solve_level() {
    // Golden digest of the default run: support-driven reduction settles the
    // level bisection on a different (equally certified) c* than the legacy
    // compile, so this pin moved when reduction became the default. The
    // legacy digest c31e1167d4a9bf69 is still pinned by the `--no-reduce`
    // CLI path (see `crates/cli/tests`).
    const GOLDEN_DIGEST: &str = "5b549b7bcc741218";

    let model = PllModelBuilder::new(PllOrder::Third).build();
    let verifier = InevitabilityVerifier::for_pll(&model);

    let untraced = verifier
        .verify(&PipelineOptions::degree(4))
        .expect("third-order PLL verifies");
    assert!(untraced.verdict.is_verified());

    let rec = TraceRecorder::new(TraceLevel::Solve);
    let mut opt = PipelineOptions::degree(4);
    opt.trace = Some(rec.tracer());
    let traced = verifier.verify(&opt).expect("third-order PLL verifies traced");

    assert_eq!(
        untraced.result_digest(),
        GOLDEN_DIGEST,
        "untraced third-order digest drifted from the golden value"
    );
    assert_eq!(
        traced.result_digest(),
        GOLDEN_DIGEST,
        "tracing must not change the result digest"
    );

    assert_span_tree!(
        rec,
        "pipeline\n\
         \x20 lyapunov\n\
         \x20   sos_solve+\n\
         \x20     attempt+\n\
         \x20       sdp_solve\n\
         \x20 levelset\n\
         \x20   sos_solve+\n\
         \x20     attempt+\n\
         \x20       sdp_solve\n\
         \x20 advection\n\
         \x20   advection_step+\n\
         \x20     sos_solve*\n\
         \x20       attempt+\n\
         \x20         sdp_solve\n\
         \x20 escape*\n\
         \x20   sos_solve*\n\
         \x20     attempt+\n\
         \x20       sdp_solve"
    );

    // Solve level records solver spans but no per-iteration instants.
    assert!(rec.spans_named("sdp_solve") > 0);
    assert!(rec.instants_named("iteration").is_empty());
    check_lane_monotonic(&rec.events()).expect("lane ordering invariant");
}

/// Fault-injection telemetry: a plan forcing exactly two retryable solver
/// failures produces exactly two `retry` counter increments, and — with
/// the pipeline deadline already expired — the planned exponential backoff
/// (10 ms, then 20 ms) is clamped to the zero remaining budget in the
/// emitted `backoff` instants (the PR-2 supervisor fix).
#[test]
fn two_retryable_faults_emit_two_retries_with_deadline_clamped_backoff() {
    let sys = two_mode_spiral();
    let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));

    let rec = TraceRecorder::new(TraceLevel::Solve);
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::new()
            .fault_at_call(0, FaultKind::Stall)
            .fault_at_call(1, FaultKind::Stall),
    ));
    let mut opt = PipelineOptions::degree(2);
    opt.trace = Some(rec.tracer());
    // Pinned to the legacy compile: under support mode the first faulted
    // attempt is absorbed by the reduced→legacy fallback (a mode switch,
    // not a retry), which would change the retry/backoff counts this test
    // pins down.
    opt.reduction.mode = cppll::verify::ReduceMode::Legacy;
    opt.resilience.retries = 2;
    opt.resilience.deadline = Some(Duration::ZERO);
    opt.resilience.fault = Some(injector.clone());

    // Both faulted attempts are retried; the third attempt hits the expired
    // deadline (not retryable) and the run degrades instead of erroring.
    let report = verifier.verify(&opt).expect("degrades, does not error");
    assert!(report.verdict.is_degraded(), "{:?}", report.verdict);
    assert_eq!(injector.fired(), 2, "both planned faults must fire");

    assert_eq!(rec.counter_total("retry"), 2);
    assert_eq!(rec.counter_total("backoff"), 2);
    assert_eq!(rec.counter_total("fault_injected"), 2);

    let backoffs = rec.instants_named("backoff");
    assert_eq!(backoffs.len(), 2, "one backoff instant per retry");
    assert_eq!(backoffs[0].field_f64("planned_ms"), Some(10.0));
    assert_eq!(backoffs[1].field_f64("planned_ms"), Some(20.0));
    for b in &backoffs {
        assert_eq!(
            b.field_f64("clamped_ms"),
            Some(0.0),
            "an expired deadline must clamp the planned backoff to zero"
        );
    }
}

/// Checkpoint/resume telemetry: a run resumed after a mid-advection crash
/// emits one `stage_replayed` event per journal-replayed stage — matching
/// `ResumeSummary::stages_replayed` exactly — and never re-emits solver
/// spans or iteration instants for those replayed stages.
#[test]
fn resumed_run_emits_stage_replayed_events_and_no_solver_events_for_replayed_stages() {
    let dir = runs_dir("resume-trace");
    let sys = two_mode_spiral();

    // Crash (panic) at the first advection inclusion solve: the journal
    // keeps the Lyapunov and level-set stages.
    let crashed = {
        let sys = sys.clone();
        let dir = dir.clone();
        std::thread::spawn(move || {
            let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));
            let mut opt = PipelineOptions::degree(2);
            opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir));
            opt.resilience.fault = Some(Arc::new(FaultInjector::new(
                FaultPlan::default().crash_at_stage_solve("advection", 0, CrashMode::Panic),
            )));
            let _ = verifier.verify(&opt);
        })
        .join()
    };
    assert!(crashed.is_err(), "injected crash should panic the run");

    let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));
    let plain = verifier
        .verify(&PipelineOptions::degree(2))
        .expect("toy verifies");

    let rec = TraceRecorder::new(TraceLevel::Iter);
    let mut opt = PipelineOptions::degree(2);
    opt.trace = Some(rec.tracer());
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir).resuming());
    let resumed = verifier.verify(&opt).expect("resume completes the run");

    assert!(resumed.verdict.is_verified());
    assert_eq!(
        resumed.result_digest(),
        plain.result_digest(),
        "iter-level tracing must not change the resumed result"
    );
    assert!(resumed.resume.stages_replayed >= 2, "{:?}", resumed.resume);

    // One counter increment and one instant per replayed stage.
    assert_eq!(
        rec.counter_total("stage_replayed") as usize,
        resumed.resume.stages_replayed
    );
    assert_eq!(
        rec.instants_named("stage_replayed").len(),
        resumed.resume.stages_replayed
    );

    // Replayed stages never re-emit solver work: their stage spans contain
    // no child spans at all, while the freshly-run advection stage does.
    let forest = rec.span_tree();
    assert_eq!(forest.len(), 1, "one pipeline root span");
    let pipeline = &forest[0];
    for stage in &pipeline.children {
        match stage.name.as_str() {
            "lyapunov" | "levelset" => assert!(
                stage.children.is_empty(),
                "replayed stage '{}' re-emitted solver spans: {:?}",
                stage.name,
                stage.children.iter().map(|c| &c.name).collect::<Vec<_>>()
            ),
            "advection" => assert!(
                !stage.children.is_empty(),
                "fresh advection stage should carry solver work"
            ),
            _ => {}
        }
    }
    // The fresh tail did run SDP solves at iteration granularity.
    assert!(!rec.instants_named("iteration").is_empty());
}

/// A strictly feasible SDP: minimise `tr X` over a 5×5 block with fixed
/// diagonal and one fixed off-diagonal entry.
fn proptest_problem(diag: &[f64], off: f64) -> SdpProblem {
    let mut p = SdpProblem::new();
    let b = p.add_psd_block(diag.len());
    p.set_block_cost_identity(b, 1.0);
    for (k, &d) in diag.iter().enumerate() {
        let c = p.add_constraint(d);
        p.set_entry(c, b, k, k, 1.0);
    }
    let c = p.add_constraint(off);
    p.set_entry(c, b, 0, 1, 1.0);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For 1/2/4/8 solver threads: the traced solve is bit-identical to
    /// the untraced one, the JSONL export is well-formed line by line,
    /// and event ordering is monotonic within each lane and each span.
    #[test]
    fn traced_solves_are_bit_identical_across_thread_counts(
        diag in prop::collection::vec(0.6f64..2.0, 5),
        off in -0.2f64..0.2,
    ) {
        for threads in [1usize, 2, 4, 8] {
            let opts = SolverOptions { threads, ..SolverOptions::default() };
            let untraced = proptest_problem(&diag, off).solve(&opts);
            prop_assert!(untraced.is_ok(), "baseline solve failed: {untraced}");

            let tracer = Tracer::new(TraceLevel::Iter);
            let mut topts = SolverOptions { threads, ..SolverOptions::default() };
            topts.trace = Some(tracer.clone());
            let traced = proptest_problem(&diag, off).solve(&topts);

            // Bit-identical numerics: tracing only reads computed values.
            prop_assert_eq!(traced.status, untraced.status);
            prop_assert_eq!(traced.iterations, untraced.iterations);
            prop_assert_eq!(
                traced.primal_objective.to_bits(),
                untraced.primal_objective.to_bits(),
                "objective differs at {} threads", threads
            );
            prop_assert_eq!(
                traced.dual_objective.to_bits(),
                untraced.dual_objective.to_bits()
            );
            for (a, b) in traced.y.iter().zip(&untraced.y) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (xa, xb) in traced.x.iter().zip(&untraced.x) {
                for (a, b) in xa.as_slice().iter().zip(xb.as_slice()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }

            // Well-formed JSONL: every line parses and carries the schema.
            let jsonl = tracer.to_jsonl();
            prop_assert!(!jsonl.is_empty(), "iter-level trace must record events");
            for line in jsonl.lines() {
                let v = cppll_json::parse(line).expect("well-formed JSONL line");
                prop_assert!(v.get("ts_ns").is_some());
                prop_assert!(v.get("tid").is_some());
                prop_assert!(v.get("seq").is_some());
                let ty = v.get("type").and_then(|t| t.as_str()).unwrap_or("");
                prop_assert!(
                    matches!(ty, "begin" | "end" | "instant" | "counter"),
                    "unknown event type {:?}", ty
                );
            }

            // Monotonic ordering within each lane, and within each span:
            // a span's end never precedes its begin, instants land between.
            let events = tracer.events();
            prop_assert!(check_lane_monotonic(&events).is_ok());
            let mut open = std::collections::BTreeMap::new();
            for e in &events {
                match &e.kind {
                    EventKind::Begin { span, .. } => {
                        open.insert(*span, e.ts_ns);
                    }
                    EventKind::End { span, .. } => {
                        let t0 = open.remove(span).expect("end matches an open span");
                        prop_assert!(e.ts_ns >= t0, "span ended before it began");
                    }
                    EventKind::Instant { span: Some(s), .. } => {
                        let t0 = open.get(s).expect("instant inside an open span");
                        prop_assert!(e.ts_ns >= *t0);
                    }
                    _ => {}
                }
            }
            prop_assert!(open.is_empty(), "unclosed spans: {:?}", open);
            for e in &events {
                if matches!(e.kind, EventKind::Instant { .. }) && e.name() == "iteration" {
                    prop_assert!(
                        e.field_f64("iter").is_some(),
                        "iteration instants must carry the iter field"
                    );
                }
            }
        }
    }
}
