//! Integration test of the paper's headline claim at reduced cost: the
//! third-order CP PLL (nominal parameters, degree-4 certificates) inevitably
//! phase-locks, and the certificates agree with simulation.

use cppll::pll::{PllModelBuilder, PllOrder, UncertaintySelection};
use cppll::verify::validation::Validator;
use cppll::verify::{InevitabilityVerifier, LyapunovOptions, LyapunovSynthesizer, PipelineOptions};

fn nominal_model() -> cppll::pll::VerificationModel {
    PllModelBuilder::new(PllOrder::Third)
        .with_uncertainty(UncertaintySelection::Nominal)
        .build()
}

#[test]
fn third_order_pll_inevitability_nominal_degree4() {
    let model = nominal_model();
    let verifier = InevitabilityVerifier::for_pll(&model);
    let report = verifier
        .verify(&PipelineOptions::degree(4))
        .expect("synthesis feasible");
    assert!(
        report.verdict.is_verified(),
        "verdict: {:?}",
        report.verdict
    );
    // The attractive invariant is a substantial region, not a numerical
    // sliver.
    assert!(report.levels.level > 0.1, "c* = {}", report.levels.level);
    // P2 concluded: either advection immersed the front or escape
    // certificates covered the leftover.
    let by_advection = report.included_after().is_some();
    let by_escape = !report.escape_certificates.is_empty();
    assert!(by_advection || by_escape);

    // Monte-Carlo cross-validation on the actual hybrid dynamics.
    let certs = report
        .certificates
        .as_ref()
        .expect("verified run has certificates");
    let validator = Validator::new(model.system());
    let v = validator.validate(certs, &report.levels, &[0.7, 0.7, 0.9], 12, 42);
    assert_eq!(v.trials, 12);
    assert_eq!(
        v.locked, v.trials,
        "some trajectories failed to lock: {v:?}"
    );
    assert_eq!(
        v.reached_ai, v.trials,
        "some trajectories missed the attractive invariant: {v:?}"
    );
    assert_eq!(
        v.monotone, v.trials,
        "certificate increased along a trajectory: {v:?}"
    );
}

#[test]
fn third_order_certificate_rejects_degree_two() {
    // The saturated modes genuinely require quartic certificates: at degree
    // 2 the synthesis must fail (matching the paper's need for degrees ≥ 4).
    let model = nominal_model();
    let r = LyapunovSynthesizer::new(model.system()).synthesize(&LyapunovOptions::degree(2));
    assert!(r.is_err(), "degree-2 common certificate should not exist");
}

#[test]
fn certificate_decreases_on_all_mode_domains() {
    let model = nominal_model();
    let certs = LyapunovSynthesizer::new(model.system())
        .synthesize_auto(&LyapunovOptions::degree(4))
        .expect("feasible");
    let sys = model.system();
    let nominal = sys.params().nominal();
    // Sample each mode's flow set and check the certified inequalities.
    let samples: &[(usize, [f64; 3])] = &[
        (0, [0.3, -0.2, 0.5]),
        (0, [-0.5, 0.4, -0.9]),
        (1, [0.2, 0.1, 1.5]),
        (1, [-0.6, 0.8, 1.9]),
        (2, [0.2, -0.1, -1.5]),
        (2, [0.7, -0.8, -1.9]),
    ];
    for &(mode, x) in samples {
        let (v, vdot) = certs.check_at(sys, mode, &x, &nominal);
        assert!(v > 0.0, "V ≤ 0 at {x:?} (mode {mode})");
        assert!(vdot < 0.0, "V̇ ≥ 0 at {x:?} (mode {mode}): {vdot}");
    }
}
