//! End-to-end inevitability verification of a small hand-made hybrid system
//! — exercises every pipeline stage (P1 certificates, level maximisation,
//! piecewise advection, inclusion, escape fallback) without the cost of the
//! PLL benchmarks.

use cppll::hybrid::{HybridSystem, Jump, Mode, Simulator};
use cppll::poly::Polynomial;
use cppll::verify::{InevitabilityVerifier, PipelineOptions, Region};

/// Planar two-mode switched system split at `x = 0`, both modes spiralling
/// into the origin, identity jumps on the switching line.
fn two_mode_spiral() -> HybridSystem {
    let right = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
    ];
    let left = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
        Polynomial::from_terms(2, &[(&[1, 0], -0.5), (&[0, 1], -1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("right", right).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("left", left).with_flow_set(vec![x.scale(-1.0)]);
    let guard = vec![Polynomial::var(2, 0)];
    let jumps = vec![
        Jump::identity(0, 1).with_guard_eq(guard.clone()),
        Jump::identity(1, 0).with_guard_eq(guard),
    ];
    HybridSystem::new(2, vec![m0, m1], jumps)
}

#[test]
fn toy_system_is_inevitable() {
    let sys = two_mode_spiral();
    // Verified region: the box |x|, |y| ≤ 3.
    let mut boundary = Vec::new();
    for i in 0..2 {
        let xi = Polynomial::var(2, i);
        boundary.push(&Polynomial::constant(2, 3.0) - &xi);
        boundary.push(&Polynomial::constant(2, 3.0) + &xi);
    }
    let initial = Region::ball(2, 2.0);
    let verifier = InevitabilityVerifier::new(&sys, boundary, initial);
    let report = verifier
        .verify(&PipelineOptions::degree(2))
        .expect("toy system verifies");
    assert!(
        report.verdict.is_verified(),
        "verdict: {:?}",
        report.verdict
    );
    assert!(report.levels.level > 0.0);
    // Timings exist for every Table-2 step.
    let names: Vec<_> = report.timings.iter().map(|t| t.name).collect();
    assert!(names.contains(&"attractive invariant"));
    assert!(names.contains(&"max level curves"));
    assert!(names.contains(&"advection"));
    assert!(names.contains(&"checking set inclusion"));
}

#[test]
fn certificates_hold_along_simulated_arcs() {
    let sys = two_mode_spiral();
    let mut boundary = Vec::new();
    for i in 0..2 {
        let xi = Polynomial::var(2, i);
        boundary.push(&Polynomial::constant(2, 3.0) - &xi);
        boundary.push(&Polynomial::constant(2, 3.0) + &xi);
    }
    let verifier = InevitabilityVerifier::new(&sys, boundary, Region::ball(2, 2.0));
    let report = verifier
        .verify(&PipelineOptions::degree(2))
        .expect("verifies");
    let certs = report
        .certificates
        .as_ref()
        .expect("verified run has certificates");
    // Trajectories respect the certificate and land near the origin.
    let sim = Simulator::new(&sys).with_step(1e-3).with_thinning(20);
    for &start in &[[1.5f64, 0.5], [-1.0, 1.2], [0.5, -1.8]] {
        let mode0 = if start[0] >= 0.0 { 0 } else { 1 };
        let arc = sim.simulate(&start, mode0, 12.0);
        let mut prev = f64::INFINITY;
        for s in arc.samples() {
            let v = certs.for_mode(s.mode).eval(&s.state);
            assert!(
                v <= prev * (1.0 + 1e-6) + 1e-9,
                "V increased along the arc at {:?}",
                s.state
            );
            prev = v;
        }
        let fin = arc.final_state();
        let norm = (fin[0] * fin[0] + fin[1] * fin[1]).sqrt();
        assert!(norm < 1e-3, "did not converge: {fin:?}");
        // The arc must enter the certified attractive invariant.
        assert!(
            arc.samples()
                .iter()
                .any(|s| report.levels.contains(&sys, &s.state, 0.0)),
            "arc never entered the attractive invariant"
        );
    }
}

#[test]
fn unstable_toy_system_is_rejected() {
    // One stable, one UNSTABLE mode: certificates must not exist.
    let stable = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0)]),
        Polynomial::from_terms(2, &[(&[0, 1], -1.0)]),
    ];
    let unstable = vec![
        Polynomial::from_terms(2, &[(&[1, 0], 1.0)]),
        Polynomial::from_terms(2, &[(&[0, 1], 1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("stable", stable).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("unstable", unstable).with_flow_set(vec![x.scale(-1.0)]);
    let sys = HybridSystem::new(2, vec![m0, m1], vec![]);
    let boundary = vec![
        &Polynomial::constant(2, 3.0) - &Polynomial::var(2, 0),
        &Polynomial::constant(2, 3.0) + &Polynomial::var(2, 0),
    ];
    let verifier = InevitabilityVerifier::new(&sys, boundary, Region::ball(2, 1.0));
    let r = verifier.verify(&PipelineOptions::degree(2));
    assert!(
        r.is_err(),
        "unstable system must fail certificate synthesis"
    );
}
