//! Crash-safe checkpoint/resume acceptance tests: a run that is killed
//! mid-pipeline and resumed must produce a report **bit-identical** to an
//! uninterrupted run — same verdict, same certificates, same advection
//! trace — while replaying journaled stages instead of recomputing them and
//! warm-starting inclusion SDPs from journaled iterates.

use std::path::PathBuf;
use std::sync::Arc;

use cppll::hybrid::{HybridSystem, Jump, Mode};
use cppll::pll::{PllModelBuilder, PllOrder, UncertaintySelection};
use cppll::poly::Polynomial;
use cppll::verify::{
    CheckpointConfig, CheckpointError, CrashMode, FaultInjector, FaultPlan, InevitabilityVerifier,
    PipelineOptions, Region, VerifyError,
};

/// Planar two-mode switched system from `toy_inevitability.rs` — cheap
/// enough to run the pipeline several times per test.
fn two_mode_spiral() -> HybridSystem {
    let right = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
    ];
    let left = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
        Polynomial::from_terms(2, &[(&[1, 0], -0.5), (&[0, 1], -1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("right", right).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("left", left).with_flow_set(vec![x.scale(-1.0)]);
    let guard = vec![Polynomial::var(2, 0)];
    let jumps = vec![
        Jump::identity(0, 1).with_guard_eq(guard.clone()),
        Jump::identity(1, 0).with_guard_eq(guard),
    ];
    HybridSystem::new(2, vec![m0, m1], jumps)
}

fn toy_boundary() -> Vec<Polynomial> {
    let mut boundary = Vec::new();
    for i in 0..2 {
        let xi = Polynomial::var(2, i);
        boundary.push(&Polynomial::constant(2, 3.0) - &xi);
        boundary.push(&Polynomial::constant(2, 3.0) + &xi);
    }
    boundary
}

/// A fresh runs directory for one test, wiped before use so reruns never
/// see a previous invocation's journals.
fn runs_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cppll-resume-tests").join(test);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn toy_checkpointed_run_matches_plain_run_and_replays_on_resume() {
    let dir = runs_dir("toy-roundtrip");
    let sys = two_mode_spiral();
    let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));

    let plain = verifier
        .verify(&PipelineOptions::degree(2))
        .expect("toy verifies");

    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir));
    let fresh = verifier.verify(&opt).expect("checkpointed toy verifies");
    assert_eq!(
        fresh.canonical_result_json(),
        plain.canonical_result_json(),
        "journaling a run must not change its result"
    );
    assert_eq!(fresh.resume.run_id.as_deref(), Some("toy"));
    assert_eq!(fresh.resume.stages_replayed, 0);
    assert!(fresh.resume.stages_fresh >= 3, "{:?}", fresh.resume);

    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir).resuming());
    let resumed = verifier.verify(&opt).expect("resumed toy verifies");
    assert_eq!(
        resumed.canonical_result_json(),
        plain.canonical_result_json(),
        "replayed stages must reproduce the original result bit for bit"
    );
    // The first run completed, so the resume replays everything.
    assert_eq!(resumed.resume.stages_replayed, fresh.resume.stages_fresh);
    assert_eq!(resumed.resume.stages_fresh, 0);
    // Replay absorbs the journaled ledger snapshot: solve totals match the
    // fresh run even though no SDP ran at all.
    assert_eq!(resumed.solve_stats, fresh.solve_stats);
}

#[test]
fn stale_journal_is_rejected_when_options_change() {
    let dir = runs_dir("toy-stale");
    let sys = two_mode_spiral();
    let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));

    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir));
    verifier.verify(&opt).expect("checkpointed toy verifies");

    // Same run id, different advection step size: the journal's fingerprint
    // no longer matches, and silently replaying it would splice together
    // two different verification problems.
    let mut opt = PipelineOptions::degree(2);
    opt.advection.h *= 0.5;
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir).resuming());
    match verifier.verify(&opt) {
        Err(VerifyError::Checkpoint {
            source: CheckpointError::Stale { .. },
        }) => {}
        other => panic!("expected a stale-journal rejection, got {other:?}"),
    }
}

#[test]
fn crashed_toy_run_resumes_and_completes() {
    let dir = runs_dir("toy-crash");
    let sys = two_mode_spiral();

    // Crash (panic) at the very first advection inclusion solve. The run
    // dies after journaling the Lyapunov and level-set stages.
    let crashed = {
        let sys = sys.clone();
        let dir = dir.clone();
        std::thread::spawn(move || {
            let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));
            let mut opt = PipelineOptions::degree(2);
            opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir));
            opt.resilience.fault = Some(Arc::new(FaultInjector::new(
                FaultPlan::default().crash_at_stage_solve("advection", 0, CrashMode::Panic),
            )));
            let _ = verifier.verify(&opt);
        })
        .join()
    };
    assert!(crashed.is_err(), "injected crash should panic the run");
    let journal = dir.join("toy/journal.jsonl");
    assert!(
        journal.exists(),
        "crashed run must leave its journal behind"
    );

    let verifier = InevitabilityVerifier::new(&sys, toy_boundary(), Region::ball(2, 2.0));
    let plain = verifier
        .verify(&PipelineOptions::degree(2))
        .expect("toy verifies");
    let mut opt = PipelineOptions::degree(2);
    opt.checkpoint = Some(CheckpointConfig::new("toy").with_dir(&dir).resuming());
    let resumed = verifier.verify(&opt).expect("resume completes the run");
    assert!(resumed.verdict.is_verified());
    assert_eq!(
        resumed.canonical_result_json(),
        plain.canonical_result_json()
    );
    assert!(resumed.resume.stages_replayed >= 2, "{:?}", resumed.resume);
    assert!(resumed.resume.stages_fresh >= 1, "{:?}", resumed.resume);
}

/// The issue's acceptance criterion: kill the third-order PLL verification
/// mid-advection, resume, and get a report bit-identical to an
/// uninterrupted run — with at least one stage replayed from the journal
/// and at least one SDP solve warm-started from a journaled iterate.
#[test]
fn third_order_pll_crash_mid_advection_resumes_bit_identically() {
    let dir = runs_dir("pll-crash");
    let model = PllModelBuilder::new(PllOrder::Third)
        .with_uncertainty(UncertaintySelection::Nominal)
        .build();

    // Uninterrupted checkpointed run: the reference result.
    let verifier = InevitabilityVerifier::for_pll(&model);
    let mut opt = PipelineOptions::degree(4);
    opt.checkpoint = Some(CheckpointConfig::new("uncrashed").with_dir(&dir));
    let uninterrupted = verifier.verify(&opt).expect("third-order PLL verifies");
    assert!(uninterrupted.verdict.is_verified());

    // Killed run: panic at the 6th inclusion solve of the advection stage,
    // i.e. several advection steps into the run.
    let crashed = {
        let model = model.clone();
        let dir = dir.clone();
        std::thread::spawn(move || {
            let verifier = InevitabilityVerifier::for_pll(&model);
            let mut opt = PipelineOptions::degree(4);
            opt.checkpoint = Some(CheckpointConfig::new("crashed").with_dir(&dir));
            opt.resilience.fault = Some(Arc::new(FaultInjector::new(
                FaultPlan::default().crash_at_stage_solve("advection", 5, CrashMode::Panic),
            )));
            let _ = verifier.verify(&opt);
        })
        .join()
    };
    assert!(crashed.is_err(), "injected crash should panic the run");
    let journal_text = std::fs::read_to_string(dir.join("crashed/journal.jsonl"))
        .expect("crashed run must leave its journal behind");
    assert!(
        journal_text.contains("\"record\":\"advection-step\""),
        "crash happened mid-advection, after at least one completed step"
    );

    // Resume and compare against the uninterrupted reference.
    let mut opt = PipelineOptions::degree(4);
    opt.checkpoint = Some(CheckpointConfig::new("crashed").with_dir(&dir).resuming());
    let resumed = verifier.verify(&opt).expect("resume completes the run");

    assert!(resumed.verdict.is_verified(), "{:?}", resumed.verdict);
    assert_eq!(
        resumed.canonical_result_json(),
        uninterrupted.canonical_result_json(),
        "resumed report must be bit-identical to the uninterrupted run"
    );
    assert_eq!(resumed.result_digest(), uninterrupted.result_digest());
    assert!(
        resumed.resume.stages_replayed >= 1,
        "at least one stage must be replayed from the journal: {:?}",
        resumed.resume
    );
    assert!(
        resumed.resume.warm_started_solves >= 1,
        "at least one SDP must be warm-started from a journaled iterate: {:?}",
        resumed.resume
    );
    // Absorbed ledger snapshot + redone tail = the uninterrupted totals:
    // pre-crash work is not forgotten and not double-counted.
    assert_eq!(resumed.solve_stats, uninterrupted.solve_stats);
}
