//! A minimal offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no registry access, so the real `criterion`
//! cannot be downloaded. This stub implements the subset the bench targets
//! use — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros — timing with `std::time::Instant` and printing
//! a one-line mean per benchmark. There is no statistical analysis, HTML
//! report, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut bencher);
        let total: Duration = bencher.samples.iter().sum();
        let mean = if bencher.samples.is_empty() {
            Duration::ZERO
        } else {
            total / bencher.samples.len() as u32
        };
        println!(
            "{}/{}: mean {:?} over {} samples",
            self.name,
            id,
            mean,
            bencher.samples.len()
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `budget` calls of `routine` (one call per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.budget {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
