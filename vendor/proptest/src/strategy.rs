//! The `Strategy` trait and the primitive strategies the suite uses.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A value generator. Unlike the real proptest `Strategy` there is no value
/// tree / shrinking — `generate` produces the value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategies can be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Boolean strategy with a fixed `true` probability.
#[derive(Debug, Clone)]
pub struct WeightedBool {
    /// Probability of generating `true`.
    pub probability: f64,
}

impl Strategy for WeightedBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_f64() < self.probability
    }
}
