//! A deterministic, dependency-free subset of the `proptest` API.
//!
//! The build environment has no registry access, so the real `proptest`
//! crate cannot be downloaded; this vendored stand-in implements exactly the
//! surface the test-suite uses:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ...) { ... } }`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! * range strategies over the primitive numeric types
//! * `Strategy::prop_map`, `prop::collection::vec`, `prop::option::of`
//! * `ProptestConfig::with_cases`
//!
//! Generation is driven by a splitmix64 PRNG seeded from the test's module
//! path and name, so runs are reproducible without a regression-file
//! mechanism. Shrinking is intentionally not implemented — a failing case
//! panics with the generated inputs' case number so it can be replayed.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec` / `prop::option::of` resolve
/// the way they do with the real crate's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a plain `fn name()` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::test_runner::fnv1a(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while accepted < config.cases {
                    assert!(
                        rejected < 16 * config.cases + 1024,
                        "proptest {}: too many rejected cases ({} rejects, {} accepts)",
                        stringify!($name), rejected, accepted
                    );
                    let mut rng = $crate::test_runner::TestRng::for_case(seed, case);
                    case += 1;
                    $(
                        #[allow(unused_mut)]
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => rejected += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case - 1,
                            msg
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    concat!("assertion failed: ", stringify!($left), " == ",
                            stringify!($right), "\n  left: {:?}\n right: {:?}"),
                    l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                concat!(
                    "assertion failed: ",
                    stringify!($left),
                    " != ",
                    stringify!($right),
                    "\n  both: {:?}"
                ),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -4.0f64..4.0, n in 1usize..9) {
            prop_assert!((-4.0..4.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_has_requested_length(v in prop::collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn map_applies(y in (0i64..10).prop_map(|k| k * 2)) {
            prop_assert!(y % 2 == 0 && (0..20).contains(&y));
        }

        #[test]
        fn option_of_mixes(o in prop::option::of(0u32..5)) {
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
        }

        #[test]
        fn assume_rejects(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = -1.0f64..1.0;
        let a: Vec<f64> = (0..32)
            .map(|c| s.generate(&mut TestRng::for_case(42, c)))
            .collect();
        let b: Vec<f64> = (0..32)
            .map(|c| s.generate(&mut TestRng::for_case(42, c)))
            .collect();
        assert_eq!(a, b);
        let c: Vec<f64> = (0..32)
            .map(|c| s.generate(&mut TestRng::for_case(43, c)))
            .collect();
        assert_ne!(a, c);
    }
}
