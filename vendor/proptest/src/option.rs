//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some(value)` three times out of four and `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Result of [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
