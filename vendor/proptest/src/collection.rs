//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Admissible element counts for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

/// Generates a `Vec` of values from `element`, with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            self.size.lo + (rng.next_u64() % span) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
