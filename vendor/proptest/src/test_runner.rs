//! Configuration, error type and the deterministic PRNG behind the stub.

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` — generate another one.
    Reject(String),
    /// An assertion failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor for failures.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Convenience constructor for rejections.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// FNV-1a hash of a string — stable across runs and platforms, used to give
/// every test its own seed stream.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the stream identified by `seed`.
    pub fn for_case(seed: u64, case: u64) -> Self {
        // Decorrelate the per-case streams by running the seed through one
        // splitmix step before mixing in the case index.
        let mut s = seed;
        let base = splitmix64(&mut s);
        TestRng {
            state: base ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
