//! Property-based soundness tests for the problem-size reduction layer
//! (Newton-polytope basis pruning + sign-symmetry block splitting).
//!
//! The reductions are *structural*: they may only remove Gram freedom that
//! provably cannot appear in any certificate. So (a) strictly-interior SOS
//! instances must still certify with reduction on, (b) the blocked Gram must
//! reassemble to exactly the polynomial the monolithic Gram represents, and
//! (c) feasibility verdicts must agree with reduction on vs off.

use cppll_linalg::Matrix;
use cppll_poly::{monomials_up_to, Monomial, Polynomial};
use cppll_sos::{ReduceMode, ReductionOptions, SosCone, SosDecomposition, SosOptions, SosProgram};
use proptest::prelude::*;

const NVARS: usize = 2;

fn options_with(reduction: ReductionOptions) -> SosOptions {
    SosOptions {
        reduction,
        ..Default::default()
    }
}

/// Random polynomial of degree ≤ 2 in two variables.
fn small_poly() -> impl Strategy<Value = Polynomial> {
    let basis = monomials_up_to(NVARS, 2);
    let n = basis.len();
    prop::collection::vec(-2.0f64..2.0, n).prop_map(move |coeffs| {
        let mut p = Polynomial::zero(NVARS);
        for (m, c) in basis.iter().zip(coeffs) {
            p.add_term(m.clone(), c);
        }
        p
    })
}

/// Random *even* polynomial of degree ≤ 2 (every monomial has even exponents),
/// so the full variable-flip group ±x, ±y fixes it and the symmetry split has
/// something to exploit.
fn small_even_poly() -> impl Strategy<Value = Polynomial> {
    let basis: Vec<Monomial> = monomials_up_to(NVARS, 2)
        .into_iter()
        .filter(|m| (0..NVARS).all(|i| m.exp(i) % 2 == 0))
        .collect();
    let n = basis.len();
    prop::collection::vec(-2.0f64..2.0, n).prop_map(move |coeffs| {
        let mut p = Polynomial::zero(NVARS);
        for (m, c) in basis.iter().zip(coeffs) {
            p.add_term(m.clone(), c);
        }
        p
    })
}

/// `q₁² + q₂² + δ·Σ mᵢ⁴` — strictly interior to the SOS cone.
fn strict_sos(q1: &Polynomial, q2: &Polynomial) -> Polynomial {
    let mut p = &(q1 * q1) + &(q2 * q2);
    let delta = 1e-1 * p.max_abs_coefficient().max(1.0);
    for m in monomials_up_to(NVARS, 2) {
        p.add_term(m.mul(&m), delta);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) Newton pruning + symmetry splitting never lose a certificate:
    /// every strictly-interior SOS instance still certifies with reduction
    /// on, with the same residual quality as the unreduced encoding.
    #[test]
    fn pruned_basis_still_certifies(q1 in small_poly(), q2 in small_poly()) {
        let p = strict_sos(&q1, &q2);
        let mut prog = SosProgram::new(NVARS);
        let c = prog.require_sos(p.clone().into());
        let sol = prog.solve(&options_with(ReductionOptions::default()));
        prop_assume!(sol.is_ok());
        let sol = sol.unwrap();
        let stats = sol.reduction_stats();
        prop_assert!(stats.grams >= 1);
        prop_assert!(stats.basis_after <= stats.basis_before);
        let dec = sol.sos_decomposition(c).unwrap();
        let res = dec.residual(&p);
        prop_assert!(res < 1e-5 * p.max_abs_coefficient().max(1.0), "residual {res}");
    }

    /// (b) The blocked Gram is exactly the monolithic Gram in disguise:
    /// reassembling the full matrix and extracting a decomposition from it
    /// agrees with the per-block extraction to 1e-9 — same represented
    /// polynomial, no mass lost across blocks.
    #[test]
    fn blocked_reconstruction_matches_assembled(q1 in small_even_poly(),
                                                q2 in small_even_poly()) {
        let p = strict_sos(&q1, &q2);
        let mut prog = SosProgram::new(NVARS);
        let c = prog.require_sos(p.clone().into());
        let sol = prog.solve(&options_with(ReductionOptions::default()));
        prop_assume!(sol.is_ok());
        let sol = sol.unwrap();
        let (basis, gram) = sol.constraint_gram(c).unwrap();
        let blocks = sol.constraint_gram_blocks(c).unwrap();
        let full = SosDecomposition::from_gram(basis, &gram);
        let blocked = SosDecomposition::from_blocks(NVARS, &blocks);
        let drift =
            (full.reconstruction() - blocked.reconstruction()).max_abs_coefficient();
        prop_assert!(drift < 1e-9, "blocked reassembly drifted by {drift}");
        // The reassembled matrix must be block-diagonal across signature
        // classes: its total Frobenius mass equals the blocks' mass.
        let total: f64 = (0..gram.nrows())
            .flat_map(|r| (0..gram.ncols()).map(move |cc| (r, cc)))
            .map(|(r, cc)| gram[(r, cc)] * gram[(r, cc)])
            .sum();
        let block_mass: f64 = blocks
            .iter()
            .map(|(_, b): &(Vec<Monomial>, Matrix)| {
                (0..b.nrows())
                    .flat_map(|r| (0..b.ncols()).map(move |cc| (r, cc)))
                    .map(|(r, cc)| b[(r, cc)] * b[(r, cc)])
                    .sum::<f64>()
            })
            .sum();
        prop_assert!((total - block_mass).abs() < 1e-18 + 1e-12 * total);
    }

    /// (c) Feasibility verdicts agree with reduction on vs off: reduction
    /// must neither lose certificates (strict SOS stays feasible) nor invent
    /// them (polynomials that are negative somewhere stay infeasible).
    #[test]
    fn verdicts_agree_on_and_off(q1 in small_poly(), q2 in small_poly()) {
        let p = strict_sos(&q1, &q2);
        for target in [
            p.clone(),
            // Shift far below the minimum: negative at the origin, so
            // certainly not SOS.
            &p - &Polynomial::constant(NVARS, p.eval(&[0.0, 0.0]).abs() + 10.0),
        ] {
            let solve = |reduction: ReductionOptions| {
                let mut prog = SosProgram::new(NVARS);
                prog.require_sos(target.clone().into());
                prog.solve(&options_with(reduction)).is_ok()
            };
            let reduced = solve(ReductionOptions::default());
            let unreduced = solve(ReductionOptions::none());
            prop_assert_eq!(
                reduced, unreduced,
                "verdict flipped under reduction for {}", target
            );
        }
    }

    /// (d) Support-driven multiplier bases never flip a verdict on a
    /// *constrained* program: certifying `p ≥ 0` on the unit disc through
    /// S-procedure multipliers agrees between the default support mode and
    /// the legacy compile, for feasible and infeasible targets alike.
    #[test]
    fn support_and_legacy_verdicts_agree(q1 in small_poly(), q2 in small_poly()) {
        let p = strict_sos(&q1, &q2);
        let disc = Polynomial::from_terms(
            NVARS,
            &[(&[0, 0], 1.0), (&[2, 0], -1.0), (&[0, 2], -1.0)],
        );
        for target in [
            p.clone(),
            &p - &Polynomial::constant(NVARS, p.eval(&[0.0, 0.0]).abs() + 10.0),
        ] {
            let solve = |mode: ReduceMode| {
                let red = ReductionOptions {
                    mode,
                    ..Default::default()
                };
                let mut prog = SosProgram::new(NVARS);
                prog.require_nonneg_on(target.clone().into(), std::slice::from_ref(&disc), 1);
                prog.solve(&options_with(red)).is_ok()
            };
            prop_assert_eq!(
                solve(ReduceMode::Support),
                solve(ReduceMode::Legacy),
                "support/legacy verdict flipped for {}", target
            );
        }
    }

    /// (e) A certificate extracted from the support-reduced compile still
    /// satisfies the polynomial identities it claims: the largest residual
    /// across all constraints (target and multipliers) stays at solver
    /// precision even when multiplier bases were pruned.
    #[test]
    fn support_certificates_satisfy_identities(q1 in small_poly(), q2 in small_poly()) {
        let p = strict_sos(&q1, &q2);
        let disc = Polynomial::from_terms(
            NVARS,
            &[(&[0, 0], 1.0), (&[2, 0], -1.0), (&[0, 2], -1.0)],
        );
        let mut prog = SosProgram::new(NVARS);
        prog.require_nonneg_on(p.clone().into(), &[disc], 1);
        let sol = prog.solve(&options_with(ReductionOptions::default()));
        prop_assume!(sol.is_ok());
        let sol = sol.unwrap();
        let res = sol.max_residual();
        prop_assert!(
            res < 1e-5 * p.max_abs_coefficient().max(1.0),
            "support-mode certificate violates its identity by {res}"
        );
    }

    /// (f) DSOS/SDSOS are inner approximations of the SOS cone: solving
    /// under a cheaper cone succeeds exactly when the SOS solve does (a
    /// feasible screen is a genuine certificate and short-circuits; a failed
    /// screen falls back to the full SDP silently), and any returned
    /// certificate satisfies its identity.
    #[test]
    fn cheaper_cones_agree_with_sos(q1 in small_poly(), q2 in small_poly()) {
        let p = strict_sos(&q1, &q2);
        for target in [
            p.clone(),
            &p - &Polynomial::constant(NVARS, p.eval(&[0.0, 0.0]).abs() + 10.0),
        ] {
            let solve = |cone: SosCone| {
                let red = ReductionOptions {
                    cone,
                    ..Default::default()
                };
                let mut prog = SosProgram::new(NVARS);
                prog.require_sos(target.clone().into());
                prog.solve(&options_with(red)).ok()
            };
            let sos = solve(SosCone::Sos);
            for cone in [SosCone::Sdsos, SosCone::Dsos] {
                let cheap = solve(cone);
                prop_assert_eq!(
                    cheap.is_some(), sos.is_some(),
                    "cone {} verdict differs from sos for {}", cone, target
                );
                if let Some(sol) = cheap {
                    let res = sol.max_residual();
                    prop_assert!(
                        res < 1e-5 * target.max_abs_coefficient().max(1.0),
                        "cone {} certificate violates its identity by {res}", cone
                    );
                }
            }
        }
    }
}

/// Deterministic check that the reductions actually fire on the shapes the
/// PLL certificates have (even polynomials). For `x⁴ + x²y² + y⁴ + x²` the
/// degree envelope declares the basis `{x, y, x², xy, y²}`, but the Newton
/// polytope is the triangle `(2,0), (4,0), (0,4)` which excludes `2·y =
/// (0,2)` — pruning drops `y`. The flip group (everything in the support is
/// even) then splits the survivors into `{x}`, `{x², y²}` and `{xy}`.
#[test]
fn even_target_splits_and_prunes() {
    let p = Polynomial::from_terms(
        2,
        &[
            (&[4, 0], 1.0),
            (&[2, 2], 1.0),
            (&[0, 4], 1.0),
            (&[2, 0], 1.0),
        ],
    );
    let mut prog = SosProgram::new(2);
    let c = prog.require_sos(p.clone().into());
    let sol = prog
        .solve(&options_with(ReductionOptions::default()))
        .expect("even quartic is strictly SOS");
    let stats = sol.reduction_stats();
    assert!(
        stats.basis_after < stats.basis_before,
        "Newton pruning should drop basis monomials: {stats}"
    );
    assert!(
        stats.blocks > stats.grams,
        "sign-symmetry should split the Gram into blocks: {stats}"
    );
    let dec = sol.sos_decomposition(c).expect("gram available");
    assert!(dec.residual(&p) < 1e-6, "residual {}", dec.residual(&p));
}
