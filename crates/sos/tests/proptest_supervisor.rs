//! Property: the solve supervisor is deterministic. Two supervised runs of
//! the same program with the same retry policy (same jitter seed) and the
//! same fault schedule must produce byte-identical attempt logs and the
//! same final outcome — backoff is planned, never measured, and the jitter
//! is a pure function of `(seed, attempt)`.

use std::sync::Arc;

use cppll_poly::Polynomial;
use cppll_sdp::{FaultInjector, FaultKind, FaultPlan};
use cppll_sos::{ResilienceOptions, RetryPolicy, SolveLedger, SosOptions, SosProgram};
use proptest::prelude::*;

fn kind_for(index: u8) -> FaultKind {
    match index % 3 {
        0 => FaultKind::Stall,
        1 => FaultKind::MaxIterations,
        _ => FaultKind::Cholesky,
    }
}

/// One supervised solve of a small feasible SOS program under a fresh
/// injector with `faulted_attempts` leading faulted attempts; returns the
/// success flag and the canonical attempt log.
fn supervised_run(
    seed: u64,
    retries: usize,
    kind: FaultKind,
    faulted_attempts: usize,
) -> (bool, Vec<String>) {
    let p = Polynomial::from_terms(
        2,
        &[
            (&[2, 0], 1.0),
            (&[1, 1], -2.0),
            (&[0, 2], 1.0),
            (&[0, 0], 1.0),
        ],
    );
    let mut prog = SosProgram::new(2);
    prog.require_sos(p.into());

    // Fault the first `faulted_attempts` attempts via per-call indices; the
    // supervisor recompiles per attempt, so attempt i is solve call i.
    let mut plan = FaultPlan::new();
    for call in 0..faulted_attempts {
        plan = plan.fault_at_call(call, kind);
    }
    let ledger = SolveLedger::new();
    let options = SosOptions {
        resilience: ResilienceOptions {
            retry: RetryPolicy {
                max_retries: retries,
                jitter_seed: seed,
                ..RetryPolicy::default()
            },
            fault: Some(Arc::new(FaultInjector::new(plan))),
            ledger: Some(ledger.clone()),
            ..ResilienceOptions::default()
        },
        ..SosOptions::default()
    };
    let ok = prog.solve(&options).is_ok();
    (ok, ledger.log_lines())
}

/// An expired pipeline deadline clamps the planned backoff sleep to zero:
/// the retry must still happen (and be counted) immediately, without
/// serving a multi-second sleep the budget no longer allows.
#[test]
fn expired_deadline_clamps_backoff_sleep_to_zero_but_still_retries() {
    use std::time::{Duration, Instant};

    let p = Polynomial::from_terms(
        2,
        &[
            (&[2, 0], 1.0),
            (&[1, 1], -2.0),
            (&[0, 2], 1.0),
            (&[0, 0], 1.0),
        ],
    );
    let mut prog = SosProgram::new(2);
    prog.require_sos(p.into());

    let recorder = cppll_trace::TraceRecorder::new(cppll_trace::TraceLevel::Solve);
    let ledger = SolveLedger::new();
    let options = SosOptions {
        resilience: ResilienceOptions {
            retry: RetryPolicy {
                max_retries: 1,
                // A backoff the test would feel if it were actually slept.
                backoff_base_ms: 60_000,
                // Force the production sleep path (cfg(test) defaults it
                // off); the clamp is what keeps this test fast.
                sleep: true,
                ..RetryPolicy::default()
            },
            // The deadline has already passed when the backoff is planned.
            deadline: Some(Instant::now() - Duration::from_millis(10)),
            fault: Some(Arc::new(FaultInjector::new(
                FaultPlan::new().fault_at_call(0, FaultKind::Stall),
            ))),
            ledger: Some(ledger.clone()),
            tracer: Some(recorder.tracer()),
            ..ResilienceOptions::default()
        },
        ..SosOptions::default()
    };

    let started = Instant::now();
    let _ = prog.solve(&options);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "an expired deadline must clamp the 60s planned backoff to zero, \
         took {:?}",
        started.elapsed()
    );

    // The retry still happened and was counted.
    let stats = ledger.stats();
    assert_eq!(stats.attempts, 2, "faulted attempt plus one retry");
    assert_eq!(stats.retries, 1);
    assert_eq!(recorder.counter_total("retry"), 1);
    assert_eq!(recorder.counter_total("backoff"), 1);

    // The backoff instant records the full plan and the zero clamp.
    let backoffs = recorder.instants_named("backoff");
    assert_eq!(backoffs.len(), 1);
    assert_eq!(backoffs[0].field_f64("planned_ms"), Some(60_000.0));
    assert_eq!(backoffs[0].field_f64("clamped_ms"), Some(0.0));

    // The attempt log still plans the full backoff — the clamp is a
    // runtime budget decision, not a change to the deterministic plan.
    let log = ledger.log_lines();
    assert_eq!(log.len(), 2);
    assert!(
        log[0].ends_with("backoff_ms=60000"),
        "first attempt plans the full backoff: {}",
        log[0]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_and_schedule_give_identical_logs(
        seed in 0u64..u64::MAX,
        retries in 0usize..3,
        kind_index in 0u8..3,
        faulted_attempts in 0usize..3,
    ) {
        let kind = kind_for(kind_index);
        let (ok_a, log_a) = supervised_run(seed, retries, kind, faulted_attempts);
        let (ok_b, log_b) = supervised_run(seed, retries, kind, faulted_attempts);
        prop_assert_eq!(ok_a, ok_b);
        prop_assert_eq!(&log_a, &log_b);
        // The outcome is exactly "were there more attempts than faults":
        // the program itself is feasible, so the first unfaulted attempt
        // succeeds.
        prop_assert_eq!(ok_a, faulted_attempts <= retries);
        let expected_attempts = (faulted_attempts + 1).min(retries + 1);
        prop_assert_eq!(log_a.len(), expected_attempts);
    }

    #[test]
    fn different_jitter_seeds_diverge_only_in_retried_attempts(
        seed in 0u64..u64::MAX,
    ) {
        // With one faulted attempt and one retry, the retry's step fraction
        // is jittered: two different seeds agree on attempt 0 and (almost
        // surely) differ on attempt 1's step field.
        let (ok_a, log_a) = supervised_run(seed, 1, FaultKind::Stall, 1);
        let (ok_b, log_b) = supervised_run(seed ^ 0xdead_beef, 1, FaultKind::Stall, 1);
        prop_assert!(ok_a && ok_b);
        prop_assert_eq!(log_a.len(), 2);
        prop_assert_eq!(&log_a[0], &log_b[0]);
    }
}
