//! Property-based tests of the SOS layer: sums of random squares must be
//! certified with small residual, constrained positivity must respect
//! domain restrictions, and the compiled linear operations (products,
//! derivatives, compositions) must agree with numeric polynomial algebra.

use cppll_poly::{monomials_up_to, Polynomial};
use cppll_sos::{PolyExpr, SosOptions, SosProgram};
use proptest::prelude::*;

const NVARS: usize = 2;

/// Random polynomial of degree ≤ 2 in two variables.
fn small_poly() -> impl Strategy<Value = Polynomial> {
    let basis = monomials_up_to(NVARS, 2);
    let n = basis.len();
    prop::collection::vec(-2.0f64..2.0, n).prop_map(move |coeffs| {
        let mut p = Polynomial::zero(NVARS);
        for (m, c) in basis.iter().zip(coeffs) {
            p.add_term(m.clone(), c);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// q₁² + q₂² + δ·Σmᵢ² is *strictly* SOS by construction (the δ term
    /// keeps the Gram manifold away from the cone boundary — interior-point
    /// methods only guarantee convergence with strict interior); the solver
    /// must certify it and the extracted decomposition must reconstruct it.
    #[test]
    fn sums_of_squares_are_certified(q1 in small_poly(), q2 in small_poly()) {
        let mut p = &(&q1 * &q1) + &(&q2 * &q2);
        // 10% interior margin: the solver certifies strictly-interior
        // instances reliably; percent-level margins occasionally stall the
        // interior-point method on unlucky random instances (documented
        // boundary behaviour, not a correctness issue).
        let delta = 1e-1 * p.max_abs_coefficient().max(1.0);
        for m in monomials_up_to(NVARS, 2) {
            p.add_term(m.mul(&m), delta);
        }
        prop_assume!(p.max_abs_coefficient() > 1e-3);
        let mut prog = SosProgram::new(NVARS);
        let c = prog.require_sos(p.clone().into());
        // The interior-point method stalls on a small fraction of random
        // instances (boundary-hugging min-trace optima); retry with a
        // different objective weight before discarding the case. The real
        // property under test is that *answers* are correct (residual),
        // never that every instance solves.
        let sol = prog.solve(&SosOptions::default()).or_else(|_| {
            let opts = SosOptions {
                trace_weight: 1e-3,
                ..Default::default()
            };
            prog.solve(&opts)
        });
        prop_assume!(sol.is_ok());
        let dec = sol.unwrap().sos_decomposition(c).unwrap();
        let res = dec.residual(&p);
        prop_assert!(res < 1e-5 * p.max_abs_coefficient().max(1.0), "residual {res}");
    }

    /// A polynomial minus a value strictly below its sampled minimum on the
    /// unit disc must be certifiably nonnegative there.
    #[test]
    fn sampled_minimum_is_certified_on_disc(p in small_poly()) {
        // Sample the minimum of p on the unit disc.
        let mut min_val = f64::INFINITY;
        for i in 0..40 {
            for j in 0..40 {
                let x = -1.0 + 2.0 * (i as f64) / 39.0;
                let y = -1.0 + 2.0 * (j as f64) / 39.0;
                if x * x + y * y <= 1.0 {
                    min_val = min_val.min(p.eval(&[x, y]));
                }
            }
        }
        let slack = 0.5 + 0.1 * p.max_abs_coefficient();
        let c = min_val - slack;
        let disc = &Polynomial::constant(NVARS, 1.0) - &Polynomial::norm_squared(NVARS);
        let mut prog = SosProgram::new(NVARS);
        let expr = PolyExpr::from(&p - &Polynomial::constant(NVARS, c));
        prog.require_nonneg_on(expr, &[disc], 1);
        let ok = prog.solve(&SosOptions::default()).is_ok() || {
            let opts = SosOptions {
                trace_weight: 1e-3,
                ..Default::default()
            };
            prog.solve(&opts).is_ok()
        };
        prop_assert!(ok, "p - (min - slack) must be certifiable on the disc");
    }

    /// The zero-equality constraint pins a decision polynomial exactly.
    #[test]
    fn equality_constraint_pins_polynomial(target in small_poly()) {
        let mut prog = SosProgram::new(NVARS);
        let v = prog.new_poly_of_degree(0, 2);
        prog.require_zero(prog.poly(v).sub(&target.clone().into()));
        let sol = prog.solve(&SosOptions::default());
        prop_assert!(sol.is_ok());
        let got = sol.unwrap().poly_value(v);
        prop_assert!((&got - &target).max_abs_coefficient() < 1e-5);
    }

    /// `poly_composed` compiles the substitution V(R(x)) correctly: pinning
    /// V(R(x)) = target(R(x)) recovers V = target (for injective affine R).
    #[test]
    fn composition_operation_matches_numeric(target in small_poly(),
                                             a in 0.5f64..2.0, b in -1.0f64..1.0) {
        // R(x, y) = (a·x + b, y − b): affine and invertible.
        let r = vec![
            Polynomial::from_terms(NVARS, &[(&[1, 0], a), (&[0, 0], b)]),
            Polynomial::from_terms(NVARS, &[(&[0, 1], 1.0), (&[0, 0], -b)]),
        ];
        let composed_target = target.compose(&r);
        let mut prog = SosProgram::new(NVARS);
        let v = prog.new_poly_of_degree(0, 2);
        prog.require_zero(
            prog.poly_composed(v, &r).sub(&composed_target.clone().into()),
        );
        let sol = prog.solve(&SosOptions::default());
        prop_assert!(sol.is_ok());
        let got = sol.unwrap().poly_value(v);
        prop_assert!((&got - &target).max_abs_coefficient() < 1e-4,
            "V(R(x)) pinning failed: got {got}, want {target}");
    }

    /// Lie-derivative compilation agrees with numeric differentiation.
    #[test]
    fn lie_derivative_compilation_is_consistent(f1 in small_poly(), f2 in small_poly()) {
        let field = vec![f1, f2];
        // Pin V = x² + y² and require V̇ + known == 0 for the known numeric
        // Lie derivative; feasibility means the compiled operator matched.
        let v_target = Polynomial::norm_squared(NVARS);
        let vdot = v_target.lie_derivative(&field);
        let mut prog = SosProgram::new(NVARS);
        let v = prog.new_poly_of_degree(0, 2);
        prog.require_zero(prog.poly(v).sub(&v_target.clone().into()));
        prog.require_zero(
            prog.poly_lie_derivative(v, &field).sub(&vdot.clone().into()),
        );
        prop_assert!(prog.solve(&SosOptions::default()).is_ok());
    }
}
