//! Bisection driver for quasi-convex SOS optimisation.
//!
//! Several steps of the paper's methodology maximise a scalar subject to SOS
//! feasibility (level-curve maximisation, advection tightness γ). Rather
//! than trusting a perturbed linear objective, the paper — and this crate —
//! bisect on the scalar, re-solving a feasibility program per probe. The
//! result is robust to solver tolerance at the cost of ~`log₂((hi−lo)/tol)`
//! solves.

/// Outcome of a bisection run.
#[derive(Debug, Clone, PartialEq)]
pub struct BisectResult {
    /// Largest value found feasible (`None` if even `lo` was infeasible).
    pub best: Option<f64>,
    /// Number of feasibility probes performed.
    pub probes: usize,
}

/// Maximises `t ∈ [lo, hi]` such that `feasible(t)` holds, assuming
/// monotonicity (if `t` is feasible, every smaller value is too).
///
/// `tol` is the absolute resolution of the answer.
///
/// # Panics
///
/// Panics if `lo > hi` or `tol <= 0`.
///
/// # Examples
///
/// ```
/// use cppll_sos::maximize_bisect;
///
/// let r = maximize_bisect(0.0, 10.0, 1e-6, |t| t * t <= 2.0);
/// assert!((r.best.unwrap() - 2.0f64.sqrt()).abs() < 1e-5);
/// ```
pub fn maximize_bisect(
    lo: f64,
    hi: f64,
    tol: f64,
    mut feasible: impl FnMut(f64) -> bool,
) -> BisectResult {
    assert!(lo <= hi, "lo must not exceed hi");
    assert!(tol > 0.0, "tolerance must be positive");
    let mut probes = 0;
    // Check endpoints first.
    probes += 1;
    if !feasible(lo) {
        return BisectResult { best: None, probes };
    }
    probes += 1;
    if feasible(hi) {
        return BisectResult {
            best: Some(hi),
            probes,
        };
    }
    let mut good = lo;
    let mut bad = hi;
    while bad - good > tol {
        let mid = 0.5 * (good + bad);
        probes += 1;
        if feasible(mid) {
            good = mid;
        } else {
            bad = mid;
        }
    }
    BisectResult {
        best: Some(good),
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_threshold() {
        let r = maximize_bisect(0.0, 1.0, 1e-9, |t| t <= 0.3125);
        assert!((r.best.unwrap() - 0.3125).abs() < 1e-8);
    }

    #[test]
    fn infeasible_lo_returns_none() {
        let r = maximize_bisect(0.5, 1.0, 1e-6, |_| false);
        assert_eq!(r.best, None);
        assert_eq!(r.probes, 1);
    }

    #[test]
    fn feasible_hi_short_circuits() {
        let r = maximize_bisect(0.0, 7.0, 1e-6, |_| true);
        assert_eq!(r.best, Some(7.0));
        assert_eq!(r.probes, 2);
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let r = maximize_bisect(0.0, 1.0, 1e-6, |t| t <= 0.5);
        assert!(r.probes <= 25, "probes = {}", r.probes);
    }
}
