//! Polynomial sublevel-set inclusion via SOS (Lemma 1 of the paper).

use cppll_poly::Polynomial;

use crate::program::{SosOptions, SosProgram};
use crate::PolyExpr;

/// Options for the set-inclusion check.
#[derive(Debug, Clone)]
pub struct InclusionOptions {
    /// Half-degree of the SOS multipliers (`σ₀, σ₁, τⱼ`).
    pub mult_half_degree: u32,
    /// SOS/SDP options for the feasibility solve.
    pub sos: SosOptions,
}

impl Default for InclusionOptions {
    fn default() -> Self {
        InclusionOptions {
            mult_half_degree: 1,
            sos: SosOptions::default(),
        }
    }
}

/// Checks the sublevel-set inclusion `S(p₁) ∩ D ⊆ S(p₂)` where
/// `S(p) = {x : p(x) ≤ 0}` and `D = {x : gⱼ(x) ≥ 0}`.
///
/// Implements Lemma 1 of the paper (with an S-procedure extension for the
/// ambient domain): find SOS `σ₀, σ₁, τⱼ` such that
///
/// ```text
/// −p₂ − σ₁·(−p₁) − Σⱼ τⱼ gⱼ = σ₀   (SOS)
/// ```
///
/// For `x ∈ S(p₁) ∩ D` we have `−p₁(x) ≥ 0` and `gⱼ(x) ≥ 0`, hence
/// `−p₂(x) ≥ σ₁·(−p₁) + Σ τⱼ gⱼ ≥ 0`, i.e. `x ∈ S(p₂)`.
///
/// Returns `true` when a certificate of the requested degree exists. A
/// `false` answer is **inconclusive** (the relaxation is sound but
/// incomplete), matching the paper's use of SOS relaxations.
///
/// # Examples
///
/// ```
/// use cppll_poly::Polynomial;
/// use cppll_sos::{check_inclusion, InclusionOptions};
///
/// // {x² ≤ 1} ⊆ {x² ≤ 4}:  p1 = x²−1, p2 = x²−4.
/// let p1 = Polynomial::from_terms(1, &[(&[2], 1.0), (&[0], -1.0)]);
/// let p2 = Polynomial::from_terms(1, &[(&[2], 1.0), (&[0], -4.0)]);
/// assert!(check_inclusion(&p1, &p2, &[], &InclusionOptions::default()));
/// assert!(!check_inclusion(&p2, &p1, &[], &InclusionOptions::default()));
/// ```
pub fn check_inclusion(
    p1: &Polynomial,
    p2: &Polynomial,
    domain: &[Polynomial],
    options: &InclusionOptions,
) -> bool {
    let prog = inclusion_program(p1, p2, domain, options);
    prog.solve(&options.sos).is_ok()
}

/// Outcome of [`check_inclusion_seeded`]: the inclusion answer plus the
/// final SDP iterate of the feasibility solve.
#[derive(Debug, Clone)]
pub struct InclusionProbe {
    /// Same answer [`check_inclusion`] would give.
    pub included: bool,
    /// Final iterate of the underlying SDP solve, reusable as a
    /// [`warm start`](cppll_sdp::SolverOptions::warm_start) for the next
    /// structurally-identical inclusion check. `None` only when no solve
    /// attempt ran.
    pub iterate: Option<cppll_sdp::SdpSolution>,
    /// `true` when the solver actually accepted the seed (dimensions
    /// matched and the iterate was restorable), whether or not the seeded
    /// attempt's answer was kept.
    pub warm_started: bool,
}

/// [`check_inclusion`] with warm-start chaining: the solve is seeded from
/// `warm` (a saved iterate of a structurally-identical earlier check — e.g.
/// the previous advection step's probe for the same mode) and the final
/// iterate comes back in the probe for the next link in the chain.
///
/// Sublevel-set advection by exact composition preserves piece degrees, so
/// successive per-mode inclusion programs compile to SDPs with identical
/// block structure. A warm start is a heuristic, never a verdict: when the
/// seeded solve finds a certificate the answer is sound (the certificate
/// stands on its own), but a seeded solve that fails — numerically or with
/// a heuristic infeasibility flag — may just be stuck in the stale basin of
/// the previous problem's iterate, so the check is re-answered from a cold
/// start. The answer therefore always matches what [`check_inclusion`]
/// would conclude; the seed only ever saves work.
pub fn check_inclusion_seeded(
    p1: &Polynomial,
    p2: &Polynomial,
    domain: &[Polynomial],
    options: &InclusionOptions,
    warm: Option<&cppll_sdp::SdpSolution>,
) -> InclusionProbe {
    let prog = inclusion_program(p1, p2, domain, options);
    let mut warm_started = false;
    if warm.is_some() {
        let mut opts = options.sos.clone();
        opts.sdp.warm_start = warm.cloned();
        let (result, iterate) = prog.solve_with_iterate(&opts);
        warm_started = iterate.as_ref().is_some_and(|it| it.warm_started);
        if result.is_ok() {
            return InclusionProbe {
                included: true,
                iterate,
                warm_started,
            };
        }
        // Seeded attempt failed: fall through to the cold solve below.
    }
    let (result, iterate) = prog.solve_with_iterate(&options.sos);
    InclusionProbe {
        included: result.is_ok(),
        iterate,
        warm_started,
    }
}

/// Builds the Lemma-1 feasibility program shared by both entry points.
fn inclusion_program(
    p1: &Polynomial,
    p2: &Polynomial,
    domain: &[Polynomial],
    options: &InclusionOptions,
) -> SosProgram {
    let nvars = p1.nvars();
    assert_eq!(p2.nvars(), nvars, "polynomial ring mismatch");
    let mut prog = SosProgram::new(nvars);
    // −p₂ − σ₁·(−p₁) − Σ τⱼ gⱼ  is SOS.
    let s1 = prog.new_sos_poly(options.mult_half_degree);
    let mut expr = PolyExpr::from(p2.scale(-1.0));
    expr = expr.sub(&prog.sos_poly(s1).mul_poly(&p1.scale(-1.0)));
    for g in domain {
        assert_eq!(g.nvars(), nvars, "domain polynomial ring mismatch");
        let tj = prog.new_sos_poly(options.mult_half_degree);
        expr = expr.sub(&prog.sos_poly(tj).mul_poly(g));
    }
    prog.require_sos(expr);
    prog
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disc(r2: f64) -> Polynomial {
        // ‖x‖² − r²  (sublevel set = disc of radius r).
        &Polynomial::norm_squared(2) - &Polynomial::constant(2, r2)
    }

    #[test]
    fn nested_discs() {
        let small = disc(1.0);
        let big = disc(4.0);
        let opt = InclusionOptions::default();
        assert!(check_inclusion(&small, &big, &[], &opt));
        assert!(!check_inclusion(&big, &small, &[], &opt));
    }

    #[test]
    fn seeded_probe_matches_plain_answer_and_chains() {
        let small = disc(1.0);
        let big = disc(4.0);
        let opt = InclusionOptions::default();
        let first = check_inclusion_seeded(&small, &big, &[], &opt, None);
        assert!(first.included);
        assert!(!first.warm_started, "no seed was offered");
        let seed = first.iterate.expect("iterate captured");
        assert!(!seed.warm_started, "cold solve must not claim a warm start");
        let second = check_inclusion_seeded(&small, &big, &[], &opt, Some(&seed));
        assert!(second.included);
        assert!(
            second.warm_started,
            "structurally identical re-solve should accept the seed"
        );
        // An infeasible probe still yields an iterate for the chain, and a
        // seed must not flip the (cold-verified) negative answer.
        let neg = check_inclusion_seeded(&big, &small, &[], &opt, None);
        assert!(!neg.included);
        assert!(neg.iterate.is_some());
        let neg_seeded = check_inclusion_seeded(&big, &small, &[], &opt, neg.iterate.as_ref());
        assert!(!neg_seeded.included, "seeding must not change the answer");
    }

    #[test]
    fn inclusion_with_domain_restriction() {
        // {x² + y² ≤ 4} ∩ {x ≥ 3} is empty ⇒ included in anything,
        // certified with the τ multiplier on g = x − 3.
        let big = disc(4.0);
        let tiny = disc(0.01);
        let g = Polynomial::from_terms(2, &[(&[1, 0], 1.0), (&[0, 0], -3.0)]);
        let opt = InclusionOptions {
            mult_half_degree: 1,
            ..Default::default()
        };
        assert!(check_inclusion(&big, &tiny, &[g], &opt));
    }

    #[test]
    fn ellipse_in_disc() {
        // {x²/4 + y² ≤ 1} ⊆ {x² + y² ≤ 4}.
        let ellipse =
            Polynomial::from_terms(2, &[(&[2, 0], 0.25), (&[0, 2], 1.0), (&[0, 0], -1.0)]);
        let big = disc(4.0);
        assert!(check_inclusion(
            &ellipse,
            &big,
            &[],
            &InclusionOptions::default()
        ));
        // But not in the unit disc.
        let unit = disc(1.0);
        assert!(!check_inclusion(
            &ellipse,
            &unit,
            &[],
            &InclusionOptions::default()
        ));
    }
}
