//! The SOS program builder and its compilation to an SDP.

use std::collections::BTreeMap;

use cppll_linalg::Matrix;
use cppll_poly::{monomials_up_to, prune_gram_basis, Monomial, Polynomial};
use cppll_sdp::{BlockId, FreeVarId, SdpProblem, SdpSolution, SdpStatus, SolverOptions};
use cppll_trace::TraceLevel;

use crate::decomposition::SosDecomposition;
use crate::expr::{GramVarId, PolyExpr, PolyOp, PolyVarId, ScalarVarId};
use crate::reduce::{split_by_signature, ReductionOptions, ReductionStats, SymmetryDetector};
use crate::supervisor::{AttemptRecord, ResilienceOptions};

/// Identifier of an SOS constraint (used to read back Gram matrices and
/// decompositions from a solution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SosConstraintId(usize);

/// Options controlling compilation and the underlying SDP solve.
#[derive(Debug, Clone)]
pub struct SosOptions {
    /// Weight of `Σ tr(Gram)` added to the objective. For pure feasibility
    /// problems this regularises the solution towards small Gram matrices
    /// and guarantees dual strict feasibility; when a linear objective is
    /// present it should be small.
    pub trace_weight: f64,
    /// Options forwarded to the SDP solver.
    pub sdp: SolverOptions,
    /// Supervision of the solve: retry policy, budgets, fault hooks. The
    /// default is inert (single attempt, no timeouts).
    pub resilience: ResilienceOptions,
    /// Problem-size reduction applied during compilation (Newton-polytope
    /// basis pruning + sign-symmetry block-diagonalisation). On by default;
    /// [`ReductionOptions::none`] reproduces the unreduced SDP bit for bit.
    pub reduction: ReductionOptions,
}

impl Default for SosOptions {
    fn default() -> Self {
        SosOptions {
            trace_weight: 1.0,
            sdp: SolverOptions::default(),
            resilience: ResilienceOptions::default(),
            reduction: ReductionOptions::default(),
        }
    }
}

impl SosOptions {
    /// Options suited to problems with a meaningful linear objective: the
    /// Gram trace regularisation is made negligible.
    pub fn with_objective() -> Self {
        SosOptions {
            trace_weight: 1e-6,
            ..Default::default()
        }
    }
}

/// Error returned when an SOS program cannot be solved.
#[derive(Debug, Clone)]
pub enum SosError {
    /// The SDP solver flagged (likely) infeasibility — no certificate of the
    /// requested form exists (or the relaxation degree is too low).
    Infeasible {
        /// Underlying solver status.
        status: SdpStatus,
    },
    /// The solver failed numerically before reaching an answer, after
    /// exhausting any configured retries. Carries the final iterate's
    /// residuals and the full attempt log for diagnosis.
    Numerical {
        /// Underlying solver status of the final attempt.
        status: SdpStatus,
        /// Final relative primal infeasibility.
        primal_infeasibility: f64,
        /// Final relative dual infeasibility.
        dual_infeasibility: f64,
        /// Final relative duality gap.
        gap: f64,
        /// Interior-point iterations of the final attempt.
        iterations: usize,
        /// Every attempt made, in order.
        attempts: Vec<AttemptRecord>,
    },
}

impl SosError {
    /// The supervised attempt log, when one exists. Infeasibility carries
    /// no attempts — it is an answer reached on the first try that counts,
    /// not a failure history.
    pub fn attempts(&self) -> &[AttemptRecord] {
        match self {
            SosError::Infeasible { .. } => &[],
            SosError::Numerical { attempts, .. } => attempts,
        }
    }
}

impl std::fmt::Display for SosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SosError::Infeasible { status } => {
                write!(f, "sos program is infeasible ({status})")
            }
            SosError::Numerical {
                status,
                primal_infeasibility,
                dual_infeasibility,
                gap,
                iterations,
                attempts,
            } => {
                write!(
                    f,
                    "sdp solver failed numerically ({status}) after {} attempt(s): \
                     pinf={primal_infeasibility:.2e} dinf={dual_infeasibility:.2e} \
                     gap={gap:.2e} iters={iterations}",
                    attempts.len().max(1)
                )
            }
        }
    }
}

impl std::error::Error for SosError {}

struct PolyVarInfo {
    basis: Vec<Monomial>,
}

struct GramVarInfo {
    basis: Vec<Monomial>,
    /// Per-variable override of the objective trace weight.
    trace_weight: Option<f64>,
}

enum ConstraintKind {
    /// Expression must equal `z(x)ᵀ P z(x)` for some `P ⪰ 0`.
    Sos {
        basis_override: Option<Vec<Monomial>>,
    },
    /// Expression must be identically zero.
    Zero,
}

struct Constraint {
    expr: PolyExpr,
    kind: ConstraintKind,
}

/// A sum-of-squares program: decision scalars/polynomials plus SOS and
/// zero-equality constraints over them, compiled to one block SDP.
///
/// See the crate-level documentation for the programming model and an
/// example.
pub struct SosProgram {
    nvars: usize,
    num_scalars: usize,
    polys: Vec<PolyVarInfo>,
    grams: Vec<GramVarInfo>,
    constraints: Vec<Constraint>,
    /// `minimise Σ w·s` objective terms on scalar variables.
    objective: Vec<(ScalarVarId, f64)>,
}

impl SosProgram {
    /// Creates an empty program over `nvars` indeterminates.
    pub fn new(nvars: usize) -> Self {
        SosProgram {
            nvars,
            num_scalars: 0,
            polys: Vec::new(),
            grams: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
        }
    }

    /// Number of indeterminates.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Adds a scalar decision variable.
    pub fn new_scalar(&mut self) -> ScalarVarId {
        self.num_scalars += 1;
        ScalarVarId(self.num_scalars - 1)
    }

    /// Adds a coefficient decision polynomial spanning `basis`.
    ///
    /// # Panics
    ///
    /// Panics if a basis monomial lives over the wrong number of variables.
    pub fn new_poly(&mut self, basis: Vec<Monomial>) -> PolyVarId {
        for m in &basis {
            assert_eq!(m.nvars(), self.nvars, "basis monomial ring mismatch");
        }
        self.polys.push(PolyVarInfo { basis });
        PolyVarId(self.polys.len() - 1)
    }

    /// Adds a coefficient decision polynomial spanning all monomials with
    /// total degree in `[min_degree, max_degree]`.
    pub fn new_poly_of_degree(&mut self, min_degree: u32, max_degree: u32) -> PolyVarId {
        let basis = monomials_up_to(self.nvars, max_degree)
            .into_iter()
            .filter(|m| m.degree() >= min_degree)
            .collect();
        self.new_poly(basis)
    }

    /// Adds a Gram-backed SOS decision polynomial of degree `2·half_degree`
    /// (an S-procedure multiplier). The polynomial is SOS by construction.
    pub fn new_sos_poly(&mut self, half_degree: u32) -> GramVarId {
        let basis = monomials_up_to(self.nvars, half_degree);
        self.grams.push(GramVarInfo {
            basis,
            trace_weight: None,
        });
        GramVarId(self.grams.len() - 1)
    }

    /// Overrides the objective trace weight of one SOS multiplier. Heavier
    /// weights push the solver towards *small* multipliers — useful when a
    /// downstream consumer (e.g. exact rounding) needs the main Gram to
    /// keep interior slack instead of being traded against the multipliers.
    pub fn set_sos_poly_trace_weight(&mut self, g: GramVarId, weight: f64) {
        self.grams[g.0].trace_weight = Some(weight);
    }

    /// Adds a Gram-backed SOS decision polynomial over an explicit basis.
    ///
    /// # Panics
    ///
    /// Panics if a basis monomial lives over the wrong number of variables.
    pub fn new_sos_poly_with_basis(&mut self, basis: Vec<Monomial>) -> GramVarId {
        for m in &basis {
            assert_eq!(m.nvars(), self.nvars, "basis monomial ring mismatch");
        }
        self.grams.push(GramVarInfo {
            basis,
            trace_weight: None,
        });
        GramVarId(self.grams.len() - 1)
    }

    /// Expression consisting of the single scalar variable `s`.
    pub fn scalar(&self, s: ScalarVarId) -> PolyExpr {
        let mut e = PolyExpr::zero(self.nvars);
        e.scalar_terms
            .push((s, Polynomial::constant(self.nvars, 1.0)));
        e
    }

    /// Expression consisting of the decision polynomial `v`.
    pub fn poly(&self, v: PolyVarId) -> PolyExpr {
        let mut e = PolyExpr::zero(self.nvars);
        e.poly_terms
            .push((v, PolyOp::Mul(Polynomial::constant(self.nvars, 1.0))));
        e
    }

    /// Expression for the composition `v(R(x))` of decision polynomial `v`
    /// with a known polynomial map `R` — affine in `v`'s coefficients. Used
    /// for jump conditions `V(R(x)) − V(x) ≤ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `subs.len() != self.nvars()` or the components live in a
    /// different ring.
    pub fn poly_composed(&self, v: PolyVarId, subs: &[Polynomial]) -> PolyExpr {
        assert_eq!(subs.len(), self.nvars, "substitution arity mismatch");
        for s in subs {
            assert_eq!(s.nvars(), self.nvars, "substitution ring mismatch");
        }
        let mut e = PolyExpr::zero(self.nvars);
        e.poly_terms.push((
            v,
            PolyOp::ComposeMul(subs.to_vec(), Polynomial::constant(self.nvars, 1.0)),
        ));
        e
    }

    /// Expression consisting of the SOS multiplier `g`.
    pub fn sos_poly(&self, g: GramVarId) -> PolyExpr {
        let mut e = PolyExpr::zero(self.nvars);
        e.gram_terms
            .push((g, Polynomial::constant(self.nvars, 1.0)));
        e
    }

    /// Expression for the Lie derivative `∇v · f` of decision polynomial `v`
    /// along the known vector field `f`.
    ///
    /// The Lie derivative is linear in `v`'s coefficients, so the result is
    /// still an affine expression.
    ///
    /// # Panics
    ///
    /// Panics if `f.len() != self.nvars()`.
    pub fn poly_lie_derivative(&self, v: PolyVarId, f: &[Polynomial]) -> PolyExpr {
        assert_eq!(f.len(), self.nvars, "vector field dimension mismatch");
        // ∇(Σλm)·f = Σᵢ (∂V/∂xᵢ) · fᵢ — each summand is a linear operation
        // on V's coefficients.
        let mut e = PolyExpr::zero(self.nvars);
        for (i, fi) in f.iter().enumerate() {
            e = e.add(&self.poly_partial_derivative(v, i).mul_poly(fi));
        }
        e
    }

    /// Expression for `∂v/∂xᵢ` of decision polynomial `v` — affine in the
    /// coefficients of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nvars()`.
    pub fn poly_partial_derivative(&self, v: PolyVarId, i: usize) -> PolyExpr {
        assert!(i < self.nvars, "variable index out of range");
        let mut e = PolyExpr::zero(self.nvars);
        e.poly_terms.push((
            v,
            PolyOp::DerivMul(i, Polynomial::constant(self.nvars, 1.0)),
        ));
        e
    }

    /// Adds the constraint `expr(x)` is SOS; returns an id for reading the
    /// Gram matrix back.
    ///
    /// # Panics
    ///
    /// Panics if `expr` lives over a different number of variables.
    pub fn require_sos(&mut self, expr: PolyExpr) -> SosConstraintId {
        assert_eq!(expr.nvars(), self.nvars, "expression ring mismatch");
        self.constraints.push(Constraint {
            expr,
            kind: ConstraintKind::Sos {
                basis_override: None,
            },
        });
        SosConstraintId(self.constraints.len() - 1)
    }

    /// Adds the constraint `expr(x)` is SOS with an explicit Gram basis.
    ///
    /// # Panics
    ///
    /// Panics on ring mismatches.
    pub fn require_sos_with_basis(
        &mut self,
        expr: PolyExpr,
        basis: Vec<Monomial>,
    ) -> SosConstraintId {
        assert_eq!(expr.nvars(), self.nvars, "expression ring mismatch");
        for m in &basis {
            assert_eq!(m.nvars(), self.nvars, "basis monomial ring mismatch");
        }
        self.constraints.push(Constraint {
            expr,
            kind: ConstraintKind::Sos {
                basis_override: Some(basis),
            },
        });
        SosConstraintId(self.constraints.len() - 1)
    }

    /// Adds the constraint `expr(x) ≡ 0` (coefficient-wise).
    ///
    /// # Panics
    ///
    /// Panics if `expr` lives over a different number of variables.
    pub fn require_zero(&mut self, expr: PolyExpr) {
        assert_eq!(expr.nvars(), self.nvars, "expression ring mismatch");
        self.constraints.push(Constraint {
            expr,
            kind: ConstraintKind::Zero,
        });
    }

    /// S-procedure helper: requires `expr ≥ 0` on the semialgebraic set
    /// `{x : gⱼ(x) ≥ 0}` by adding `expr − Σ σⱼ gⱼ` SOS with fresh SOS
    /// multipliers `σⱼ` of degree `2·mult_half_degree`.
    ///
    /// Returns the multiplier ids (useful for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics on ring mismatches.
    pub fn require_nonneg_on(
        &mut self,
        expr: PolyExpr,
        domain: &[Polynomial],
        mult_half_degree: u32,
    ) -> (SosConstraintId, Vec<GramVarId>) {
        let mut e = expr;
        let mut mults = Vec::with_capacity(domain.len());
        for g in domain {
            assert_eq!(g.nvars(), self.nvars, "domain polynomial ring mismatch");
            let sigma = self.new_sos_poly(mult_half_degree);
            mults.push(sigma);
            e = e.sub(&self.sos_poly(sigma).mul_poly(g));
        }
        let id = self.require_sos(e);
        (id, mults)
    }

    /// Sets the objective to `minimise Σ wᵢ sᵢ` over scalar variables.
    pub fn minimize(&mut self, terms: &[(ScalarVarId, f64)]) {
        self.objective = terms.to_vec();
    }

    /// Sets the objective to `maximise s` (i.e. minimise `−s`).
    pub fn maximize_scalar(&mut self, s: ScalarVarId) {
        self.objective = vec![(s, -1.0)];
    }

    /// Compiles and solves the program under the supervision configured in
    /// [`SosOptions::resilience`]: retryable failures (stalls, iteration
    /// limits) are re-solved with escalated regularisation, a rescaled
    /// trace weight, and a jittered step fraction, up to the retry budget;
    /// each attempt respects the solve timeout and pipeline deadline. The
    /// default options perform exactly one attempt.
    ///
    /// # Errors
    ///
    /// [`SosError::Infeasible`] when the solver reports (likely)
    /// infeasibility (never retried — it is an answer about the problem);
    /// [`SosError::Numerical`] once retries are exhausted, carrying the
    /// final residuals and the full attempt log.
    pub fn solve(&self, options: &SosOptions) -> Result<SosSolution, SosError> {
        self.solve_supervised(options, false).0
    }

    /// Like [`SosProgram::solve`], but additionally returns the final SDP
    /// iterate of the last attempt — even when the answer is
    /// [`SosError::Infeasible`]. Checkpointing uses this to save a
    /// warm-start seed for the structurally-identical next solve (advection
    /// inclusion probes are *expected* to come back infeasible until the
    /// level set stops moving, and their iterates are still good seeds).
    ///
    /// The iterate is `None` only when no attempt ran at all.
    ///
    /// # Errors
    ///
    /// Exactly as [`SosProgram::solve`].
    pub fn solve_with_iterate(
        &self,
        options: &SosOptions,
    ) -> (Result<SosSolution, SosError>, Option<SdpSolution>) {
        self.solve_supervised(options, true)
    }

    fn solve_supervised(
        &self,
        options: &SosOptions,
        capture: bool,
    ) -> (Result<SosSolution, SosError>, Option<SdpSolution>) {
        let res = &options.resilience;
        let policy = &res.retry;
        let mut attempts: Vec<AttemptRecord> = Vec::new();
        let max_attempts = policy.max_retries + 1;

        let _sos_span = res.tracer.as_ref().map(|t| {
            t.span(
                TraceLevel::Solve,
                "sos_solve",
                format!(
                    "constraints={} polys={} scalars={}",
                    self.constraints.len(),
                    self.polys.len(),
                    self.num_scalars
                ),
            )
        });

        for attempt in 0..max_attempts {
            let _attempt_span = res
                .tracer
                .as_ref()
                .map(|t| t.span(TraceLevel::Solve, "attempt", format!("attempt={attempt}")));
            let attempt_options = self.options_for_attempt(options, attempt);
            if let Some(fault) = &res.fault {
                fault.set_attempt(attempt);
            }
            let compiled = self.compile(&attempt_options);
            let mut sol = compiled.sdp.solve(&attempt_options.sdp);
            // Reduction happens at compile time, before the solver runs; fold
            // it into the solve timings so every stage of the pipeline is
            // accounted for in one place.
            sol.timings.reduction = compiled.reduction_seconds;
            sol.timings.total += compiled.reduction_seconds;
            let sol = sol;
            if sol.warm_started {
                if let Some(t) = &res.tracer {
                    t.counter("warm_start_hit", 1);
                }
            }
            if let Some(ledger) = &res.ledger {
                // Stage timings are aggregated apart from the attempt log so
                // the log stays byte-deterministic.
                ledger.add_timings(&sol.timings);
                ledger.add_reduction(&compiled.stats);
            }
            let mut record = AttemptRecord {
                attempt,
                status: sol.status,
                iterations: sol.iterations,
                primal_infeasibility: sol.primal_infeasibility,
                dual_infeasibility: sol.dual_infeasibility,
                gap: sol.gap,
                trace_weight: attempt_options.trace_weight,
                schur_regularization: attempt_options.sdp.schur_regularization,
                step_fraction: attempt_options.sdp.step_fraction,
                planned_backoff_ms: 0,
            };

            match sol.status {
                SdpStatus::Optimal | SdpStatus::NearOptimal => {
                    attempts.push(record);
                    if let Some(ledger) = &res.ledger {
                        ledger.record(&attempts, true);
                    }
                    let captured = capture.then(|| sol.clone());
                    return (
                        Ok(SosSolution {
                            nvars: self.nvars,
                            sdp: sol,
                            layout: compiled.layout,
                            reduction: compiled.stats,
                            poly_bases: self.polys.iter().map(|p| p.basis.clone()).collect(),
                            exprs: self.constraints.iter().map(|c| c.expr.clone()).collect(),
                        }),
                        captured,
                    );
                }
                SdpStatus::PrimalInfeasibleLikely | SdpStatus::DualInfeasibleLikely => {
                    attempts.push(record);
                    if let Some(ledger) = &res.ledger {
                        // An infeasibility verdict is an *answer*, not a
                        // failure: bisection probes hit it in normal
                        // operation, and the pipeline's degradation logic
                        // keys off the ledger's failure count.
                        ledger.record(&attempts, true);
                    }
                    let status = sol.status;
                    return (Err(SosError::Infeasible { status }), capture.then_some(sol));
                }
                s if s.is_retryable() && attempt + 1 < max_attempts => {
                    let backoff = policy.planned_backoff_ms(attempt + 1);
                    record.planned_backoff_ms = backoff;
                    attempts.push(record);
                    // The planned backoff counts against the pipeline
                    // deadline: sleep only the time the deadline leaves,
                    // and skip entirely once it has passed. The next
                    // attempt then fails fast with DeadlineExceeded
                    // instead of overshooting the budget in a sleep.
                    let planned = std::time::Duration::from_millis(backoff);
                    let capped = match res.deadline {
                        Some(d) => d
                            .saturating_duration_since(std::time::Instant::now())
                            .min(planned),
                        None => planned,
                    };
                    if let Some(t) = &res.tracer {
                        t.counter("retry", 1);
                        if backoff > 0 {
                            t.counter("backoff", 1);
                        }
                        t.instant(
                            TraceLevel::Solve,
                            "backoff",
                            vec![
                                ("planned_ms", backoff.into()),
                                ("clamped_ms", (capped.as_secs_f64() * 1e3).into()),
                            ],
                        );
                    }
                    if policy.sleep && !capped.is_zero() {
                        std::thread::sleep(capped);
                    }
                }
                s => {
                    attempts.push(record);
                    if let Some(ledger) = &res.ledger {
                        ledger.record(&attempts, false);
                    }
                    return (
                        Err(SosError::Numerical {
                            status: s,
                            primal_infeasibility: sol.primal_infeasibility,
                            dual_infeasibility: sol.dual_infeasibility,
                            gap: sol.gap,
                            iterations: sol.iterations,
                            attempts,
                        }),
                        capture.then_some(sol),
                    );
                }
            }
        }
        unreachable!("the attempt loop always returns on its final attempt")
    }

    /// Derives the effective options for one supervised attempt:
    /// escalated regularisation, rescaled trace weight, jittered step
    /// fraction, and per-attempt deadline/iteration budget.
    fn options_for_attempt(&self, base: &SosOptions, attempt: usize) -> SosOptions {
        let res = &base.resilience;
        let policy = &res.retry;
        let mut opt = base.clone();
        if attempt > 0 {
            // A retry means the seeded (or cold) first attempt failed — go
            // back to the cold start so escalated regularisation works from
            // a known-interior point instead of a possibly-degenerate seed.
            opt.sdp.warm_start = None;
            let escalation = policy.regularization_escalation.powi(attempt as i32);
            opt.sdp.schur_regularization *= escalation;
            opt.sdp.free_regularization *= escalation;
            opt.trace_weight =
                (base.trace_weight * policy.trace_rescale.powi(attempt as i32)).max(1e-9);
        }
        opt.sdp.step_fraction = policy.jittered_step_fraction(base.sdp.step_fraction, attempt);
        if let Some(budget) = res.iteration_budget {
            opt.sdp.max_iterations = budget;
        }
        opt.sdp.deadline = res.attempt_deadline();
        opt.sdp.fault = res.fault.clone();
        opt.sdp.trace = res.tracer.clone();
        opt
    }

    // ---- compilation ----------------------------------------------------

    fn compile(&self, options: &SosOptions) -> Compiled {
        let red = &options.reduction;
        let mut reduction_seconds = 0.0;
        let mut stats = ReductionStats::default();

        // Sign symmetries are a property of the whole program: every
        // constraint must tolerate the flip, so the detector walks all of
        // them once up front.
        let generators: Vec<u64> = if red.symmetry {
            let t = std::time::Instant::now();
            let g = self.sign_symmetry_generators();
            reduction_seconds += t.elapsed().as_secs_f64();
            g
        } else {
            Vec::new()
        };

        let mut sdp = SdpProblem::new();
        // Free variables: scalars then poly coefficients.
        let scalar_free: Vec<FreeVarId> = (0..self.num_scalars)
            .map(|_| sdp.add_free_var(0.0))
            .collect();
        let mut poly_free: Vec<Vec<FreeVarId>> = Vec::with_capacity(self.polys.len());
        for p in &self.polys {
            poly_free.push(p.basis.iter().map(|_| sdp.add_free_var(0.0)).collect());
        }
        for &(s, w) in &self.objective {
            sdp.set_free_cost(scalar_free[s.0], w);
        }
        // PSD blocks: one per signature class per Gram (multipliers first,
        // then SOS constraints — same creation order as the unreduced
        // compiler, which the no-reduction path reproduces bit for bit).
        //
        // Multiplier Grams are free decision polynomials: the Newton
        // argument does not apply to them (there is no fixed target whose
        // polytope could bound their support), so their bases are never
        // pruned — only symmetry-split.
        let mut gram_layouts: Vec<GramLayout> = Vec::with_capacity(self.grams.len());
        for g in &self.grams {
            let basis = g.basis.clone();
            stats.grams += 1;
            stats.basis_before += basis.len();
            stats.basis_after += basis.len();
            let layout = self.make_layout(
                &mut sdp,
                basis,
                &generators,
                g.trace_weight.unwrap_or(options.trace_weight),
                &mut reduction_seconds,
                &mut stats,
            );
            gram_layouts.push(layout);
        }
        let mut constraint_layouts: Vec<Option<GramLayout>> = Vec::new();
        for c in &self.constraints {
            match &c.kind {
                ConstraintKind::Zero => constraint_layouts.push(None),
                ConstraintKind::Sos { basis_override } => {
                    let declared = basis_override
                        .clone()
                        .unwrap_or_else(|| self.auto_gram_basis(&c.expr, &gram_layouts));
                    stats.grams += 1;
                    stats.basis_before += declared.len();
                    // Newton pruning applies only to automatically chosen
                    // bases: explicit bases are a caller contract (exact
                    // verification relies on their dimension).
                    let basis = if red.newton && basis_override.is_none() {
                        let t = std::time::Instant::now();
                        let support: Vec<Monomial> = self
                            .expr_support(&c.expr, &gram_layouts)
                            .into_keys()
                            .collect();
                        let pruned = prune_gram_basis(&support, &declared);
                        reduction_seconds += t.elapsed().as_secs_f64();
                        pruned
                    } else {
                        declared
                    };
                    stats.basis_after += basis.len();
                    let layout = self.make_layout(
                        &mut sdp,
                        basis,
                        &generators,
                        options.trace_weight,
                        &mut reduction_seconds,
                        &mut stats,
                    );
                    constraint_layouts.push(Some(layout));
                }
            }
        }

        // Emit coefficient-matching equalities per constraint. The row set
        // must cover the FULL potential support of the non-Gram part (rows
        // with no Gram pair become pure linear constraints on the decision
        // variables), plus every within-block pair product of the
        // constraint's own Gram.
        for (ci, c) in self.constraints.iter().enumerate() {
            let mut support = self.expr_support(&c.expr, &gram_layouts);
            if let Some(layout) = &constraint_layouts[ci] {
                for (_, idxs) in &layout.blocks {
                    for (a, &ia) in idxs.iter().enumerate() {
                        for &ib in idxs.iter().skip(a) {
                            support.insert(layout.basis[ia].mul(&layout.basis[ib]), ());
                        }
                    }
                }
            }
            for alpha in support.keys() {
                let rhs = c.expr.constant.coefficient(alpha);
                let row = sdp.add_constraint(rhs);
                // Constraint's own Gram: +⟨E_α, P⟩, per block.
                if let Some(layout) = &constraint_layouts[ci] {
                    for (blk, idxs) in &layout.blocks {
                        for (a, &ia) in idxs.iter().enumerate() {
                            for (b, &ib) in idxs.iter().enumerate().skip(a) {
                                if &layout.basis[ia].mul(&layout.basis[ib]) == alpha {
                                    sdp.set_entry(row, *blk, a, b, 1.0);
                                }
                            }
                        }
                    }
                }
                // Scalar terms: move to LHS with flipped sign.
                for (s, q) in &c.expr.scalar_terms {
                    let coef = q.coefficient(alpha);
                    if coef != 0.0 {
                        sdp.set_free_coeff(row, scalar_free[s.0], -coef);
                    }
                }
                // Poly-var terms (linear operations on decision coefficients).
                for (v, op) in &c.expr.poly_terms {
                    for (k, m) in self.polys[v.0].basis.iter().enumerate() {
                        let coef = op.apply(m).coefficient(alpha);
                        if coef != 0.0 {
                            sdp.set_free_coeff(row, poly_free[v.0][k], -coef);
                        }
                    }
                }
                // Gram multiplier terms, per block.
                for (g, h) in &c.expr.gram_terms {
                    let layout = &gram_layouts[g.0];
                    for (blk, idxs) in &layout.blocks {
                        for (a, &ia) in idxs.iter().enumerate() {
                            for (b, &ib) in idxs.iter().enumerate().skip(a) {
                                let prod = layout.basis[ia].mul(&layout.basis[ib]);
                                // coefficient of alpha in (z_a z_b) * h
                                for (mh, ch) in h.terms() {
                                    if &prod.mul(mh) == alpha {
                                        sdp.set_entry(row, *blk, a, b, -ch);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        // Normalize once at compile time: SdpProblem::solve then skips its
        // defensive clone-and-normalize on every retry attempt.
        sdp.normalize();

        Compiled {
            sdp,
            layout: Layout {
                scalar_free,
                poly_free,
                gram_layouts,
                constraint_layouts,
            },
            reduction_seconds,
            stats,
        }
    }

    /// Splits `basis` into sign-symmetry signature classes and allocates one
    /// PSD block per class. With no generators this is the single identity
    /// class — byte-identical to the unreduced compiler.
    fn make_layout(
        &self,
        sdp: &mut SdpProblem,
        basis: Vec<Monomial>,
        generators: &[u64],
        trace_weight: f64,
        reduction_seconds: &mut f64,
        stats: &mut ReductionStats,
    ) -> GramLayout {
        let classes = if generators.is_empty() {
            vec![(0..basis.len()).collect()]
        } else {
            let t = std::time::Instant::now();
            let c = split_by_signature(&basis, generators);
            *reduction_seconds += t.elapsed().as_secs_f64();
            c
        };
        let mut blocks = Vec::with_capacity(classes.len());
        for idxs in classes {
            // Newton pruning can empty a basis outright (the constraint
            // degenerates to pure linear rows); the solver has no use for a
            // 0-dimensional PSD block.
            if idxs.is_empty() {
                continue;
            }
            let b = sdp.add_psd_block(idxs.len());
            sdp.set_block_cost_identity(b, trace_weight);
            stats.blocks += 1;
            stats.max_block = stats.max_block.max(idxs.len());
            blocks.push((b, idxs));
        }
        GramLayout { basis, blocks }
    }

    /// Harvests the GF(2) parity constraints every program datum imposes on
    /// a candidate sign flip and returns the group's generators. See
    /// [`crate::reduce`] for the per-term rules and the soundness argument.
    fn sign_symmetry_generators(&self) -> Vec<u64> {
        let mut det = SymmetryDetector::new(self.nvars);
        for c in &self.constraints {
            let e = &c.expr;
            det.require_invariant(&e.constant);
            for (_, q) in &e.scalar_terms {
                det.require_invariant(q);
            }
            for (_, op) in &e.poly_terms {
                match op {
                    PolyOp::Mul(q) => det.require_invariant(q),
                    PolyOp::DerivMul(i, q) => det.require_equivariant(q, *i),
                    PolyOp::ComposeMul(subs, q) => {
                        det.require_invariant(q);
                        for (j, s) in subs.iter().enumerate() {
                            det.require_equivariant(s, j);
                        }
                    }
                }
            }
            for (_, h) in &e.gram_terms {
                det.require_invariant(h);
            }
        }
        det.generators()
    }

    /// Union of all monomials that can appear in `expr`, with multiplier
    /// Gram products restricted to within-block pairs (cross-block entries
    /// are structurally zero). The constraint's own Gram products are added
    /// separately by the caller.
    fn expr_support(&self, expr: &PolyExpr, gram_layouts: &[GramLayout]) -> BTreeMap<Monomial, ()> {
        let mut set = BTreeMap::new();
        for (m, _) in expr.constant.terms() {
            set.insert(m.clone(), ());
        }
        for (_, q) in &expr.scalar_terms {
            for (m, _) in q.terms() {
                set.insert(m.clone(), ());
            }
        }
        for (v, op) in &expr.poly_terms {
            for m in &self.polys[v.0].basis {
                for (am, _) in op.apply(m).terms() {
                    set.insert(am.clone(), ());
                }
            }
        }
        for (g, h) in &expr.gram_terms {
            let layout = &gram_layouts[g.0];
            for (_, idxs) in &layout.blocks {
                for (a, &ia) in idxs.iter().enumerate() {
                    for &ib in idxs.iter().skip(a) {
                        let prod = layout.basis[ia].mul(&layout.basis[ib]);
                        for (mh, _) in h.terms() {
                            set.insert(prod.mul(mh), ());
                        }
                    }
                }
            }
        }
        set
    }

    /// Automatic Gram basis for an SOS constraint: all monomials whose
    /// doubled degree fits within the (per-variable and total) degree
    /// envelope of the expression's possible support.
    fn auto_gram_basis(&self, expr: &PolyExpr, gram_layouts: &[GramLayout]) -> Vec<Monomial> {
        let support = self.expr_support(expr, gram_layouts);
        if support.is_empty() {
            return vec![Monomial::one(self.nvars)];
        }
        let mut max_total = 0u32;
        let mut min_total = u32::MAX;
        let mut max_per_var = vec![0u32; self.nvars];
        for m in support.keys() {
            max_total = max_total.max(m.degree());
            min_total = min_total.min(m.degree());
            for (i, e) in max_per_var.iter_mut().enumerate() {
                *e = (*e).max(m.exp(i));
            }
        }
        let hi = max_total / 2;
        let lo = min_total.div_ceil(2).min(hi);
        monomials_up_to(self.nvars, hi)
            .into_iter()
            .filter(|m| {
                let d = m.degree();
                d >= lo && d <= hi && (0..self.nvars).all(|i| 2 * m.exp(i) <= max_per_var[i] + 1)
            })
            .collect()
    }
}

/// How one Gram variable maps onto SDP blocks: the (possibly pruned) basis
/// and, per signature class, the PSD block holding that class along with
/// the basis indices it covers.
struct GramLayout {
    basis: Vec<Monomial>,
    blocks: Vec<(BlockId, Vec<usize>)>,
}

impl GramLayout {
    /// Reassembles the full `basis.len() × basis.len()` Gram matrix from the
    /// solved blocks (cross-class entries are structurally zero).
    fn assemble(&self, x: &[Matrix]) -> Matrix {
        let n = self.basis.len();
        let mut q = Matrix::zeros(n, n);
        for (blk, idxs) in &self.blocks {
            let xb = &x[block_index(blk)];
            for (a, &ia) in idxs.iter().enumerate() {
                for (b, &ib) in idxs.iter().enumerate() {
                    q[(ia, ib)] = xb[(a, b)];
                }
            }
        }
        q
    }

    /// The polynomial `z(x)ᵀ Q z(x)` of the assembled Gram, without
    /// materialising the full matrix.
    fn to_poly(&self, x: &[Matrix], nvars: usize) -> Polynomial {
        let mut p = Polynomial::zero(nvars);
        for (blk, idxs) in &self.blocks {
            let xb = &x[block_index(blk)];
            for (a, &ia) in idxs.iter().enumerate() {
                for (b, &ib) in idxs.iter().enumerate() {
                    let v = xb[(a, b)];
                    if v != 0.0 {
                        p.add_term(self.basis[ia].mul(&self.basis[ib]), v);
                    }
                }
            }
        }
        p
    }

    /// The solved blocks as `(sub-basis, block Gram)` pairs.
    fn cloned_blocks(&self, x: &[Matrix]) -> Vec<(Vec<Monomial>, Matrix)> {
        self.blocks
            .iter()
            .map(|(blk, idxs)| {
                (
                    idxs.iter().map(|&i| self.basis[i].clone()).collect(),
                    x[block_index(blk)].clone(),
                )
            })
            .collect()
    }
}

struct Layout {
    scalar_free: Vec<FreeVarId>,
    poly_free: Vec<Vec<FreeVarId>>,
    gram_layouts: Vec<GramLayout>,
    constraint_layouts: Vec<Option<GramLayout>>,
}

struct Compiled {
    sdp: SdpProblem,
    layout: Layout,
    /// Wall-clock spent on symmetry detection, basis pruning and block
    /// splitting (reported as the `reduction` solve stage).
    reduction_seconds: f64,
    stats: ReductionStats,
}

/// A solved SOS program: read back scalar values, polynomial certificates,
/// Gram matrices and SOS decompositions.
pub struct SosSolution {
    nvars: usize,
    sdp: SdpSolution,
    layout: Layout,
    /// What compilation-time reduction achieved for this solve.
    reduction: ReductionStats,
    poly_bases: Vec<Vec<Monomial>>,
    /// Copies of the constraint expressions, for a-posteriori residuals.
    exprs: Vec<PolyExpr>,
}

impl SosSolution {
    /// Value of a scalar decision variable.
    pub fn scalar_value(&self, s: ScalarVarId) -> f64 {
        self.sdp.free[free_index(&self.layout.scalar_free[s.0])]
    }

    /// Numeric polynomial value of a coefficient decision polynomial.
    pub fn poly_value(&self, v: PolyVarId) -> Polynomial {
        let basis = &self.poly_bases[v.0];
        let nvars = basis.first().map_or(0, Monomial::nvars);
        let mut p = Polynomial::zero(nvars);
        for (k, m) in basis.iter().enumerate() {
            let val = self.sdp.free[free_index(&self.layout.poly_free[v.0][k])];
            p.add_term(m.clone(), val);
        }
        p
    }

    /// Numeric polynomial value of a Gram-backed SOS multiplier.
    pub fn sos_poly_value(&self, g: GramVarId) -> Polynomial {
        self.layout.gram_layouts[g.0].to_poly(&self.sdp.x, self.nvars)
    }

    /// Gram matrix and basis of a Gram-backed SOS multiplier — the raw
    /// certificate data (used, e.g., by exact-arithmetic post-verification).
    /// When sign-symmetry blocking is active the matrix is reassembled from
    /// the solved blocks (cross-class entries are structurally zero).
    pub fn sos_poly_gram(&self, g: GramVarId) -> (&[Monomial], Matrix) {
        let layout = &self.layout.gram_layouts[g.0];
        (layout.basis.as_slice(), layout.assemble(&self.sdp.x))
    }

    /// Gram matrix and basis of an SOS constraint (if the constraint was an
    /// SOS — `None` for zero-equality constraints), reassembled across the
    /// signature-class blocks.
    pub fn constraint_gram(&self, c: SosConstraintId) -> Option<(&[Monomial], Matrix)> {
        self.layout.constraint_layouts[c.0]
            .as_ref()
            .map(|layout| (layout.basis.as_slice(), layout.assemble(&self.sdp.x)))
    }

    /// The solved PSD blocks of an SOS constraint as `(sub-basis, Gram)`
    /// pairs — the blocked form of [`SosSolution::constraint_gram`].
    pub fn constraint_gram_blocks(
        &self,
        c: SosConstraintId,
    ) -> Option<Vec<(Vec<Monomial>, Matrix)>> {
        self.layout.constraint_layouts[c.0]
            .as_ref()
            .map(|layout| layout.cloned_blocks(&self.sdp.x))
    }

    /// SOS decomposition `Σ qᵢ²` of the polynomial certified by constraint
    /// `c`, or `None` for zero-equality constraints. Built block-by-block,
    /// which is both cheaper and numerically no worse than eigensolving the
    /// assembled matrix (the blocks are its invariant subspaces).
    pub fn sos_decomposition(&self, c: SosConstraintId) -> Option<SosDecomposition> {
        let blocks = self.constraint_gram_blocks(c)?;
        Some(SosDecomposition::from_blocks(self.nvars, &blocks))
    }

    /// What compilation-time reduction achieved for this solve.
    pub fn reduction_stats(&self) -> ReductionStats {
        self.reduction
    }

    /// Underlying SDP solution (diagnostics).
    pub fn sdp_solution(&self) -> &SdpSolution {
        &self.sdp
    }

    /// Evaluates an expression at the solved decision values, returning the
    /// resulting numeric polynomial.
    fn eval_expr(&self, expr: &PolyExpr) -> Polynomial {
        let mut acc = expr.constant.clone();
        for (sv, q) in &expr.scalar_terms {
            acc = &acc + &q.scale(self.scalar_value(*sv));
        }
        for (pv, op) in &expr.poly_terms {
            let basis = &self.poly_bases[pv.0];
            for (k, m) in basis.iter().enumerate() {
                let coef = self.sdp.free[free_index(&self.layout.poly_free[pv.0][k])];
                if coef != 0.0 {
                    acc = &acc + &op.apply(m).scale(coef);
                }
            }
        }
        for (gv, h) in &expr.gram_terms {
            let sigma = self.sos_poly_value(*gv);
            acc = &acc + &(&sigma * h);
        }
        acc
    }

    /// A-posteriori certificate check: the maximum absolute coefficient of
    /// `expr(solution) − z(x)ᵀ P z(x)` for an SOS constraint (or of
    /// `expr(solution)` for a zero constraint). Small residuals mean the
    /// numeric solution genuinely satisfies the polynomial identity the
    /// constraint encodes — the defence against interior-point
    /// false-positives on marginally infeasible programs.
    pub fn residual_of(&self, c: SosConstraintId) -> f64 {
        let value = self.eval_expr(&self.exprs[c.0]);
        match &self.layout.constraint_layouts[c.0] {
            Some(layout) => {
                let gram = layout.to_poly(&self.sdp.x, self.nvars);
                (&value - &gram).max_abs_coefficient()
            }
            None => value.max_abs_coefficient(),
        }
    }

    /// Largest [`SosSolution::residual_of`] across all constraints.
    pub fn max_residual(&self) -> f64 {
        (0..self.exprs.len())
            .map(|i| self.residual_of(SosConstraintId(i)))
            .fold(0.0, f64::max)
    }
}

/// Converts a Gram matrix over a monomial basis into the polynomial
/// `z(x)ᵀ Q z(x)`.
pub(crate) fn gram_to_poly(basis: &[Monomial], q: &Matrix) -> Polynomial {
    let nvars = basis.first().map_or(0, Monomial::nvars);
    let mut p = Polynomial::zero(nvars);
    for (i, mi) in basis.iter().enumerate() {
        for (j, mj) in basis.iter().enumerate() {
            let v = q[(i, j)];
            if v != 0.0 {
                p.add_term(mi.mul(mj), v);
            }
        }
    }
    p
}

// Small helpers to strip the newtype ids (fields are crate-private in
// cppll-sdp; we rely on creation order instead).
fn free_index(id: &FreeVarId) -> usize {
    // FreeVarId is ordered by creation; cppll-sdp exposes the raw index via
    // Debug formatting is fragile — instead we rely on the public contract
    // that ids index into `SdpSolution::free` in creation order.
    id.index()
}

fn block_index(id: &BlockId) -> usize {
    id.index()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn motzkin() -> Polynomial {
        // x⁴y² + x²y⁴ − 3x²y² + 1 : nonnegative but NOT a sum of squares.
        Polynomial::from_terms(
            2,
            &[
                (&[4, 2], 1.0),
                (&[2, 4], 1.0),
                (&[2, 2], -3.0),
                (&[0, 0], 1.0),
            ],
        )
    }

    #[test]
    fn simple_square_is_sos() {
        // (x - y)² + 0.1
        let p = Polynomial::from_terms(
            2,
            &[
                (&[2, 0], 1.0),
                (&[1, 1], -2.0),
                (&[0, 2], 1.0),
                (&[0, 0], 0.1),
            ],
        );
        let mut prog = SosProgram::new(2);
        let c = prog.require_sos(p.clone().into());
        let sol = prog.solve(&SosOptions::default()).expect("feasible");
        let dec = sol.sos_decomposition(c).expect("sos constraint");
        assert!(dec.residual(&p) < 1e-6, "residual {}", dec.residual(&p));
    }

    #[test]
    fn motzkin_is_not_sos() {
        let mut prog = SosProgram::new(2);
        prog.require_sos(motzkin().into());
        let r = prog.solve(&SosOptions::default());
        assert!(r.is_err(), "motzkin must not be SOS");
    }

    #[test]
    fn motzkin_times_norm_is_sos() {
        // (x² + y² + 1) · motzkin is SOS — the classic certificate.
        let mult = Polynomial::from_terms(2, &[(&[2, 0], 1.0), (&[0, 2], 1.0), (&[0, 0], 1.0)]);
        let p = &mult * &motzkin();
        let mut prog = SosProgram::new(2);
        let c = prog.require_sos(p.clone().into());
        let sol = prog.solve(&SosOptions::default()).expect("feasible");
        let dec = sol.sos_decomposition(c).expect("sos constraint");
        assert!(dec.residual(&p) < 1e-4, "residual {}", dec.residual(&p));
    }

    #[test]
    fn lyapunov_for_stable_linear_system() {
        // ẋ = -x + y, ẏ = -y. Find quadratic V ≻ 0 with -V̇ SOS.
        let f = vec![
            Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
            Polynomial::from_terms(2, &[(&[0, 1], -1.0)]),
        ];
        let mut prog = SosProgram::new(2);
        let v = prog.new_poly_of_degree(2, 2);
        let eps = Polynomial::norm_squared(2).scale(1e-2);
        // V - ε‖x‖² SOS  and  -V̇ - ε‖x‖² SOS.
        prog.require_sos(prog.poly(v).sub(&eps.clone().into()));
        let vdot = prog.poly_lie_derivative(v, &f);
        prog.require_sos(vdot.neg().sub(&eps.into()));
        let sol = prog.solve(&SosOptions::default()).expect("feasible");
        let vp = sol.poly_value(v);
        // Check V > 0 and V̇ < 0 at sample points.
        for &(x, y) in &[(1.0, 0.5), (-2.0, 1.0), (0.1, -0.3)] {
            assert!(vp.eval(&[x, y]) > 0.0, "V not positive at ({x},{y})");
            let vdot_val = vp.lie_derivative(&f).eval(&[x, y]);
            assert!(vdot_val < 0.0, "V̇ not negative at ({x},{y})");
        }
    }

    #[test]
    fn s_procedure_nonneg_on_interval() {
        // p(x) = x is nonnegative on {x : x ≥ 0} (trivially, via σ = 1·x).
        let x = Polynomial::var(1, 0);
        let mut prog = SosProgram::new(1);
        let (c, _m) = prog.require_nonneg_on(x.clone().into(), std::slice::from_ref(&x), 0);
        let sol = prog.solve(&SosOptions::default()).expect("feasible");
        let _ = sol.constraint_gram(c);
    }

    #[test]
    fn s_procedure_detects_violation() {
        // p(x) = -1 - x² is NOT nonnegative on {x ≥ 0}.
        let x = Polynomial::var(1, 0);
        let p = Polynomial::from_terms(1, &[(&[0], -1.0), (&[2], -1.0)]);
        let mut prog = SosProgram::new(1);
        prog.require_nonneg_on(p.into(), &[x], 1);
        assert!(prog.solve(&SosOptions::default()).is_err());
    }

    #[test]
    fn scalar_objective_maximizes() {
        // max c s.t. x² - c is SOS ⇒ c* = 0.
        let x2 = Polynomial::from_terms(1, &[(&[2], 1.0)]);
        let mut prog = SosProgram::new(1);
        let c = prog.new_scalar();
        let expr = PolyExpr::from(x2).sub(&prog.scalar(c));
        prog.require_sos(expr);
        prog.maximize_scalar(c);
        let sol = prog.solve(&SosOptions::with_objective()).expect("feasible");
        assert!(
            sol.scalar_value(c).abs() < 1e-4,
            "c = {}",
            sol.scalar_value(c)
        );
    }

    #[test]
    fn lower_bound_of_quartic() {
        // max c s.t. (x²−1)² + 0.5 − c SOS ⇒ c* = 0.5.
        let p = Polynomial::from_terms(1, &[(&[4], 1.0), (&[2], -2.0), (&[0], 1.5)]);
        let mut prog = SosProgram::new(1);
        let c = prog.new_scalar();
        prog.require_sos(PolyExpr::from(p).sub(&prog.scalar(c)));
        prog.maximize_scalar(c);
        let sol = prog.solve(&SosOptions::with_objective()).expect("feasible");
        assert!(
            (sol.scalar_value(c) - 0.5).abs() < 1e-3,
            "c = {}",
            sol.scalar_value(c)
        );
    }

    #[test]
    fn zero_equality_constraint_binds() {
        // Find p of degree ≤ 2 with p ≡ x²  (i.e. p − x² = 0).
        let x2 = Polynomial::from_terms(1, &[(&[2], 1.0)]);
        let mut prog = SosProgram::new(1);
        let p = prog.new_poly_of_degree(0, 2);
        prog.require_zero(prog.poly(p).sub(&x2.clone().into()));
        let sol = prog.solve(&SosOptions::default()).expect("feasible");
        let got = sol.poly_value(p);
        assert!((&got - &x2).max_abs_coefficient() < 1e-5);
    }
}
