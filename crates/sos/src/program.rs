//! The SOS program builder and its compilation to an SDP.

use std::collections::{BTreeMap, BTreeSet};

use cppll_linalg::Matrix;
use cppll_poly::{
    monomials_up_to, prune_gram_basis, prune_multiplier_basis, Monomial, NewtonPolytope,
    Polynomial,
};
use cppll_sdp::{BlockId, ConstraintId, FreeVarId, SdpProblem, SdpSolution, SdpStatus, SolverOptions};
use cppll_trace::TraceLevel;

use crate::decomposition::SosDecomposition;
use crate::expr::{GramVarId, PolyExpr, PolyOp, PolyVarId, ScalarVarId};
use crate::reduce::{
    refine_by_term_sparsity, split_by_signature, ReduceMode, ReductionOptions, ReductionStats,
    SosCone, SymmetryDetector, TsGram,
};
use crate::supervisor::{AttemptRecord, ResilienceOptions};

/// Identifier of an SOS constraint (used to read back Gram matrices and
/// decompositions from a solution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SosConstraintId(usize);

/// Options controlling compilation and the underlying SDP solve.
#[derive(Debug, Clone)]
pub struct SosOptions {
    /// Weight of `Σ tr(Gram)` added to the objective. For pure feasibility
    /// problems this regularises the solution towards small Gram matrices
    /// and guarantees dual strict feasibility; when a linear objective is
    /// present it should be small.
    pub trace_weight: f64,
    /// Options forwarded to the SDP solver.
    pub sdp: SolverOptions,
    /// Supervision of the solve: retry policy, budgets, fault hooks. The
    /// default is inert (single attempt, no timeouts).
    pub resilience: ResilienceOptions,
    /// Problem-size reduction applied during compilation (Newton-polytope
    /// basis pruning + sign-symmetry block-diagonalisation). On by default;
    /// [`ReductionOptions::none`] reproduces the unreduced SDP bit for bit.
    pub reduction: ReductionOptions,
}

impl Default for SosOptions {
    fn default() -> Self {
        SosOptions {
            trace_weight: 1.0,
            sdp: SolverOptions::default(),
            resilience: ResilienceOptions::default(),
            reduction: ReductionOptions::default(),
        }
    }
}

impl SosOptions {
    /// Options suited to problems with a meaningful linear objective: the
    /// Gram trace regularisation is made negligible.
    pub fn with_objective() -> Self {
        SosOptions {
            trace_weight: 1e-6,
            ..Default::default()
        }
    }
}

/// Error returned when an SOS program cannot be solved.
#[derive(Debug, Clone)]
pub enum SosError {
    /// The SDP solver flagged (likely) infeasibility — no certificate of the
    /// requested form exists (or the relaxation degree is too low).
    Infeasible {
        /// Underlying solver status.
        status: SdpStatus,
    },
    /// The solver failed numerically before reaching an answer, after
    /// exhausting any configured retries. Carries the final iterate's
    /// residuals and the full attempt log for diagnosis.
    Numerical {
        /// Underlying solver status of the final attempt.
        status: SdpStatus,
        /// Final relative primal infeasibility.
        primal_infeasibility: f64,
        /// Final relative dual infeasibility.
        dual_infeasibility: f64,
        /// Final relative duality gap.
        gap: f64,
        /// Interior-point iterations of the final attempt.
        iterations: usize,
        /// Every attempt made, in order.
        attempts: Vec<AttemptRecord>,
    },
}

impl SosError {
    /// The supervised attempt log, when one exists. Infeasibility carries
    /// no attempts — it is an answer reached on the first try that counts,
    /// not a failure history.
    pub fn attempts(&self) -> &[AttemptRecord] {
        match self {
            SosError::Infeasible { .. } => &[],
            SosError::Numerical { attempts, .. } => attempts,
        }
    }
}

impl std::fmt::Display for SosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SosError::Infeasible { status } => {
                write!(f, "sos program is infeasible ({status})")
            }
            SosError::Numerical {
                status,
                primal_infeasibility,
                dual_infeasibility,
                gap,
                iterations,
                attempts,
            } => {
                write!(
                    f,
                    "sdp solver failed numerically ({status}) after {} attempt(s): \
                     pinf={primal_infeasibility:.2e} dinf={dual_infeasibility:.2e} \
                     gap={gap:.2e} iters={iterations}",
                    attempts.len().max(1)
                )
            }
        }
    }
}

impl std::error::Error for SosError {}

struct PolyVarInfo {
    basis: Vec<Monomial>,
}

struct GramVarInfo {
    basis: Vec<Monomial>,
    /// Per-variable override of the objective trace weight.
    trace_weight: Option<f64>,
}

enum ConstraintKind {
    /// Expression must equal `z(x)ᵀ P z(x)` for some `P ⪰ 0`.
    Sos {
        basis_override: Option<Vec<Monomial>>,
    },
    /// Expression must be identically zero.
    Zero,
}

struct Constraint {
    expr: PolyExpr,
    kind: ConstraintKind,
}

/// A sum-of-squares program: decision scalars/polynomials plus SOS and
/// zero-equality constraints over them, compiled to one block SDP.
///
/// See the crate-level documentation for the programming model and an
/// example.
pub struct SosProgram {
    nvars: usize,
    num_scalars: usize,
    polys: Vec<PolyVarInfo>,
    grams: Vec<GramVarInfo>,
    constraints: Vec<Constraint>,
    /// `minimise Σ w·s` objective terms on scalar variables.
    objective: Vec<(ScalarVarId, f64)>,
}

impl SosProgram {
    /// Creates an empty program over `nvars` indeterminates.
    pub fn new(nvars: usize) -> Self {
        SosProgram {
            nvars,
            num_scalars: 0,
            polys: Vec::new(),
            grams: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
        }
    }

    /// Number of indeterminates.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Adds a scalar decision variable.
    pub fn new_scalar(&mut self) -> ScalarVarId {
        self.num_scalars += 1;
        ScalarVarId(self.num_scalars - 1)
    }

    /// Adds a coefficient decision polynomial spanning `basis`.
    ///
    /// # Panics
    ///
    /// Panics if a basis monomial lives over the wrong number of variables.
    pub fn new_poly(&mut self, basis: Vec<Monomial>) -> PolyVarId {
        for m in &basis {
            assert_eq!(m.nvars(), self.nvars, "basis monomial ring mismatch");
        }
        self.polys.push(PolyVarInfo { basis });
        PolyVarId(self.polys.len() - 1)
    }

    /// Adds a coefficient decision polynomial spanning all monomials with
    /// total degree in `[min_degree, max_degree]`.
    pub fn new_poly_of_degree(&mut self, min_degree: u32, max_degree: u32) -> PolyVarId {
        let basis = monomials_up_to(self.nvars, max_degree)
            .into_iter()
            .filter(|m| m.degree() >= min_degree)
            .collect();
        self.new_poly(basis)
    }

    /// Adds a Gram-backed SOS decision polynomial of degree `2·half_degree`
    /// (an S-procedure multiplier). The polynomial is SOS by construction.
    pub fn new_sos_poly(&mut self, half_degree: u32) -> GramVarId {
        let basis = monomials_up_to(self.nvars, half_degree);
        self.grams.push(GramVarInfo {
            basis,
            trace_weight: None,
        });
        GramVarId(self.grams.len() - 1)
    }

    /// Overrides the objective trace weight of one SOS multiplier. Heavier
    /// weights push the solver towards *small* multipliers — useful when a
    /// downstream consumer (e.g. exact rounding) needs the main Gram to
    /// keep interior slack instead of being traded against the multipliers.
    pub fn set_sos_poly_trace_weight(&mut self, g: GramVarId, weight: f64) {
        self.grams[g.0].trace_weight = Some(weight);
    }

    /// Adds a Gram-backed SOS decision polynomial over an explicit basis.
    ///
    /// # Panics
    ///
    /// Panics if a basis monomial lives over the wrong number of variables.
    pub fn new_sos_poly_with_basis(&mut self, basis: Vec<Monomial>) -> GramVarId {
        for m in &basis {
            assert_eq!(m.nvars(), self.nvars, "basis monomial ring mismatch");
        }
        self.grams.push(GramVarInfo {
            basis,
            trace_weight: None,
        });
        GramVarId(self.grams.len() - 1)
    }

    /// Expression consisting of the single scalar variable `s`.
    pub fn scalar(&self, s: ScalarVarId) -> PolyExpr {
        let mut e = PolyExpr::zero(self.nvars);
        e.scalar_terms
            .push((s, Polynomial::constant(self.nvars, 1.0)));
        e
    }

    /// Expression consisting of the decision polynomial `v`.
    pub fn poly(&self, v: PolyVarId) -> PolyExpr {
        let mut e = PolyExpr::zero(self.nvars);
        e.poly_terms
            .push((v, PolyOp::Mul(Polynomial::constant(self.nvars, 1.0))));
        e
    }

    /// Expression for the composition `v(R(x))` of decision polynomial `v`
    /// with a known polynomial map `R` — affine in `v`'s coefficients. Used
    /// for jump conditions `V(R(x)) − V(x) ≤ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `subs.len() != self.nvars()` or the components live in a
    /// different ring.
    pub fn poly_composed(&self, v: PolyVarId, subs: &[Polynomial]) -> PolyExpr {
        assert_eq!(subs.len(), self.nvars, "substitution arity mismatch");
        for s in subs {
            assert_eq!(s.nvars(), self.nvars, "substitution ring mismatch");
        }
        let mut e = PolyExpr::zero(self.nvars);
        e.poly_terms.push((
            v,
            PolyOp::ComposeMul(subs.to_vec(), Polynomial::constant(self.nvars, 1.0)),
        ));
        e
    }

    /// Expression consisting of the SOS multiplier `g`.
    pub fn sos_poly(&self, g: GramVarId) -> PolyExpr {
        let mut e = PolyExpr::zero(self.nvars);
        e.gram_terms
            .push((g, Polynomial::constant(self.nvars, 1.0)));
        e
    }

    /// Expression for the Lie derivative `∇v · f` of decision polynomial `v`
    /// along the known vector field `f`.
    ///
    /// The Lie derivative is linear in `v`'s coefficients, so the result is
    /// still an affine expression.
    ///
    /// # Panics
    ///
    /// Panics if `f.len() != self.nvars()`.
    pub fn poly_lie_derivative(&self, v: PolyVarId, f: &[Polynomial]) -> PolyExpr {
        assert_eq!(f.len(), self.nvars, "vector field dimension mismatch");
        // ∇(Σλm)·f = Σᵢ (∂V/∂xᵢ) · fᵢ — each summand is a linear operation
        // on V's coefficients.
        let mut e = PolyExpr::zero(self.nvars);
        for (i, fi) in f.iter().enumerate() {
            e = e.add(&self.poly_partial_derivative(v, i).mul_poly(fi));
        }
        e
    }

    /// Expression for `∂v/∂xᵢ` of decision polynomial `v` — affine in the
    /// coefficients of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nvars()`.
    pub fn poly_partial_derivative(&self, v: PolyVarId, i: usize) -> PolyExpr {
        assert!(i < self.nvars, "variable index out of range");
        let mut e = PolyExpr::zero(self.nvars);
        e.poly_terms.push((
            v,
            PolyOp::DerivMul(i, Polynomial::constant(self.nvars, 1.0)),
        ));
        e
    }

    /// Adds the constraint `expr(x)` is SOS; returns an id for reading the
    /// Gram matrix back.
    ///
    /// # Panics
    ///
    /// Panics if `expr` lives over a different number of variables.
    pub fn require_sos(&mut self, expr: PolyExpr) -> SosConstraintId {
        assert_eq!(expr.nvars(), self.nvars, "expression ring mismatch");
        self.constraints.push(Constraint {
            expr,
            kind: ConstraintKind::Sos {
                basis_override: None,
            },
        });
        SosConstraintId(self.constraints.len() - 1)
    }

    /// Adds the constraint `expr(x)` is SOS with an explicit Gram basis.
    ///
    /// # Panics
    ///
    /// Panics on ring mismatches.
    pub fn require_sos_with_basis(
        &mut self,
        expr: PolyExpr,
        basis: Vec<Monomial>,
    ) -> SosConstraintId {
        assert_eq!(expr.nvars(), self.nvars, "expression ring mismatch");
        for m in &basis {
            assert_eq!(m.nvars(), self.nvars, "basis monomial ring mismatch");
        }
        self.constraints.push(Constraint {
            expr,
            kind: ConstraintKind::Sos {
                basis_override: Some(basis),
            },
        });
        SosConstraintId(self.constraints.len() - 1)
    }

    /// Adds the constraint `expr(x) ≡ 0` (coefficient-wise).
    ///
    /// # Panics
    ///
    /// Panics if `expr` lives over a different number of variables.
    pub fn require_zero(&mut self, expr: PolyExpr) {
        assert_eq!(expr.nvars(), self.nvars, "expression ring mismatch");
        self.constraints.push(Constraint {
            expr,
            kind: ConstraintKind::Zero,
        });
    }

    /// S-procedure helper: requires `expr ≥ 0` on the semialgebraic set
    /// `{x : gⱼ(x) ≥ 0}` by adding `expr − Σ σⱼ gⱼ` SOS with fresh SOS
    /// multipliers `σⱼ` of degree `2·mult_half_degree`.
    ///
    /// Returns the multiplier ids (useful for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics on ring mismatches.
    pub fn require_nonneg_on(
        &mut self,
        expr: PolyExpr,
        domain: &[Polynomial],
        mult_half_degree: u32,
    ) -> (SosConstraintId, Vec<GramVarId>) {
        let mut e = expr;
        let mut mults = Vec::with_capacity(domain.len());
        for g in domain {
            assert_eq!(g.nvars(), self.nvars, "domain polynomial ring mismatch");
            let sigma = self.new_sos_poly(mult_half_degree);
            mults.push(sigma);
            e = e.sub(&self.sos_poly(sigma).mul_poly(g));
        }
        let id = self.require_sos(e);
        (id, mults)
    }

    /// Sets the objective to `minimise Σ wᵢ sᵢ` over scalar variables.
    pub fn minimize(&mut self, terms: &[(ScalarVarId, f64)]) {
        self.objective = terms.to_vec();
    }

    /// Sets the objective to `maximise s` (i.e. minimise `−s`).
    pub fn maximize_scalar(&mut self, s: ScalarVarId) {
        self.objective = vec![(s, -1.0)];
    }

    /// Compiles and solves the program under the supervision configured in
    /// [`SosOptions::resilience`]: retryable failures (stalls, iteration
    /// limits) are re-solved with escalated regularisation, a rescaled
    /// trace weight, and a jittered step fraction, up to the retry budget;
    /// each attempt respects the solve timeout and pipeline deadline. The
    /// default options perform exactly one attempt.
    ///
    /// # Errors
    ///
    /// [`SosError::Infeasible`] when the solver reports (likely)
    /// infeasibility (never retried — it is an answer about the problem);
    /// [`SosError::Numerical`] once retries are exhausted, carrying the
    /// final residuals and the full attempt log.
    pub fn solve(&self, options: &SosOptions) -> Result<SosSolution, SosError> {
        self.solve_supervised(options, false).0
    }

    /// Like [`SosProgram::solve`], but additionally returns the final SDP
    /// iterate of the last attempt — even when the answer is
    /// [`SosError::Infeasible`]. Checkpointing uses this to save a
    /// warm-start seed for the structurally-identical next solve (advection
    /// inclusion probes are *expected* to come back infeasible until the
    /// level set stops moving, and their iterates are still good seeds).
    ///
    /// The iterate is `None` only when no attempt ran at all.
    ///
    /// # Errors
    ///
    /// Exactly as [`SosProgram::solve`].
    pub fn solve_with_iterate(
        &self,
        options: &SosOptions,
    ) -> (Result<SosSolution, SosError>, Option<SdpSolution>) {
        self.solve_supervised(options, true)
    }

    fn solve_supervised(
        &self,
        options: &SosOptions,
        capture: bool,
    ) -> (Result<SosSolution, SosError>, Option<SdpSolution>) {
        let mut base = options.clone();
        let res = &options.resilience;
        let policy = &res.retry;
        let mut attempts: Vec<AttemptRecord> = Vec::new();
        let max_attempts = policy.max_retries + 1;

        let _sos_span = res.tracer.as_ref().map(|t| {
            t.span(
                TraceLevel::Solve,
                "sos_solve",
                format!(
                    "constraints={} polys={} scalars={}",
                    self.constraints.len(),
                    self.polys.len(),
                    self.num_scalars
                ),
            )
        });

        // Cheaper-cone screening: compile the same program over the DSOS or
        // SDSOS inner approximation first. dd ⊂ sdd ⊂ psd, so a feasible
        // screen is a genuine certificate and short-circuits the full SDP;
        // an infeasible or failed screen says nothing about the SOS program
        // and falls back silently.
        if base.reduction.cone != SosCone::Sos {
            let _screen_span = res.tracer.as_ref().map(|t| {
                t.span(
                    TraceLevel::Solve,
                    "cone_screen",
                    format!("cone={}", base.reduction.cone),
                )
            });
            let mut screen = self.options_for_attempt(&base, 0);
            // Warm-start seeds are shaped for the SOS-cone block structure;
            // the screening SDP has different blocks.
            screen.sdp.warm_start = None;
            let compiled = self.compile(&screen);
            let mut sol = compiled.sdp.solve(&screen.sdp);
            sol.timings.reduction = compiled.reduction_seconds;
            sol.timings.total += compiled.reduction_seconds;
            if let Some(ledger) = &res.ledger {
                // Timings account for solver work per attempt; reduction
                // stats describe the program and are recorded only for the
                // compile that serves the final answer (below on a hit).
                ledger.add_timings(&sol.timings);
            }
            let record = AttemptRecord {
                attempt: 0,
                status: sol.status,
                iterations: sol.iterations,
                primal_infeasibility: sol.primal_infeasibility,
                dual_infeasibility: sol.dual_infeasibility,
                gap: sol.gap,
                trace_weight: screen.trace_weight,
                schur_regularization: screen.sdp.schur_regularization,
                step_fraction: screen.sdp.step_fraction,
                planned_backoff_ms: 0,
            };
            let candidate = matches!(sol.status, SdpStatus::Optimal | SdpStatus::NearOptimal)
                .then(|| SosSolution {
                    nvars: self.nvars,
                    sdp: sol,
                    layout: compiled.layout,
                    reduction: compiled.stats,
                    poly_bases: self.polys.iter().map(|p| p.basis.clone()).collect(),
                    exprs: self.constraints.iter().map(|c| c.expr.clone()).collect(),
                });
            // The restricted cone can be marginally infeasible even when the
            // SOS program is feasible, and the interior-point solver may then
            // stall into a NearOptimal answer whose Gram matrices do not
            // satisfy the polynomial identities. Gate the short-circuit on
            // the certificate residual, not just the solver status.
            let scale = self
                .constraints
                .iter()
                .map(|c| c.expr.constant.max_abs_coefficient())
                .fold(1.0f64, f64::max);
            match candidate {
                Some(c) if c.max_residual() <= 1e-6 * scale => {
                    if let Some(t) = &res.tracer {
                        t.counter("cone_screen_hit", 1);
                        emit_reduction_counters(t, &c.reduction);
                    }
                    attempts.push(record);
                    if let Some(ledger) = &res.ledger {
                        ledger.record(&attempts, true);
                        ledger.add_reduction(&c.reduction);
                    }
                    let captured = capture.then(|| c.sdp.clone());
                    return (Ok(c), captured);
                }
                _ => {
                    if let Some(t) = &res.tracer {
                        t.counter("cone_screen_miss", 1);
                    }
                    base.reduction.cone = SosCone::Sos;
                }
            }
        }
        // Support-mode screening: the support-reduced compile is a
        // *restriction* of the legacy program (multiplier bases shrunk,
        // term-sparsity blocks split), so a feasible answer is a genuine
        // certificate and is returned directly — but an infeasible or failed
        // answer is inconclusive about the full program. When the reduced
        // attempt does not succeed and the reduction actually changed the
        // program, the solve falls back to the legacy compile silently,
        // exactly like the cheaper-cone screen above. Verdicts therefore
        // always agree with legacy mode; only successful screens save work.
        //
        // Monotone-bisection probes opt out (`trust_infeasible`): they accept
        // any reduced non-success as a conservative "no" and their *stage*
        // falls back to a legacy re-run only if the whole bisection comes up
        // empty — far cheaper than re-solving every rejected probe.
        let mut screening =
            base.reduction.mode == ReduceMode::Support && !base.reduction.trust_infeasible;
        let mut counters_emitted = false;
        // Adaptive trust: a trusted probe's legacy fallback is an experiment
        // on whether the reduced compile's failures mask real answers. Once
        // two fallbacks have been confirmed (legacy failed or was infeasible
        // too) with none overturned, later probes in the run trust the
        // reduced compile's failure directly and skip the legacy re-solve —
        // on well-reduced models the fallback never fires again, on models
        // where reduction over-prunes it keeps firing and rescuing probes.
        let trust_fallback_allowed = || match &res.ledger {
            Some(ledger) => {
                let (confirmed, overturned) = ledger.trust_fallback_tally();
                overturned > 0 || confirmed < 2
            }
            None => true,
        };
        let mut trusted_fallback_active = false;
        'modes: loop {
            // A trusted probe's legacy fallback gets at most two attempts:
            // a probe whose legacy compile stalls through cold start *and*
            // one escalation is marginal, and the bisection treats its
            // failure as a conservative "no" anyway — the remaining
            // escalations only burn the deadline.
            let attempt_budget = if trusted_fallback_active {
                max_attempts.min(2)
            } else {
                max_attempts
            };
            for attempt in 0..attempt_budget {
                let _attempt_span = res
                    .tracer
                    .as_ref()
                    .map(|t| t.span(TraceLevel::Solve, "attempt", format!("attempt={attempt}")));
                let attempt_options = self.options_for_attempt(&base, attempt);
                if let Some(fault) = &res.fault {
                    fault.set_attempt(attempt);
                }
                let compiled = self.compile(&attempt_options);
                let mut sol = compiled.sdp.solve(&attempt_options.sdp);
                // Reduction happens at compile time, before the solver runs;
                // fold it into the solve timings so every stage of the
                // pipeline is accounted for in one place.
                sol.timings.reduction = compiled.reduction_seconds;
                sol.timings.total += compiled.reduction_seconds;
                let sol = sol;
                if attempt == 0 && !counters_emitted {
                    if let Some(t) = &res.tracer {
                        emit_reduction_counters(t, &compiled.stats);
                    }
                    counters_emitted = true;
                }
                if sol.warm_started {
                    if let Some(t) = &res.tracer {
                        t.counter("warm_start_hit", 1);
                    }
                }
                if let Some(ledger) = &res.ledger {
                    // Stage timings are aggregated apart from the attempt log
                    // so the log stays byte-deterministic. Reduction stats
                    // describe the program, not the work: they are recorded
                    // once per solve, for the compile that serves the final
                    // answer (screen misses and retried attempts recompile,
                    // but the program they describe did not change).
                    ledger.add_timings(&sol.timings);
                }
                if screening && compiled.support_pruned {
                    match sol.status {
                        SdpStatus::Optimal | SdpStatus::NearOptimal => {
                            if let Some(t) = &res.tracer {
                                t.counter("support_screen_hit", 1);
                            }
                        }
                        _ => {
                            // Screen miss: one shot only — drop straight to
                            // the legacy compile with a fresh attempt budget
                            // rather than retrying the restricted program.
                            if let Some(t) = &res.tracer {
                                t.counter("support_screen_miss", 1);
                            }
                            screening = false;
                            base.reduction.mode = ReduceMode::Legacy;
                            continue 'modes;
                        }
                    }
                }
                let mut record = AttemptRecord {
                    attempt,
                    status: sol.status,
                    iterations: sol.iterations,
                    primal_infeasibility: sol.primal_infeasibility,
                    dual_infeasibility: sol.dual_infeasibility,
                    gap: sol.gap,
                    trace_weight: attempt_options.trace_weight,
                    schur_regularization: attempt_options.sdp.schur_regularization,
                    step_fraction: attempt_options.sdp.step_fraction,
                    planned_backoff_ms: 0,
                };

                match sol.status {
                    SdpStatus::Optimal | SdpStatus::NearOptimal => {
                        attempts.push(record);
                        if let Some(ledger) = &res.ledger {
                            ledger.record(&attempts, true);
                            ledger.add_reduction(&compiled.stats);
                            if trusted_fallback_active {
                                ledger.record_trust_fallback(true);
                            }
                        }
                        let captured = capture.then(|| sol.clone());
                        return (
                            Ok(SosSolution {
                                nvars: self.nvars,
                                sdp: sol,
                                layout: compiled.layout,
                                reduction: compiled.stats,
                                poly_bases: self.polys.iter().map(|p| p.basis.clone()).collect(),
                                exprs: self.constraints.iter().map(|c| c.expr.clone()).collect(),
                            }),
                            captured,
                        );
                    }
                    SdpStatus::PrimalInfeasibleLikely | SdpStatus::DualInfeasibleLikely => {
                        attempts.push(record);
                        if let Some(ledger) = &res.ledger {
                            // An infeasibility verdict is an *answer*, not a
                            // failure: bisection probes hit it in normal
                            // operation, and the pipeline's degradation logic
                            // keys off the ledger's failure count.
                            ledger.record(&attempts, true);
                            ledger.add_reduction(&compiled.stats);
                            if trusted_fallback_active {
                                ledger.record_trust_fallback(false);
                            }
                        }
                        let status = sol.status;
                        return (Err(SosError::Infeasible { status }), capture.then_some(sol));
                    }
                    // A trusted probe never retries the reduced compile:
                    // stalls on a support-pruned program are structural
                    // (over-restricted multipliers make the probe marginal),
                    // not transient, so escalating regularisation on the same
                    // restriction is wasted work. Any non-conclusive reduced
                    // answer drops straight to the legacy compile, which gets
                    // the full retry ladder.
                    s if s.is_retryable()
                        && base.reduction.mode == ReduceMode::Support
                        && base.reduction.trust_infeasible
                        && compiled.support_pruned
                        && trust_fallback_allowed() =>
                    {
                        if let Some(t) = &res.tracer {
                            t.counter("support_trust_fallback", 1);
                        }
                        attempts.push(record);
                        base.reduction.mode = ReduceMode::Legacy;
                        trusted_fallback_active = true;
                        continue 'modes;
                    }
                    s if s.is_retryable() && attempt + 1 < attempt_budget => {
                        let backoff = policy.planned_backoff_ms(attempt + 1);
                        record.planned_backoff_ms = backoff;
                        attempts.push(record);
                        // The planned backoff counts against the pipeline
                        // deadline: sleep only the time the deadline leaves,
                        // and skip entirely once it has passed. The next
                        // attempt then fails fast with DeadlineExceeded
                        // instead of overshooting the budget in a sleep.
                        let planned = std::time::Duration::from_millis(backoff);
                        let capped = match res.deadline {
                            Some(d) => d
                                .saturating_duration_since(std::time::Instant::now())
                                .min(planned),
                            None => planned,
                        };
                        if let Some(t) = &res.tracer {
                            t.counter("retry", 1);
                            if backoff > 0 {
                                t.counter("backoff", 1);
                            }
                            t.instant(
                                TraceLevel::Solve,
                                "backoff",
                                vec![
                                    ("planned_ms", backoff.into()),
                                    ("clamped_ms", (capped.as_secs_f64() * 1e3).into()),
                                ],
                            );
                        }
                        if policy.sleep && !capped.is_zero() {
                            std::thread::sleep(capped);
                        }
                    }
                    s => {
                        // A trusted probe treats *infeasible* as a
                        // conservative "no", but a numerical failure (stall,
                        // exhausted retries) says nothing about the program:
                        // if the reduced compile actually changed the
                        // program, re-solve under the legacy compile before
                        // reporting failure — the fault may be an artifact of
                        // over-pruned multipliers making the probe marginal.
                        if base.reduction.mode == ReduceMode::Support
                            && base.reduction.trust_infeasible
                            && compiled.support_pruned
                            && trust_fallback_allowed()
                        {
                            if let Some(t) = &res.tracer {
                                t.counter("support_trust_fallback", 1);
                            }
                            attempts.push(record);
                            base.reduction.mode = ReduceMode::Legacy;
                            trusted_fallback_active = true;
                            continue 'modes;
                        }
                        attempts.push(record);
                        if let Some(ledger) = &res.ledger {
                            ledger.record(&attempts, false);
                            ledger.add_reduction(&compiled.stats);
                            if trusted_fallback_active {
                                ledger.record_trust_fallback(false);
                            }
                        }
                        return (
                            Err(SosError::Numerical {
                                status: s,
                                primal_infeasibility: sol.primal_infeasibility,
                                dual_infeasibility: sol.dual_infeasibility,
                                gap: sol.gap,
                                iterations: sol.iterations,
                                attempts,
                            }),
                            capture.then_some(sol),
                        );
                    }
                }
            }
            unreachable!("the attempt loop always returns on its final attempt")
        }
    }

    /// Derives the effective options for one supervised attempt:
    /// escalated regularisation, rescaled trace weight, jittered step
    /// fraction, and per-attempt deadline/iteration budget.
    fn options_for_attempt(&self, base: &SosOptions, attempt: usize) -> SosOptions {
        let res = &base.resilience;
        let policy = &res.retry;
        let mut opt = base.clone();
        if attempt > 0 {
            // A retry means the seeded (or cold) first attempt failed — go
            // back to the cold start so escalated regularisation works from
            // a known-interior point instead of a possibly-degenerate seed.
            opt.sdp.warm_start = None;
            let escalation = policy.regularization_escalation.powi(attempt as i32);
            opt.sdp.schur_regularization *= escalation;
            opt.sdp.free_regularization *= escalation;
            opt.trace_weight =
                (base.trace_weight * policy.trace_rescale.powi(attempt as i32)).max(1e-9);
        }
        opt.sdp.step_fraction = policy.jittered_step_fraction(base.sdp.step_fraction, attempt);
        if let Some(budget) = res.iteration_budget {
            opt.sdp.max_iterations = budget;
        }
        opt.sdp.deadline = res.attempt_deadline();
        opt.sdp.fault = res.fault.clone();
        opt.sdp.trace = res.tracer.clone();
        opt
    }

    // ---- compilation ----------------------------------------------------

    fn compile(&self, options: &SosOptions) -> Compiled {
        let red = &options.reduction;
        let mut reduction_seconds = 0.0;
        let mut stats = ReductionStats::default();
        let support_mode = red.mode == ReduceMode::Support && red.newton;
        let mut support_pruned = false;

        // Sign symmetries are a property of the whole program: every
        // constraint must tolerate the flip, so the detector walks all of
        // them once up front.
        let generators: Vec<u64> = if red.symmetry {
            let t = std::time::Instant::now();
            let g = self.sign_symmetry_generators();
            reduction_seconds += t.elapsed().as_secs_f64();
            g
        } else {
            Vec::new()
        };

        // ---- Phase 1: multiplier basis candidates --------------------
        //
        // Legacy mode hands every S-procedure multiplier its declared
        // (full-simplex) basis. Support mode keeps a monomial m only if
        // some shifted square 2m + α (α ∈ supp(h)) lands inside the Newton
        // polytope of the fixed support of each constraint the multiplier
        // certifies — a candidate none of whose diagonal rows touches the
        // target polytope has no reason to carry mass. The quantifier is
        // existential on purpose: rows outside the polytope can still
        // cancel against the constraint's other Grams, which phase 2b
        // accounts for with exact sibling rows.
        let mut fixed: Vec<Vec<Monomial>> = Vec::new();
        let mut mult_bases: Vec<Vec<Monomial>> =
            self.grams.iter().map(|g| g.basis.clone()).collect();
        if support_mode {
            let t = std::time::Instant::now();
            fixed = self
                .constraints
                .iter()
                .map(|c| self.fixed_support(&c.expr).into_iter().collect())
                .collect();
            let polytopes: Vec<NewtonPolytope> = fixed
                .iter()
                .map(|f| NewtonPolytope::of_support(self.nvars, f.iter()))
                .collect();
            for (ci, c) in self.constraints.iter().enumerate() {
                for (g, h) in &c.expr.gram_terms {
                    let np = &polytopes[ci];
                    let before = mult_bases[g.0].len();
                    mult_bases[g.0].retain(|m| {
                        h.terms().any(|(alpha, _)| np.contains_shifted_doubled(m, alpha))
                    });
                    support_pruned |= mult_bases[g.0].len() < before;
                }
            }
            reduction_seconds += t.elapsed().as_secs_f64();
        }

        // ---- Phase 2: symmetry classes + constraint Gram bases -------
        let mut plans: Vec<GramPlan> = Vec::with_capacity(self.grams.len());
        for (gi, _) in self.grams.iter().enumerate() {
            let basis = std::mem::take(&mut mult_bases[gi]);
            let classes = classes_of(&basis, &generators, &mut reduction_seconds);
            plans.push(GramPlan { basis, classes });
        }
        let mut cons_plans: Vec<Option<GramPlan>> = Vec::new();
        for c in &self.constraints {
            match &c.kind {
                ConstraintKind::Zero => cons_plans.push(None),
                ConstraintKind::Sos { basis_override } => {
                    let declared = basis_override
                        .clone()
                        .unwrap_or_else(|| self.auto_gram_basis(&c.expr, &plans));
                    stats.grams += 1;
                    stats.basis_before += declared.len();
                    // Newton pruning applies only to automatically chosen
                    // bases: explicit bases are a caller contract (exact
                    // verification relies on their dimension).
                    let basis = if red.newton && basis_override.is_none() {
                        let t = std::time::Instant::now();
                        let support: Vec<Monomial> =
                            self.expr_support(&c.expr, &plans).into_keys().collect();
                        let pruned = prune_gram_basis(&support, &declared);
                        reduction_seconds += t.elapsed().as_secs_f64();
                        stats.newton_dropped += declared.len() - pruned.len();
                        pruned
                    } else {
                        declared
                    };
                    stats.basis_after += basis.len();
                    let classes = classes_of(&basis, &generators, &mut reduction_seconds);
                    stats.symmetry_blocks += classes.len().saturating_sub(1);
                    cons_plans.push(Some(GramPlan { basis, classes }));
                }
            }
        }

        // ---- Phase 2b: multiplier diagonal consistency ---------------
        //
        // The prune_gram_basis-style iteration, run per multiplier against
        // exact supports: a diagonal row must carry a target coefficient or
        // be producible by a sibling Gram of the same constraint (the main
        // Gram's pair products, other multipliers' shifted rows) or by a
        // distinct pair of this multiplier. Many guards share supports, so
        // the prune results are interned; parameter sweeps re-hit the same
        // keys across solves of one compile.
        if support_mode {
            let t = std::time::Instant::now();
            type CacheKey = (Vec<Monomial>, Vec<Monomial>, Vec<Monomial>, Vec<Monomial>);
            let mut cache: BTreeMap<CacheKey, Vec<Monomial>> = BTreeMap::new();
            for (ci, c) in self.constraints.iter().enumerate() {
                if c.expr.gram_terms.is_empty() {
                    continue;
                }
                let mut main_rows: BTreeSet<Monomial> = BTreeSet::new();
                if let Some(plan) = &cons_plans[ci] {
                    for idxs in &plan.classes {
                        for (a, &ia) in idxs.iter().enumerate() {
                            for &ib in idxs.iter().skip(a) {
                                main_rows.insert(plan.basis[ia].mul(&plan.basis[ib]));
                            }
                        }
                    }
                }
                let term_rows: Vec<BTreeSet<Monomial>> = c
                    .expr
                    .gram_terms
                    .iter()
                    .map(|(g, h)| {
                        let plan = &plans[g.0];
                        let mut rows = BTreeSet::new();
                        for idxs in &plan.classes {
                            for (a, &ia) in idxs.iter().enumerate() {
                                for &ib in idxs.iter().skip(a) {
                                    let prod = plan.basis[ia].mul(&plan.basis[ib]);
                                    for (mh, _) in h.terms() {
                                        rows.insert(prod.mul(mh));
                                    }
                                }
                            }
                        }
                        rows
                    })
                    .collect();
                for (k, (g, h)) in c.expr.gram_terms.iter().enumerate() {
                    let mut extra = main_rows.clone();
                    for (j, rows) in term_rows.iter().enumerate() {
                        if j != k {
                            extra.extend(rows.iter().cloned());
                        }
                    }
                    let key: CacheKey = (
                        fixed[ci].clone(),
                        extra.into_iter().collect(),
                        h.terms().map(|(m, _)| m.clone()).collect(),
                        plans[g.0].basis.clone(),
                    );
                    let pruned = match cache.get(&key) {
                        Some(p) => {
                            stats.mult_cache_hits += 1;
                            p.clone()
                        }
                        None => {
                            let p = prune_multiplier_basis(&key.0, &key.1, &key.2, &key.3);
                            cache.insert(key, p.clone());
                            p
                        }
                    };
                    if pruned.len() < plans[g.0].basis.len() {
                        support_pruned = true;
                        let classes = classes_of(&pruned, &generators, &mut reduction_seconds);
                        plans[g.0] = GramPlan {
                            basis: pruned,
                            classes,
                        };
                    }
                }
            }
            reduction_seconds += t.elapsed().as_secs_f64();
        }
        for (gi, g) in self.grams.iter().enumerate() {
            stats.grams += 1;
            stats.basis_before += g.basis.len();
            stats.basis_after += plans[gi].basis.len();
            stats.newton_dropped += g.basis.len() - plans[gi].basis.len();
            stats.symmetry_blocks += plans[gi].classes.len().saturating_sub(1);
        }

        // ---- Phase 3: term-sparsity refinement -----------------------
        //
        // TSSOS-style joint iteration per constraint: the constraint's own
        // Gram and its single-constraint multipliers are refined against
        // the constraint's fixed support, extending the support with
        // within-block pair products until the partition stabilises.
        // Multipliers shared by several constraints keep their symmetry
        // classes (per-constraint refinement would produce inconsistent
        // partitions), as do constraints with caller-contracted bases.
        if red.term_sparsity && red.mode == ReduceMode::Support {
            let t = std::time::Instant::now();
            let mut usage_count = vec![0usize; self.grams.len()];
            for c in &self.constraints {
                for (g, _) in &c.expr.gram_terms {
                    usage_count[g.0] += 1;
                }
            }
            for (ci, c) in self.constraints.iter().enumerate() {
                let ConstraintKind::Sos { basis_override } = &c.kind else {
                    continue;
                };
                if basis_override.is_some() {
                    continue;
                }
                let Some(own) = &cons_plans[ci] else { continue };
                let seed: BTreeSet<Monomial> =
                    self.fixed_support(&c.expr).into_iter().collect();
                let own_basis = own.basis.clone();
                let mut mult_info: Vec<(usize, Vec<Monomial>)> = Vec::new();
                for (g, h) in &c.expr.gram_terms {
                    if usage_count[g.0] == 1 && !plans[g.0].basis.is_empty() {
                        mult_info
                            .push((g.0, h.terms().map(|(m, _)| m.clone()).collect()));
                    }
                }
                let mult_bases_c: Vec<Vec<Monomial>> = mult_info
                    .iter()
                    .map(|(g, _)| plans[*g].basis.clone())
                    .collect();
                let blocks_before = own.classes.len()
                    + mult_info
                        .iter()
                        .map(|(g, _)| plans[*g].classes.len())
                        .sum::<usize>();
                let mut ts = vec![TsGram {
                    basis: &own_basis,
                    shifts: vec![Monomial::one(self.nvars)],
                    classes: own.classes.clone(),
                }];
                for (k, (g, shifts)) in mult_info.iter().enumerate() {
                    ts.push(TsGram {
                        basis: &mult_bases_c[k],
                        shifts: shifts.clone(),
                        classes: plans[*g].classes.clone(),
                    });
                }
                refine_by_term_sparsity(&seed, &mut ts);
                let blocks_after = ts.iter().map(|g| g.classes.len()).sum::<usize>();
                stats.term_sparsity_blocks += blocks_after.saturating_sub(blocks_before);
                support_pruned |= blocks_after > blocks_before;
                let mut it = ts.into_iter();
                if let Some(own) = &mut cons_plans[ci] {
                    own.classes = it.next().expect("own gram plan").classes;
                }
                for ((g, _), refined) in mult_info.iter().zip(it) {
                    plans[*g].classes = refined.classes;
                }
            }
            reduction_seconds += t.elapsed().as_secs_f64();
        }

        // ---- Phase 4: SDP assembly -----------------------------------
        let mut sdp = SdpProblem::new();
        // Free variables: scalars then poly coefficients.
        let scalar_free: Vec<FreeVarId> = (0..self.num_scalars)
            .map(|_| sdp.add_free_var(0.0))
            .collect();
        let mut poly_free: Vec<Vec<FreeVarId>> = Vec::with_capacity(self.polys.len());
        for p in &self.polys {
            poly_free.push(p.basis.iter().map(|_| sdp.add_free_var(0.0)).collect());
        }
        for &(s, w) in &self.objective {
            sdp.set_free_cost(scalar_free[s.0], w);
        }
        // Blocks: one realisation per signature class per Gram (multipliers
        // first, then SOS constraints — same creation order as the
        // unreduced compiler, which the no-reduction path reproduces bit
        // for bit).
        let gram_layouts: Vec<GramLayout> = plans
            .iter()
            .zip(&self.grams)
            .map(|(plan, g)| {
                realise_layout(
                    &mut sdp,
                    plan,
                    red.cone,
                    g.trace_weight.unwrap_or(options.trace_weight),
                    &mut stats,
                )
            })
            .collect();
        let constraint_layouts: Vec<Option<GramLayout>> = cons_plans
            .iter()
            .map(|plan| {
                plan.as_ref().map(|p| {
                    realise_layout(&mut sdp, p, red.cone, options.trace_weight, &mut stats)
                })
            })
            .collect();

        // Emit coefficient-matching equalities per constraint. The row set
        // must cover the FULL potential support of the non-Gram part (rows
        // with no Gram pair become pure linear constraints on the decision
        // variables), plus every within-class pair product of the
        // constraint's own Gram.
        for (ci, c) in self.constraints.iter().enumerate() {
            let mut support = self.expr_support(&c.expr, &plans);
            if let Some(layout) = &constraint_layouts[ci] {
                for class in &layout.classes {
                    for (a, &ia) in class.idxs.iter().enumerate() {
                        for &ib in class.idxs.iter().skip(a) {
                            support.insert(layout.basis[ia].mul(&layout.basis[ib]), ());
                        }
                    }
                }
            }
            for alpha in support.keys() {
                let rhs = c.expr.constant.coefficient(alpha);
                let row = sdp.add_constraint(rhs);
                // Constraint's own Gram: +⟨E_α, P⟩, per class.
                if let Some(layout) = &constraint_layouts[ci] {
                    for class in &layout.classes {
                        for (a, &ia) in class.idxs.iter().enumerate() {
                            for (b, &ib) in class.idxs.iter().enumerate().skip(a) {
                                if &layout.basis[ia].mul(&layout.basis[ib]) == alpha {
                                    class.set_entry(&mut sdp, row, a, b, 1.0);
                                }
                            }
                        }
                    }
                }
                // Scalar terms: move to LHS with flipped sign.
                for (s, q) in &c.expr.scalar_terms {
                    let coef = q.coefficient(alpha);
                    if coef != 0.0 {
                        sdp.set_free_coeff(row, scalar_free[s.0], -coef);
                    }
                }
                // Poly-var terms (linear operations on decision coefficients).
                for (v, op) in &c.expr.poly_terms {
                    for (k, m) in self.polys[v.0].basis.iter().enumerate() {
                        let coef = op.apply(m).coefficient(alpha);
                        if coef != 0.0 {
                            sdp.set_free_coeff(row, poly_free[v.0][k], -coef);
                        }
                    }
                }
                // Gram multiplier terms, per class.
                for (g, h) in &c.expr.gram_terms {
                    let layout = &gram_layouts[g.0];
                    for class in &layout.classes {
                        for (a, &ia) in class.idxs.iter().enumerate() {
                            for (b, &ib) in class.idxs.iter().enumerate().skip(a) {
                                let prod = layout.basis[ia].mul(&layout.basis[ib]);
                                // coefficient of alpha in (z_a z_b) * h
                                for (mh, ch) in h.terms() {
                                    if &prod.mul(mh) == alpha {
                                        class.set_entry(&mut sdp, row, a, b, -ch);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        // Normalize once at compile time: SdpProblem::solve then skips its
        // defensive clone-and-normalize on every retry attempt.
        sdp.normalize();

        Compiled {
            sdp,
            layout: Layout {
                scalar_free,
                poly_free,
                gram_layouts,
                constraint_layouts,
            },
            reduction_seconds,
            stats,
            support_pruned,
        }
    }

    /// Harvests the GF(2) parity constraints every program datum imposes on
    /// a candidate sign flip and returns the group's generators. See
    /// [`crate::reduce`] for the per-term rules and the soundness argument.
    fn sign_symmetry_generators(&self) -> Vec<u64> {
        let mut det = SymmetryDetector::new(self.nvars);
        for c in &self.constraints {
            let e = &c.expr;
            det.require_invariant(&e.constant);
            for (_, q) in &e.scalar_terms {
                det.require_invariant(q);
            }
            for (_, op) in &e.poly_terms {
                match op {
                    PolyOp::Mul(q) => det.require_invariant(q),
                    PolyOp::DerivMul(i, q) => det.require_equivariant(q, *i),
                    PolyOp::ComposeMul(subs, q) => {
                        det.require_invariant(q);
                        for (j, s) in subs.iter().enumerate() {
                            det.require_equivariant(s, j);
                        }
                    }
                }
            }
            for (_, h) in &e.gram_terms {
                det.require_invariant(h);
            }
        }
        det.generators()
    }

    /// Support of the fixed (non-Gram) part of `expr`: the constant plus
    /// everything the scalar and coefficient-polynomial decision variables
    /// can reach. This is the target support multiplier pruning and
    /// term-sparsity seeding work against.
    fn fixed_support(&self, expr: &PolyExpr) -> BTreeSet<Monomial> {
        let mut set = BTreeSet::new();
        for (m, _) in expr.constant.terms() {
            set.insert(m.clone());
        }
        for (_, q) in &expr.scalar_terms {
            for (m, _) in q.terms() {
                set.insert(m.clone());
            }
        }
        for (v, op) in &expr.poly_terms {
            for m in &self.polys[v.0].basis {
                for (am, _) in op.apply(m).terms() {
                    set.insert(am.clone());
                }
            }
        }
        set
    }

    /// Union of all monomials that can appear in `expr`, with multiplier
    /// Gram products restricted to within-class pairs (cross-class entries
    /// are structurally zero). The constraint's own Gram products are added
    /// separately by the caller.
    fn expr_support(&self, expr: &PolyExpr, plans: &[GramPlan]) -> BTreeMap<Monomial, ()> {
        let mut set = BTreeMap::new();
        for m in self.fixed_support(expr) {
            set.insert(m, ());
        }
        for (g, h) in &expr.gram_terms {
            let plan = &plans[g.0];
            for idxs in &plan.classes {
                for (a, &ia) in idxs.iter().enumerate() {
                    for &ib in idxs.iter().skip(a) {
                        let prod = plan.basis[ia].mul(&plan.basis[ib]);
                        for (mh, _) in h.terms() {
                            set.insert(prod.mul(mh), ());
                        }
                    }
                }
            }
        }
        set
    }

    /// Automatic Gram basis for an SOS constraint: all monomials whose
    /// doubled degree fits within the (per-variable and total) degree
    /// envelope of the expression's possible support.
    fn auto_gram_basis(&self, expr: &PolyExpr, plans: &[GramPlan]) -> Vec<Monomial> {
        let support = self.expr_support(expr, plans);
        if support.is_empty() {
            return vec![Monomial::one(self.nvars)];
        }
        let mut max_total = 0u32;
        let mut min_total = u32::MAX;
        let mut max_per_var = vec![0u32; self.nvars];
        for m in support.keys() {
            max_total = max_total.max(m.degree());
            min_total = min_total.min(m.degree());
            for (i, e) in max_per_var.iter_mut().enumerate() {
                *e = (*e).max(m.exp(i));
            }
        }
        let hi = max_total / 2;
        let lo = min_total.div_ceil(2).min(hi);
        monomials_up_to(self.nvars, hi)
            .into_iter()
            .filter(|m| {
                let d = m.degree();
                d >= lo && d <= hi && (0..self.nvars).all(|i| 2 * m.exp(i) <= max_per_var[i] + 1)
            })
            .collect()
    }
}

/// A Gram variable's compile-time plan, before SDP blocks exist: the
/// (possibly pruned) basis and its partition into signature/term-sparsity
/// classes (basis indices; cross-class Gram entries are structurally zero).
struct GramPlan {
    basis: Vec<Monomial>,
    classes: Vec<Vec<usize>>,
}

/// Splits `basis` into sign-symmetry signature classes. With no generators
/// this is the single identity class — byte-identical to the unreduced
/// compiler.
fn classes_of(
    basis: &[Monomial],
    generators: &[u64],
    reduction_seconds: &mut f64,
) -> Vec<Vec<usize>> {
    if generators.is_empty() {
        vec![(0..basis.len()).collect()]
    } else {
        let t = std::time::Instant::now();
        let c = split_by_signature(basis, generators);
        *reduction_seconds += t.elapsed().as_secs_f64();
        c
    }
}

/// Allocates SDP blocks for one Gram plan under the requested cone.
fn realise_layout(
    sdp: &mut SdpProblem,
    plan: &GramPlan,
    cone: SosCone,
    trace_weight: f64,
    stats: &mut ReductionStats,
) -> GramLayout {
    let mut classes = Vec::with_capacity(plan.classes.len());
    for idxs in &plan.classes {
        // Newton pruning can empty a basis outright (the constraint
        // degenerates to pure linear rows); the solver has no use for a
        // 0-dimensional PSD block.
        if idxs.is_empty() {
            continue;
        }
        let n = idxs.len();
        // 1×1 and 2×2 PSD blocks already are their own dd/sdd relaxation;
        // keeping them PSD loses nothing and skips degenerate pair sets.
        let realisation = if cone == SosCone::Sos || n <= 2 {
            let b = sdp.add_psd_block(n);
            sdp.set_block_cost_identity(b, trace_weight);
            stats.blocks += 1;
            stats.max_block = stats.max_block.max(n);
            ClassBlocks::Psd(b)
        } else {
            match cone {
                SosCone::Sos => unreachable!("handled above"),
                SosCone::Sdsos => {
                    // Q is scaled diagonally dominant iff Q = Σ M_ab with
                    // each M_ab PSD and supported on one coordinate pair.
                    let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
                    for a in 0..n {
                        for b in a + 1..n {
                            let blk = sdp.add_psd_block(2);
                            // tr(Q) = Σ tr(M_ab), so identity costs on the
                            // pair blocks reproduce the trace objective.
                            sdp.set_block_cost_identity(blk, trace_weight);
                            stats.blocks += 1;
                            stats.max_block = stats.max_block.max(2);
                            pairs.push((a, b, blk));
                        }
                    }
                    ClassBlocks::Pairs(pairs)
                }
                SosCone::Dsos => {
                    // Q is diagonally dominant with nonnegative diagonal iff
                    // Q = diag(μ) + Σ λ⁺ (e_a+e_b)(e_a+e_b)ᵀ
                    //             + Σ λ⁻ (e_a−e_b)(e_a−e_b)ᵀ, all ≥ 0.
                    let mut diag = Vec::with_capacity(n);
                    for _ in 0..n {
                        let blk = sdp.add_psd_block(1);
                        sdp.set_block_cost_identity(blk, trace_weight);
                        stats.blocks += 1;
                        stats.max_block = stats.max_block.max(1);
                        diag.push(blk);
                    }
                    let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
                    for a in 0..n {
                        for b in a + 1..n {
                            let bp = sdp.add_psd_block(1);
                            let bm = sdp.add_psd_block(1);
                            // Each rank-1 generator contributes λ to both
                            // touched diagonal entries: weight 2 in tr(Q).
                            sdp.set_block_cost_identity(bp, 2.0 * trace_weight);
                            sdp.set_block_cost_identity(bm, 2.0 * trace_weight);
                            stats.blocks += 2;
                            stats.max_block = stats.max_block.max(1);
                            pairs.push((a, b, bp, bm));
                        }
                    }
                    ClassBlocks::DominantDiag { diag, pairs }
                }
            }
        };
        classes.push(ClassLayout {
            idxs: idxs.clone(),
            realisation,
        });
    }
    GramLayout {
        basis: plan.basis.clone(),
        classes,
    }
}

/// One-shot trace counters for what compilation-time reduction achieved.
fn emit_reduction_counters(t: &cppll_trace::Tracer, stats: &ReductionStats) {
    if stats.newton_dropped > 0 {
        t.counter("reduction_newton_dropped", stats.newton_dropped as u64);
    }
    if stats.symmetry_blocks > 0 {
        t.counter("reduction_symmetry_blocks", stats.symmetry_blocks as u64);
    }
    if stats.term_sparsity_blocks > 0 {
        t.counter(
            "reduction_term_sparsity_blocks",
            stats.term_sparsity_blocks as u64,
        );
    }
    if stats.mult_cache_hits > 0 {
        t.counter("reduction_mult_cache_hits", stats.mult_cache_hits as u64);
    }
}

/// How one Gram variable maps onto SDP blocks: the (possibly pruned) basis
/// and, per class, the block realisation of that class's sub-Gram under the
/// compile cone.
struct GramLayout {
    basis: Vec<Monomial>,
    classes: Vec<ClassLayout>,
}

/// One signature/term-sparsity class of a Gram basis and the SDP blocks
/// realising its sub-Gram.
struct ClassLayout {
    /// Indices into the owning layout's basis.
    idxs: Vec<usize>,
    realisation: ClassBlocks,
}

/// How a class's `n×n` sub-Gram `Q` is represented in the SDP.
enum ClassBlocks {
    /// The full PSD cone: one `n×n` block, `Q = X`.
    Psd(BlockId),
    /// SDSOS: `Q = Σ M_ab` over coordinate pairs `a<b` (local indices),
    /// each `M_ab` a 2×2 PSD block embedded at `(a, b)`.
    Pairs(Vec<(usize, usize, BlockId)>),
    /// DSOS: `Q = diag(μ) + Σ λ⁺_ab (e_a+e_b)(e_a+e_b)ᵀ
    ///                    + Σ λ⁻_ab (e_a−e_b)(e_a−e_b)ᵀ`
    /// with all `μ`, `λ` nonnegative 1×1 blocks.
    DominantDiag {
        diag: Vec<BlockId>,
        pairs: Vec<(usize, usize, BlockId, BlockId)>,
    },
}

impl ClassLayout {
    /// Emits the coefficient `v` for the conceptual Gram entry `(a, b)`
    /// (local class indices, `a ≤ b`) into `row`, mapped through the class
    /// realisation. Follows the [`SdpProblem::set_entry`] convention: a
    /// diagonal call contributes `v·Q_aa`, an off-diagonal call `2v·Q_ab`.
    /// `set_entry` accumulates, so overlapping writes (a DSOS λ block is hit
    /// by both touched diagonals) sum correctly.
    fn set_entry(&self, sdp: &mut SdpProblem, row: ConstraintId, a: usize, b: usize, v: f64) {
        match &self.realisation {
            ClassBlocks::Psd(blk) => sdp.set_entry(row, *blk, a, b, v),
            ClassBlocks::Pairs(pairs) => {
                if a == b {
                    // Q_aa = Σ over pairs containing a of that M's diagonal.
                    for &(p, q, blk) in pairs {
                        if p == a {
                            sdp.set_entry(row, blk, 0, 0, v);
                        } else if q == a {
                            sdp.set_entry(row, blk, 1, 1, v);
                        }
                    }
                } else {
                    // Q_ab = M_ab[0,1]; the off-diagonal set_entry doubling
                    // matches on both sides.
                    for &(p, q, blk) in pairs {
                        if p == a && q == b {
                            sdp.set_entry(row, blk, 0, 1, v);
                        }
                    }
                }
            }
            ClassBlocks::DominantDiag { diag, pairs } => {
                if a == b {
                    // Q_aa = μ_a + Σ (λ⁺ + λ⁻) over pairs containing a.
                    sdp.set_entry(row, diag[a], 0, 0, v);
                    for &(p, q, bp, bm) in pairs {
                        if p == a || q == a {
                            sdp.set_entry(row, bp, 0, 0, v);
                            sdp.set_entry(row, bm, 0, 0, v);
                        }
                    }
                } else {
                    // 2v·Q_ab = 2v·(λ⁺ − λ⁻); 1×1 blocks carry no doubling,
                    // so the 2 is explicit.
                    for &(p, q, bp, bm) in pairs {
                        if p == a && q == b {
                            sdp.set_entry(row, bp, 0, 0, 2.0 * v);
                            sdp.set_entry(row, bm, 0, 0, -2.0 * v);
                        }
                    }
                }
            }
        }
    }

    /// Accumulates this class's solved sub-Gram into the full matrix `q`
    /// (global basis indices).
    fn accumulate_into(&self, q: &mut Matrix, x: &[Matrix]) {
        match &self.realisation {
            ClassBlocks::Psd(blk) => {
                let xb = &x[block_index(blk)];
                for (a, &ia) in self.idxs.iter().enumerate() {
                    for (b, &ib) in self.idxs.iter().enumerate() {
                        q[(ia, ib)] += xb[(a, b)];
                    }
                }
            }
            ClassBlocks::Pairs(pairs) => {
                for &(p, r, blk) in pairs {
                    let m = &x[block_index(&blk)];
                    let (ip, ir) = (self.idxs[p], self.idxs[r]);
                    q[(ip, ip)] += m[(0, 0)];
                    q[(ir, ir)] += m[(1, 1)];
                    q[(ip, ir)] += m[(0, 1)];
                    q[(ir, ip)] += m[(1, 0)];
                }
            }
            ClassBlocks::DominantDiag { diag, pairs } => {
                for (a, blk) in diag.iter().enumerate() {
                    let ia = self.idxs[a];
                    q[(ia, ia)] += x[block_index(blk)][(0, 0)];
                }
                for &(p, r, bp, bm) in pairs {
                    let lp = x[block_index(&bp)][(0, 0)];
                    let lm = x[block_index(&bm)][(0, 0)];
                    let (ip, ir) = (self.idxs[p], self.idxs[r]);
                    q[(ip, ip)] += lp + lm;
                    q[(ir, ir)] += lp + lm;
                    q[(ip, ir)] += lp - lm;
                    q[(ir, ip)] += lp - lm;
                }
            }
        }
    }

    /// This class's solved sub-Gram as PSD `(sub-basis, matrix)` summands.
    fn summands(&self, basis: &[Monomial], x: &[Matrix]) -> Vec<(Vec<Monomial>, Matrix)> {
        let sub = |i: usize| basis[self.idxs[i]].clone();
        match &self.realisation {
            ClassBlocks::Psd(blk) => {
                vec![(
                    self.idxs.iter().map(|&i| basis[i].clone()).collect(),
                    x[block_index(blk)].clone(),
                )]
            }
            ClassBlocks::Pairs(pairs) => pairs
                .iter()
                .map(|&(p, r, blk)| (vec![sub(p), sub(r)], x[block_index(&blk)].clone()))
                .collect(),
            ClassBlocks::DominantDiag { diag, pairs } => {
                let mut out = Vec::with_capacity(diag.len() + pairs.len());
                for (a, blk) in diag.iter().enumerate() {
                    out.push((vec![sub(a)], x[block_index(blk)].clone()));
                }
                for &(p, r, bp, bm) in pairs {
                    let lp = x[block_index(&bp)][(0, 0)];
                    let lm = x[block_index(&bm)][(0, 0)];
                    let mut m = Matrix::zeros(2, 2);
                    m[(0, 0)] = lp + lm;
                    m[(1, 1)] = lp + lm;
                    m[(0, 1)] = lp - lm;
                    m[(1, 0)] = lp - lm;
                    out.push((vec![sub(p), sub(r)], m));
                }
                out
            }
        }
    }
}

impl GramLayout {
    /// Reassembles the full `basis.len() × basis.len()` Gram matrix from the
    /// solved blocks (cross-class entries are structurally zero; cone
    /// realisations accumulate their summands).
    fn assemble(&self, x: &[Matrix]) -> Matrix {
        let n = self.basis.len();
        let mut q = Matrix::zeros(n, n);
        for class in &self.classes {
            class.accumulate_into(&mut q, x);
        }
        q
    }

    /// The polynomial `z(x)ᵀ Q z(x)` of the assembled Gram, without
    /// materialising the full matrix... except that cone realisations make
    /// entry-wise iteration awkward, so assemble per class sub-matrices.
    fn to_poly(&self, x: &[Matrix], nvars: usize) -> Polynomial {
        let mut p = Polynomial::zero(nvars);
        for class in &self.classes {
            for (sub, m) in class.summands(&self.basis, x) {
                for (a, ma) in sub.iter().enumerate() {
                    for (b, mb) in sub.iter().enumerate() {
                        let v = m[(a, b)];
                        if v != 0.0 {
                            p.add_term(ma.mul(mb), v);
                        }
                    }
                }
            }
        }
        p
    }

    /// The solved PSD summands as `(sub-basis, block Gram)` pairs.
    fn cloned_blocks(&self, x: &[Matrix]) -> Vec<(Vec<Monomial>, Matrix)> {
        self.classes
            .iter()
            .flat_map(|c| c.summands(&self.basis, x))
            .collect()
    }
}

struct Layout {
    scalar_free: Vec<FreeVarId>,
    poly_free: Vec<Vec<FreeVarId>>,
    gram_layouts: Vec<GramLayout>,
    constraint_layouts: Vec<Option<GramLayout>>,
}

struct Compiled {
    sdp: SdpProblem,
    layout: Layout,
    /// Wall-clock spent on symmetry detection, basis pruning and block
    /// splitting (reported as the `reduction` solve stage).
    reduction_seconds: f64,
    stats: ReductionStats,
    /// Whether support-mode reduction actually changed the program relative
    /// to a legacy compile (multiplier monomials dropped or term-sparsity
    /// blocks split). When false, the compile is bit-identical to legacy and
    /// a screening miss needs no fallback re-solve.
    support_pruned: bool,
}

/// A solved SOS program: read back scalar values, polynomial certificates,
/// Gram matrices and SOS decompositions.
pub struct SosSolution {
    nvars: usize,
    sdp: SdpSolution,
    layout: Layout,
    /// What compilation-time reduction achieved for this solve.
    reduction: ReductionStats,
    poly_bases: Vec<Vec<Monomial>>,
    /// Copies of the constraint expressions, for a-posteriori residuals.
    exprs: Vec<PolyExpr>,
}

impl SosSolution {
    /// Value of a scalar decision variable.
    pub fn scalar_value(&self, s: ScalarVarId) -> f64 {
        self.sdp.free[free_index(&self.layout.scalar_free[s.0])]
    }

    /// Numeric polynomial value of a coefficient decision polynomial.
    pub fn poly_value(&self, v: PolyVarId) -> Polynomial {
        let basis = &self.poly_bases[v.0];
        let nvars = basis.first().map_or(0, Monomial::nvars);
        let mut p = Polynomial::zero(nvars);
        for (k, m) in basis.iter().enumerate() {
            let val = self.sdp.free[free_index(&self.layout.poly_free[v.0][k])];
            p.add_term(m.clone(), val);
        }
        p
    }

    /// Numeric polynomial value of a Gram-backed SOS multiplier.
    pub fn sos_poly_value(&self, g: GramVarId) -> Polynomial {
        self.layout.gram_layouts[g.0].to_poly(&self.sdp.x, self.nvars)
    }

    /// Gram matrix and basis of a Gram-backed SOS multiplier — the raw
    /// certificate data (used, e.g., by exact-arithmetic post-verification).
    /// When sign-symmetry blocking is active the matrix is reassembled from
    /// the solved blocks (cross-class entries are structurally zero).
    pub fn sos_poly_gram(&self, g: GramVarId) -> (&[Monomial], Matrix) {
        let layout = &self.layout.gram_layouts[g.0];
        (layout.basis.as_slice(), layout.assemble(&self.sdp.x))
    }

    /// Gram matrix and basis of an SOS constraint (if the constraint was an
    /// SOS — `None` for zero-equality constraints), reassembled across the
    /// signature-class blocks.
    pub fn constraint_gram(&self, c: SosConstraintId) -> Option<(&[Monomial], Matrix)> {
        self.layout.constraint_layouts[c.0]
            .as_ref()
            .map(|layout| (layout.basis.as_slice(), layout.assemble(&self.sdp.x)))
    }

    /// The solved PSD blocks of an SOS constraint as `(sub-basis, Gram)`
    /// pairs — the blocked form of [`SosSolution::constraint_gram`].
    pub fn constraint_gram_blocks(
        &self,
        c: SosConstraintId,
    ) -> Option<Vec<(Vec<Monomial>, Matrix)>> {
        self.layout.constraint_layouts[c.0]
            .as_ref()
            .map(|layout| layout.cloned_blocks(&self.sdp.x))
    }

    /// SOS decomposition `Σ qᵢ²` of the polynomial certified by constraint
    /// `c`, or `None` for zero-equality constraints. Built block-by-block,
    /// which is both cheaper and numerically no worse than eigensolving the
    /// assembled matrix (the blocks are its invariant subspaces).
    pub fn sos_decomposition(&self, c: SosConstraintId) -> Option<SosDecomposition> {
        let blocks = self.constraint_gram_blocks(c)?;
        Some(SosDecomposition::from_blocks(self.nvars, &blocks))
    }

    /// What compilation-time reduction achieved for this solve.
    pub fn reduction_stats(&self) -> ReductionStats {
        self.reduction
    }

    /// Underlying SDP solution (diagnostics).
    pub fn sdp_solution(&self) -> &SdpSolution {
        &self.sdp
    }

    /// Evaluates an expression at the solved decision values, returning the
    /// resulting numeric polynomial.
    fn eval_expr(&self, expr: &PolyExpr) -> Polynomial {
        let mut acc = expr.constant.clone();
        for (sv, q) in &expr.scalar_terms {
            acc = &acc + &q.scale(self.scalar_value(*sv));
        }
        for (pv, op) in &expr.poly_terms {
            let basis = &self.poly_bases[pv.0];
            for (k, m) in basis.iter().enumerate() {
                let coef = self.sdp.free[free_index(&self.layout.poly_free[pv.0][k])];
                if coef != 0.0 {
                    acc = &acc + &op.apply(m).scale(coef);
                }
            }
        }
        for (gv, h) in &expr.gram_terms {
            let sigma = self.sos_poly_value(*gv);
            acc = &acc + &(&sigma * h);
        }
        acc
    }

    /// A-posteriori certificate check: the maximum absolute coefficient of
    /// `expr(solution) − z(x)ᵀ P z(x)` for an SOS constraint (or of
    /// `expr(solution)` for a zero constraint). Small residuals mean the
    /// numeric solution genuinely satisfies the polynomial identity the
    /// constraint encodes — the defence against interior-point
    /// false-positives on marginally infeasible programs.
    pub fn residual_of(&self, c: SosConstraintId) -> f64 {
        let value = self.eval_expr(&self.exprs[c.0]);
        match &self.layout.constraint_layouts[c.0] {
            Some(layout) => {
                let gram = layout.to_poly(&self.sdp.x, self.nvars);
                (&value - &gram).max_abs_coefficient()
            }
            None => value.max_abs_coefficient(),
        }
    }

    /// Largest [`SosSolution::residual_of`] across all constraints.
    pub fn max_residual(&self) -> f64 {
        (0..self.exprs.len())
            .map(|i| self.residual_of(SosConstraintId(i)))
            .fold(0.0, f64::max)
    }
}

/// Converts a Gram matrix over a monomial basis into the polynomial
/// `z(x)ᵀ Q z(x)`.
pub(crate) fn gram_to_poly(basis: &[Monomial], q: &Matrix) -> Polynomial {
    let nvars = basis.first().map_or(0, Monomial::nvars);
    let mut p = Polynomial::zero(nvars);
    for (i, mi) in basis.iter().enumerate() {
        for (j, mj) in basis.iter().enumerate() {
            let v = q[(i, j)];
            if v != 0.0 {
                p.add_term(mi.mul(mj), v);
            }
        }
    }
    p
}

// Small helpers to strip the newtype ids (fields are crate-private in
// cppll-sdp; we rely on creation order instead).
fn free_index(id: &FreeVarId) -> usize {
    // FreeVarId is ordered by creation; cppll-sdp exposes the raw index via
    // Debug formatting is fragile — instead we rely on the public contract
    // that ids index into `SdpSolution::free` in creation order.
    id.index()
}

fn block_index(id: &BlockId) -> usize {
    id.index()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn motzkin() -> Polynomial {
        // x⁴y² + x²y⁴ − 3x²y² + 1 : nonnegative but NOT a sum of squares.
        Polynomial::from_terms(
            2,
            &[
                (&[4, 2], 1.0),
                (&[2, 4], 1.0),
                (&[2, 2], -3.0),
                (&[0, 0], 1.0),
            ],
        )
    }

    #[test]
    fn simple_square_is_sos() {
        // (x - y)² + 0.1
        let p = Polynomial::from_terms(
            2,
            &[
                (&[2, 0], 1.0),
                (&[1, 1], -2.0),
                (&[0, 2], 1.0),
                (&[0, 0], 0.1),
            ],
        );
        let mut prog = SosProgram::new(2);
        let c = prog.require_sos(p.clone().into());
        let sol = prog.solve(&SosOptions::default()).expect("feasible");
        let dec = sol.sos_decomposition(c).expect("sos constraint");
        assert!(dec.residual(&p) < 1e-6, "residual {}", dec.residual(&p));
    }

    #[test]
    fn motzkin_is_not_sos() {
        let mut prog = SosProgram::new(2);
        prog.require_sos(motzkin().into());
        let r = prog.solve(&SosOptions::default());
        assert!(r.is_err(), "motzkin must not be SOS");
    }

    #[test]
    fn motzkin_times_norm_is_sos() {
        // (x² + y² + 1) · motzkin is SOS — the classic certificate.
        let mult = Polynomial::from_terms(2, &[(&[2, 0], 1.0), (&[0, 2], 1.0), (&[0, 0], 1.0)]);
        let p = &mult * &motzkin();
        let mut prog = SosProgram::new(2);
        let c = prog.require_sos(p.clone().into());
        let sol = prog.solve(&SosOptions::default()).expect("feasible");
        let dec = sol.sos_decomposition(c).expect("sos constraint");
        assert!(dec.residual(&p) < 1e-4, "residual {}", dec.residual(&p));
    }

    #[test]
    fn lyapunov_for_stable_linear_system() {
        // ẋ = -x + y, ẏ = -y. Find quadratic V ≻ 0 with -V̇ SOS.
        let f = vec![
            Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
            Polynomial::from_terms(2, &[(&[0, 1], -1.0)]),
        ];
        let mut prog = SosProgram::new(2);
        let v = prog.new_poly_of_degree(2, 2);
        let eps = Polynomial::norm_squared(2).scale(1e-2);
        // V - ε‖x‖² SOS  and  -V̇ - ε‖x‖² SOS.
        prog.require_sos(prog.poly(v).sub(&eps.clone().into()));
        let vdot = prog.poly_lie_derivative(v, &f);
        prog.require_sos(vdot.neg().sub(&eps.into()));
        let sol = prog.solve(&SosOptions::default()).expect("feasible");
        let vp = sol.poly_value(v);
        // Check V > 0 and V̇ < 0 at sample points.
        for &(x, y) in &[(1.0, 0.5), (-2.0, 1.0), (0.1, -0.3)] {
            assert!(vp.eval(&[x, y]) > 0.0, "V not positive at ({x},{y})");
            let vdot_val = vp.lie_derivative(&f).eval(&[x, y]);
            assert!(vdot_val < 0.0, "V̇ not negative at ({x},{y})");
        }
    }

    #[test]
    fn s_procedure_nonneg_on_interval() {
        // p(x) = x is nonnegative on {x : x ≥ 0} (trivially, via σ = 1·x).
        let x = Polynomial::var(1, 0);
        let mut prog = SosProgram::new(1);
        let (c, _m) = prog.require_nonneg_on(x.clone().into(), std::slice::from_ref(&x), 0);
        let sol = prog.solve(&SosOptions::default()).expect("feasible");
        let _ = sol.constraint_gram(c);
    }

    #[test]
    fn s_procedure_detects_violation() {
        // p(x) = -1 - x² is NOT nonnegative on {x ≥ 0}.
        let x = Polynomial::var(1, 0);
        let p = Polynomial::from_terms(1, &[(&[0], -1.0), (&[2], -1.0)]);
        let mut prog = SosProgram::new(1);
        prog.require_nonneg_on(p.into(), &[x], 1);
        assert!(prog.solve(&SosOptions::default()).is_err());
    }

    #[test]
    fn scalar_objective_maximizes() {
        // max c s.t. x² - c is SOS ⇒ c* = 0.
        let x2 = Polynomial::from_terms(1, &[(&[2], 1.0)]);
        let mut prog = SosProgram::new(1);
        let c = prog.new_scalar();
        let expr = PolyExpr::from(x2).sub(&prog.scalar(c));
        prog.require_sos(expr);
        prog.maximize_scalar(c);
        let sol = prog.solve(&SosOptions::with_objective()).expect("feasible");
        assert!(
            sol.scalar_value(c).abs() < 1e-4,
            "c = {}",
            sol.scalar_value(c)
        );
    }

    #[test]
    fn lower_bound_of_quartic() {
        // max c s.t. (x²−1)² + 0.5 − c SOS ⇒ c* = 0.5.
        let p = Polynomial::from_terms(1, &[(&[4], 1.0), (&[2], -2.0), (&[0], 1.5)]);
        let mut prog = SosProgram::new(1);
        let c = prog.new_scalar();
        prog.require_sos(PolyExpr::from(p).sub(&prog.scalar(c)));
        prog.maximize_scalar(c);
        let sol = prog.solve(&SosOptions::with_objective()).expect("feasible");
        assert!(
            (sol.scalar_value(c) - 0.5).abs() < 1e-3,
            "c = {}",
            sol.scalar_value(c)
        );
    }

    #[test]
    fn zero_equality_constraint_binds() {
        // Find p of degree ≤ 2 with p ≡ x²  (i.e. p − x² = 0).
        let x2 = Polynomial::from_terms(1, &[(&[2], 1.0)]);
        let mut prog = SosProgram::new(1);
        let p = prog.new_poly_of_degree(0, 2);
        prog.require_zero(prog.poly(p).sub(&x2.clone().into()));
        let sol = prog.solve(&SosOptions::default()).expect("feasible");
        let got = sol.poly_value(p);
        assert!((&got - &x2).max_abs_coefficient() < 1e-5);
    }
}
