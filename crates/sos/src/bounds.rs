//! SOS-certified bounds on the range of a polynomial over a semialgebraic
//! set.
//!
//! `certified_upper_bound` finds (by bisection) a value `u` with a
//! Positivstellensatz certificate for `p(x) ≤ u` on `{gⱼ(x) ≥ 0}`; the
//! lower bound is the mirror image. Together they bound the *range* of `p`
//! on the set — used, e.g., to turn an escape certificate `E` with
//! `Ė ≤ −ε` into an explicit dwell-time bound `(sup E − inf E)/ε`
//! (Proposition 1 of the paper).

use cppll_poly::Polynomial;

use crate::program::{SosOptions, SosProgram};
use crate::{maximize_bisect, PolyExpr};

/// Options for the certified range bounds.
#[derive(Debug, Clone)]
pub struct BoundOptions {
    /// Half-degree of the S-procedure multipliers.
    pub mult_half_degree: u32,
    /// Bisection resolution (absolute).
    pub tolerance: f64,
    /// Search window half-width: bounds are searched inside
    /// `[−window, window]` around zero. Pick generously; the certified
    /// value is still tight to `tolerance`.
    pub window: f64,
    /// Half-width of the numeric pre-check box (defaults to the window):
    /// candidate bounds that are visibly violated at sampled domain points
    /// inside this box are rejected before any SDP is solved — both an
    /// optimisation and a guard against solver false-positives at large
    /// scales (samples can only *reject*, never accept). A result at the
    /// window ceiling is reported as `None` (unbounded within the window).
    pub sample_box: Option<f64>,
    /// SOS options per probe.
    pub sos: SosOptions,
}

impl Default for BoundOptions {
    fn default() -> Self {
        BoundOptions {
            mult_half_degree: 1,
            tolerance: 1e-3,
            window: 1e3,
            sample_box: None,
            sos: SosOptions::default(),
        }
    }
}

/// Certified `u` with `p ≤ u` on `{gⱼ ≥ 0}`, or `None` if none exists in
/// the search window (e.g. the set is unbounded in a growing direction of
/// `p`, or the multiplier degree is too low).
///
/// # Examples
///
/// ```
/// use cppll_poly::Polynomial;
/// use cppll_sos::{certified_upper_bound, BoundOptions};
///
/// // p = x on {x² ≤ 4}: sup = 2.
/// let p = Polynomial::var(1, 0);
/// let disc = Polynomial::from_terms(1, &[(&[0], 4.0), (&[2], -1.0)]);
/// let u = certified_upper_bound(&p, &[disc], &BoundOptions::default()).unwrap();
/// assert!((u - 2.0).abs() < 0.01);
/// ```
pub fn certified_upper_bound(
    p: &Polynomial,
    domain: &[Polynomial],
    opt: &BoundOptions,
) -> Option<f64> {
    let nvars = p.nvars();
    // Numeric witnesses: sampled domain points whose p-value lower-bounds
    // the supremum (sound rejections only).
    let mut witness_max = f64::NEG_INFINITY;
    {
        let sample_box = opt.sample_box.unwrap_or(opt.window);
        let steps = if nvars <= 3 { 11 } else { 5 };
        let mut idx = vec![0usize; nvars];
        loop {
            let x: Vec<f64> = idx
                .iter()
                .map(|&i| -sample_box + 2.0 * sample_box * (i as f64) / ((steps - 1) as f64))
                .collect();
            if domain.iter().all(|g| g.eval(&x) >= 0.0) {
                witness_max = witness_max.max(p.eval(&x));
            }
            let mut k = 0;
            loop {
                if k == nvars {
                    break;
                }
                idx[k] += 1;
                if idx[k] < steps {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
            if k == nvars {
                break;
            }
        }
    }
    let scale = p.max_abs_coefficient().max(1.0);
    let run = |sos: &SosOptions| -> Option<f64> {
        let feasible = |u: f64| {
            if u < witness_max - opt.tolerance {
                return false; // a sampled point already beats this bound
            }
            let mut prog = SosProgram::new(nvars);
            let expr = PolyExpr::from(&Polynomial::constant(nvars, u) - p);
            let (cid, _) = prog.require_nonneg_on(expr, domain, opt.mult_half_degree);
            match prog.solve(sos) {
                // Accept only when the returned certificate genuinely
                // satisfies the polynomial identity (interior-point answers
                // on marginally infeasible programs do not).
                Ok(sol) => sol.residual_of(cid) <= 1e-5 * scale.max(u.abs()),
                Err(_) => false,
            }
        };
        // Feasibility is monotone increasing in u; bisect on −u to minimise.
        let r = maximize_bisect(-opt.window, opt.window, opt.tolerance, |t| feasible(-t));
        let u = -r.best?;
        // A value at the window ceiling means no certified bound exists
        // inside the search window — report honestly.
        if u > opt.window - 10.0 * opt.tolerance {
            return None;
        }
        Some(u)
    };
    // Bound bisection tolerates a conservative "no" from the support-reduced
    // compile: a spurious rejection only widens the certified bound, and the
    // accepted bound always carries a real certificate. Only when the whole
    // bisection comes up empty is it re-run under the legacy compile, so
    // support-mode over-restriction never loses a bound legacy would find.
    let mut probe_sos = opt.sos.clone();
    probe_sos.reduction.trust_infeasible = true;
    run(&probe_sos).or_else(|| {
        if opt.sos.reduction.mode == crate::ReduceMode::Support {
            let mut legacy = opt.sos.clone();
            legacy.reduction.mode = crate::ReduceMode::Legacy;
            run(&legacy)
        } else {
            None
        }
    })
}

/// Certified `l` with `p ≥ l` on `{gⱼ ≥ 0}` — mirror of
/// [`certified_upper_bound`].
pub fn certified_lower_bound(
    p: &Polynomial,
    domain: &[Polynomial],
    opt: &BoundOptions,
) -> Option<f64> {
    certified_upper_bound(&p.scale(-1.0), domain, opt).map(|u| -u)
}

/// Certified range `[l, u]` of `p` on `{gⱼ ≥ 0}` (both bounds must exist).
pub fn certified_range(
    p: &Polynomial,
    domain: &[Polynomial],
    opt: &BoundOptions,
) -> Option<(f64, f64)> {
    let u = certified_upper_bound(p, domain, opt)?;
    let l = certified_lower_bound(p, domain, opt)?;
    Some((l, u))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(lo: f64, hi: f64) -> Vec<Polynomial> {
        let x = Polynomial::var(1, 0);
        vec![
            &x - &Polynomial::constant(1, lo),
            &Polynomial::constant(1, hi) - &x,
        ]
    }

    #[test]
    fn linear_on_interval() {
        let p = Polynomial::var(1, 0);
        let (l, u) =
            certified_range(&p, &interval(-1.0, 3.0), &BoundOptions::default()).expect("bounded");
        assert!((u - 3.0).abs() < 0.01, "u = {u}");
        assert!((l + 1.0).abs() < 0.01, "l = {l}");
    }

    #[test]
    fn quadratic_on_disc() {
        // p = x² + y on the unit disc: sup = 1.25 (at y = -... actually
        // maximise x²+y s.t. x²+y² ≤ 1 ⇒ x² = 1−y², p = 1−y²+y max at
        // y = 1/2 ⇒ 5/4); inf = −1 (x = 0, y = −1).
        let p = Polynomial::from_terms(2, &[(&[2, 0], 1.0), (&[0, 1], 1.0)]);
        let disc = &Polynomial::constant(2, 1.0) - &Polynomial::norm_squared(2);
        let opt = BoundOptions {
            mult_half_degree: 2, // tighter S-procedure for the curvy disc
            ..Default::default()
        };
        let (l, u) = certified_range(&p, &[disc], &opt).expect("bounded");
        assert!((1.25 - 1e-6..1.35).contains(&u), "u = {u}");
        assert!(l <= -1.0 + 1e-6 && l > -1.15, "l = {l}");
    }

    #[test]
    fn unbounded_direction_returns_none() {
        // p = x on {x ≥ 0} has no upper bound.
        let p = Polynomial::var(1, 0);
        let dom = vec![Polynomial::var(1, 0)];
        let opt = BoundOptions {
            window: 50.0,
            ..Default::default()
        };
        assert!(certified_upper_bound(&p, &dom, &opt).is_none());
        // …but a certified lower bound 0 exists.
        let l = certified_lower_bound(&p, &dom, &opt).expect("bounded below");
        assert!(l.abs() < 0.01, "l = {l}");
    }
}
