//! Sum-of-squares (SOS) programming on top of the `cppll-sdp` solver.
//!
//! This crate plays the role YALMIP's SOS module played for the paper: it
//! turns *"this polynomial expression, affine in some decision variables,
//! must be a sum of squares"* into a semidefinite program, solves it, and
//! reads polynomial certificates back.
//!
//! # Programming model
//!
//! An [`SosProgram`] owns three kinds of decision objects:
//!
//! * **scalar variables** ([`SosProgram::new_scalar`]) — free reals (level
//!   values, tightness parameters, …);
//! * **coefficient polynomials** ([`SosProgram::new_poly`]) — polynomials
//!   whose coefficients over a given monomial basis are free decision
//!   variables (Lyapunov candidates `V`, escape certificates `E`);
//! * **SOS multiplier polynomials** ([`SosProgram::new_sos_poly`]) —
//!   polynomials constrained to be SOS *by construction* (they are backed
//!   directly by a Gram matrix block), used for S-procedure multipliers σ.
//!
//! Affine combinations of these with *known* polynomial coefficients form
//! [`PolyExpr`] values; [`SosProgram::require_sos`] and
//! [`SosProgram::require_zero`] add constraints. The S-procedure helper
//! [`SosProgram::require_nonneg_on`] implements the standard "nonnegative on
//! a semialgebraic set" encoding used throughout the paper's SOS programs.
//!
//! # Examples
//!
//! Prove `p(x, y) = x² − 2xy + y² + 1` is SOS and extract a decomposition:
//!
//! ```
//! use cppll_poly::Polynomial;
//! use cppll_sos::{SosProgram, SosOptions};
//!
//! let p = Polynomial::from_terms(2, &[
//!     (&[2, 0], 1.0), (&[1, 1], -2.0), (&[0, 2], 1.0), (&[0, 0], 1.0),
//! ]);
//! let mut prog = SosProgram::new(2);
//! let c = prog.require_sos(p.clone().into());
//! let sol = prog.solve(&SosOptions::default()).expect("feasible");
//! let dec = sol.sos_decomposition(c).expect("gram available");
//! assert!(dec.residual(&p) < 1e-6);
//! ```

mod bisect;
mod bounds;
mod decomposition;
mod expr;
mod inclusion;
mod program;
mod reduce;
mod supervisor;

pub use bisect::{maximize_bisect, BisectResult};
pub use bounds::{certified_lower_bound, certified_range, certified_upper_bound, BoundOptions};
pub use decomposition::SosDecomposition;
pub use expr::{GramVarId, PolyExpr, PolyVarId, ScalarVarId};
pub use inclusion::{check_inclusion, check_inclusion_seeded, InclusionOptions, InclusionProbe};
pub use program::{SosConstraintId, SosError, SosOptions, SosProgram, SosSolution};
pub use reduce::{ReduceMode, ReductionOptions, ReductionStats, SosCone};
pub use supervisor::{AttemptRecord, LedgerStats, ResilienceOptions, RetryPolicy, SolveLedger};
