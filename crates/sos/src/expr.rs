//! Affine polynomial expressions over SOS decision variables.

use cppll_poly::Polynomial;

/// Identifier of a scalar decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScalarVarId(pub(crate) usize);

/// Identifier of a coefficient decision polynomial (free coefficients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolyVarId(pub(crate) usize);

/// Identifier of a Gram-backed SOS decision polynomial (an S-procedure
/// multiplier σ that is SOS by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GramVarId(pub(crate) usize);

/// Linear operation applied to a coefficient decision polynomial inside an
/// expression term. Each operation maps every basis monomial to a *known*
/// polynomial, so the term stays affine in the decision coefficients.
#[derive(Debug, Clone)]
pub(crate) enum PolyOp {
    /// `V(x) · q(x)`.
    Mul(Polynomial),
    /// `(∂V/∂xᵢ)(x) · q(x)` — Lie-derivative building block.
    DerivMul(usize, Polynomial),
    /// `V(R(x)) · q(x)` — composition with a known (jump) map.
    ComposeMul(Vec<Polynomial>, Polynomial),
}

impl PolyOp {
    /// Applies the operation to a single known basis monomial.
    pub(crate) fn apply(&self, m: &cppll_poly::Monomial) -> Polynomial {
        let p = Polynomial::from_monomial(m.clone(), 1.0);
        match self {
            PolyOp::Mul(q) => &p * q,
            PolyOp::DerivMul(i, q) => &p.partial_derivative(*i) * q,
            PolyOp::ComposeMul(subs, q) => &p.compose(subs) * q,
        }
    }

    fn scale(&self, s: f64) -> PolyOp {
        match self {
            PolyOp::Mul(q) => PolyOp::Mul(q.scale(s)),
            PolyOp::DerivMul(i, q) => PolyOp::DerivMul(*i, q.scale(s)),
            PolyOp::ComposeMul(subs, q) => PolyOp::ComposeMul(subs.clone(), q.scale(s)),
        }
    }

    fn mul_poly(&self, r: &Polynomial) -> PolyOp {
        match self {
            PolyOp::Mul(q) => PolyOp::Mul(q * r),
            PolyOp::DerivMul(i, q) => PolyOp::DerivMul(*i, q * r),
            PolyOp::ComposeMul(subs, q) => PolyOp::ComposeMul(subs.clone(), q * r),
        }
    }
}

/// A polynomial expression **affine** in the program's decision variables:
///
/// ```text
/// expr(x) = p₀(x) + Σₖ sₖ · qₖ(x) + Σᵥ op(Vᵥ)(x) + Σ_σ σ(x) · h_σ(x)
/// ```
///
/// where `p₀, qₖ, h` are *known* polynomials, `sₖ` scalar decision
/// variables, `Vᵥ` coefficient decision polynomials under a linear operation
/// (product with a known polynomial, partial derivative, or composition with
/// a known map), and `σ` Gram-backed SOS multipliers. Products of two
/// decision objects are rejected by construction, keeping every SOS program
/// a genuine (convex) SDP.
///
/// Expressions are built with [`PolyExpr::add`], [`PolyExpr::sub`],
/// [`PolyExpr::mul_poly`], and the `From<Polynomial>` conversion; the
/// program hands out expressions for its decision objects via
/// `SosProgram::{poly, sos_poly, scalar}` accessors.
#[derive(Debug, Clone)]
pub struct PolyExpr {
    pub(crate) nvars: usize,
    /// Known constant part.
    pub(crate) constant: Polynomial,
    /// `(scalar var, known multiplier polynomial)` terms.
    pub(crate) scalar_terms: Vec<(ScalarVarId, Polynomial)>,
    /// `(poly var, linear operation)` terms.
    pub(crate) poly_terms: Vec<(PolyVarId, PolyOp)>,
    /// `(gram var, known multiplier polynomial)` terms.
    pub(crate) gram_terms: Vec<(GramVarId, Polynomial)>,
}

impl PolyExpr {
    /// The zero expression over `nvars` indeterminates.
    pub fn zero(nvars: usize) -> Self {
        PolyExpr {
            nvars,
            constant: Polynomial::zero(nvars),
            scalar_terms: Vec::new(),
            poly_terms: Vec::new(),
            gram_terms: Vec::new(),
        }
    }

    /// Number of indeterminates.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// `true` when the expression has no decision-variable terms.
    pub fn is_constant(&self) -> bool {
        self.scalar_terms.is_empty() && self.poly_terms.is_empty() && self.gram_terms.is_empty()
    }

    /// Sum of two expressions.
    ///
    /// # Panics
    ///
    /// Panics if the expressions live over different numbers of variables.
    pub fn add(&self, rhs: &PolyExpr) -> PolyExpr {
        assert_eq!(self.nvars, rhs.nvars, "variable counts must match");
        let mut out = self.clone();
        out.constant = &out.constant + &rhs.constant;
        out.scalar_terms.extend(rhs.scalar_terms.iter().cloned());
        out.poly_terms.extend(rhs.poly_terms.iter().cloned());
        out.gram_terms.extend(rhs.gram_terms.iter().cloned());
        out
    }

    /// Difference of two expressions.
    ///
    /// # Panics
    ///
    /// Panics if the expressions live over different numbers of variables.
    pub fn sub(&self, rhs: &PolyExpr) -> PolyExpr {
        self.add(&rhs.neg())
    }

    /// Negation.
    pub fn neg(&self) -> PolyExpr {
        self.scale(-1.0)
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> PolyExpr {
        PolyExpr {
            nvars: self.nvars,
            constant: self.constant.scale(s),
            scalar_terms: self
                .scalar_terms
                .iter()
                .map(|(v, p)| (*v, p.scale(s)))
                .collect(),
            poly_terms: self
                .poly_terms
                .iter()
                .map(|(v, op)| (*v, op.scale(s)))
                .collect(),
            gram_terms: self
                .gram_terms
                .iter()
                .map(|(v, p)| (*v, p.scale(s)))
                .collect(),
        }
    }

    /// Product with a **known** polynomial (keeps the expression affine).
    ///
    /// # Panics
    ///
    /// Panics if `q` lives over a different number of variables.
    pub fn mul_poly(&self, q: &Polynomial) -> PolyExpr {
        assert_eq!(self.nvars, q.nvars(), "variable counts must match");
        PolyExpr {
            nvars: self.nvars,
            constant: &self.constant * q,
            scalar_terms: self.scalar_terms.iter().map(|(v, p)| (*v, p * q)).collect(),
            poly_terms: self
                .poly_terms
                .iter()
                .map(|(v, op)| (*v, op.mul_poly(q)))
                .collect(),
            gram_terms: self.gram_terms.iter().map(|(v, p)| (*v, p * q)).collect(),
        }
    }
}

impl From<Polynomial> for PolyExpr {
    fn from(p: Polynomial) -> Self {
        let nvars = p.nvars();
        PolyExpr {
            nvars,
            constant: p,
            scalar_terms: Vec::new(),
            poly_terms: Vec::new(),
            gram_terms: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_keeps_structure() {
        let p = Polynomial::var(2, 0);
        let e: PolyExpr = p.clone().into();
        let f = e.add(&e).scale(0.5).mul_poly(&p);
        assert!(f.is_constant());
        assert_eq!(f.constant, &p * &p);
    }

    #[test]
    fn zero_is_neutral() {
        let z = PolyExpr::zero(3);
        let p: PolyExpr = Polynomial::norm_squared(3).into();
        let s = p.add(&z);
        assert_eq!(s.constant, Polynomial::norm_squared(3));
    }
}
