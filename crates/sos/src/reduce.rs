//! Problem-size reduction between SOS program construction and SDP
//! emission: Newton-polytope basis pruning (see [`cppll_poly::prune_gram_basis`])
//! and sign-symmetry block-diagonalisation of Gram matrices.
//!
//! # Sign symmetries
//!
//! A sign symmetry is a variable-flip map `τ_s : xᵢ ↦ (−1)^{sᵢ} xᵢ`
//! (`s ∈ GF(2)ⁿ`) under which **every** datum of the program is invariant
//! (or, for derivative/composition operators, suitably equivariant — see
//! the per-term rules in `SymmetryDetector`). From any feasible solution a
//! flipped solution can be built (`V ↦ V∘τ_s`, Gram `Q ↦ DQD` with
//! `D = diag((−1)^{s·m})`, scalars unchanged), and the group average of all
//! flipped solutions is again feasible (the constraints are affine in the
//! decisions and the PSD cone is convex) with the same objective value
//! (`tr(DQD) = tr(Q)`). The averaged Gram commutes with every `D`, so its
//! entry `Q_{ab}` vanishes whenever the *signatures* `s ↦ s·(a mod 2)` of
//! basis monomials `a, b` differ on some group generator. Partitioning each
//! Gram basis by signature therefore splits one monolithic PSD block into
//! independent smaller blocks **without changing feasibility in either
//! direction** — exactly the shape the per-block parallel factorisations of
//! the SDP solver are best at.
//!
//! The group of valid flips is computed as the GF(2) null space of parity
//! constraints harvested from all known polynomial data; `u64` bit masks
//! make the Gaussian elimination a few dozen XORs for the ≤ 8 variables
//! this pipeline sees.

use std::collections::BTreeSet;

use cppll_poly::{Monomial, Polynomial};

/// How S-procedure multiplier bases are chosen at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceMode {
    /// Support-driven: each multiplier's candidate basis is filtered
    /// against the Newton polytope of the constraint it certifies
    /// (`2m + α ∈ conv(fixed support)` for some guard monomial `α`), then
    /// run through the diagonal-consistency iteration. The default.
    #[default]
    Support,
    /// Conservative full degree simplex, exactly as declared by
    /// `new_sos_poly` — the pre-support-driven behaviour, kept as a
    /// bisection escape hatch for verdict regressions.
    Legacy,
}

impl ReduceMode {
    /// Canonical lower-case name (CLI flag value and JSON encoding).
    pub fn as_str(&self) -> &'static str {
        match self {
            ReduceMode::Support => "support",
            ReduceMode::Legacy => "legacy",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "support" => Some(ReduceMode::Support),
            "legacy" => Some(ReduceMode::Legacy),
            _ => None,
        }
    }
}

impl std::fmt::Display for ReduceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which cone Gram blocks are constrained to at SDP emission time. The
/// inclusion chain `dd ⊂ sdd ⊂ PSD` makes the cheaper cones sound *inner*
/// approximations: a certificate found under [`SosCone::Dsos`] or
/// [`SosCone::Sdsos`] is a genuine SOS certificate, while a failure says
/// nothing — callers fall back to the full SDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SosCone {
    /// Full PSD Gram blocks (the ordinary SOS relaxation). The default.
    #[default]
    Sos,
    /// Scaled diagonally dominant: every Gram block of dimension ≥ 3 is
    /// replaced by a sum of 2×2 PSD blocks, one per basis index pair —
    /// SOCP-strength constraints solved by the same SDP machinery.
    Sdsos,
    /// Diagonally dominant: every Gram block of dimension ≥ 3 is replaced
    /// by nonnegative scalars `μᵢ, λ⁺ᵢⱼ, λ⁻ᵢⱼ` realising
    /// `Q = Σ λ⁺(eᵢ+eⱼ)(eᵢ+eⱼ)ᵀ + λ⁻(eᵢ−eⱼ)(eᵢ−eⱼ)ᵀ + Σ μᵢeᵢeᵢᵀ` —
    /// LP-strength constraints.
    Dsos,
}

impl SosCone {
    /// Canonical lower-case name (CLI flag value and JSON encoding).
    pub fn as_str(&self) -> &'static str {
        match self {
            SosCone::Sos => "sos",
            SosCone::Sdsos => "sdsos",
            SosCone::Dsos => "dsos",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sos" => Some(SosCone::Sos),
            "sdsos" => Some(SosCone::Sdsos),
            "dsos" => Some(SosCone::Dsos),
            _ => None,
        }
    }
}

impl std::fmt::Display for SosCone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which reductions [`SosProgram::solve`](crate::SosProgram::solve) applies
/// before handing the SDP to the solver. Everything is on by default; the
/// CLI exposes `--no-reduce`, `--reduce-mode legacy` and `--cone` as the
/// escape hatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionOptions {
    /// Newton-polytope + diagonal-consistency pruning of automatically
    /// chosen constraint Gram bases, and (under [`ReduceMode::Support`]) of
    /// multiplier bases. Explicit bases passed via `require_sos_with_basis`
    /// are a caller contract and are honoured verbatim.
    pub newton: bool,
    /// Sign-symmetry block-diagonalisation of every Gram block (constraint
    /// Grams and multipliers alike).
    pub symmetry: bool,
    /// How multiplier candidate bases are derived (support-driven Newton
    /// filtering vs the legacy full degree simplex).
    pub mode: ReduceMode,
    /// TSSOS-style term-sparsity block splitting: refine every Gram's
    /// signature classes by the connected components of the term-sparsity
    /// graph, iterated to the support-extension fixed point.
    pub term_sparsity: bool,
    /// Cone the Gram blocks are constrained to. Non-default cones are used
    /// by the solve supervisor as a cheap screening pass whose success
    /// short-circuits the full SDP (see `SosProgram::solve`).
    pub cone: SosCone,
    /// Trust a non-success from the support-reduced compile instead of
    /// falling back to the legacy compile per solve. The reduced program is
    /// a restriction, so its infeasibility (or a stall on a marginal
    /// program) does not imply anything about the full program — but inside
    /// a monotone bisection (level-set maximisation, certified bounds) a
    /// spurious "no" only makes the bound more conservative while every
    /// accepted level still carries a genuine certificate. Those probes set
    /// this to skip the expensive per-probe legacy re-solve; their *stage*
    /// re-runs under [`ReduceMode::Legacy`] only if the whole bisection
    /// comes up empty. Verdict-critical checks leave this off, so their
    /// answers always agree with legacy mode.
    pub trust_infeasible: bool,
}

impl Default for ReductionOptions {
    fn default() -> Self {
        ReductionOptions {
            newton: true,
            symmetry: true,
            mode: ReduceMode::Support,
            term_sparsity: true,
            cone: SosCone::Sos,
            trust_infeasible: false,
        }
    }
}

impl ReductionOptions {
    /// Reduction fully disabled: compile exactly the SDP the program text
    /// describes (bit-identical to the pre-reduction pipeline).
    pub fn none() -> Self {
        ReductionOptions {
            newton: false,
            symmetry: false,
            mode: ReduceMode::Legacy,
            term_sparsity: false,
            cone: SosCone::Sos,
            trust_infeasible: false,
        }
    }

    /// `true` when any reduction is enabled.
    pub fn is_active(&self) -> bool {
        self.newton || self.symmetry || self.mode == ReduceMode::Support || self.term_sparsity
    }
}

impl cppll_json::ToJson for ReductionOptions {
    fn to_json(&self) -> cppll_json::Value {
        cppll_json::ObjectBuilder::new()
            .field("newton", self.newton)
            .field("symmetry", self.symmetry)
            .field("mode", self.mode.as_str())
            .field("term_sparsity", self.term_sparsity)
            .field("cone", self.cone.as_str())
            .field("trust_infeasible", self.trust_infeasible)
            .build()
    }
}

impl cppll_json::FromJson for ReductionOptions {
    fn from_json(v: &cppll_json::Value) -> Result<Self, cppll_json::DecodeError> {
        use cppll_json::decode;
        // The three newer fields default when absent so journals written by
        // earlier versions still decode (their fingerprints exclude them from
        // resume anyway, but ledgers and reports should not hard-fail).
        let mode = match decode::optional::<String>(v, "mode")? {
            Some(s) => ReduceMode::parse(&s)
                .ok_or_else(|| cppll_json::DecodeError::new(format!("bad reduce mode {s:?}")))?,
            None => ReduceMode::Legacy,
        };
        let cone = match decode::optional::<String>(v, "cone")? {
            Some(s) => SosCone::parse(&s)
                .ok_or_else(|| cppll_json::DecodeError::new(format!("bad cone {s:?}")))?,
            None => SosCone::Sos,
        };
        Ok(ReductionOptions {
            newton: decode::required(v, "newton")?,
            symmetry: decode::required(v, "symmetry")?,
            mode,
            term_sparsity: decode::optional(v, "term_sparsity")?.unwrap_or(false),
            cone,
            trust_infeasible: decode::optional(v, "trust_infeasible")?.unwrap_or(false),
        })
    }
}

/// What the reduction achieved, accumulated over every Gram block of every
/// compiled program (and, via the ledger, over every solve of a pipeline
/// run). `basis_after < basis_before` and `blocks > grams` are the two ways
/// an SDP shrinks; both are reported rather than asserted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Gram blocks considered (multipliers + SOS constraints).
    pub grams: usize,
    /// Total basis monomials before pruning.
    pub basis_before: usize,
    /// Total basis monomials after pruning (= sum of all block dimensions).
    pub basis_after: usize,
    /// PSD blocks emitted (≥ `grams`; larger when symmetry splits).
    pub blocks: usize,
    /// Largest emitted block dimension.
    pub max_block: usize,
    /// Basis monomials removed by the Newton/support layer alone
    /// (support-driven multiplier filtering + constraint-Gram pruning).
    pub newton_dropped: usize,
    /// Extra blocks minted by sign-symmetry splitting, beyond one per Gram.
    pub symmetry_blocks: usize,
    /// Extra blocks minted by term-sparsity splitting, beyond what
    /// symmetry alone produced.
    pub term_sparsity_blocks: usize,
    /// Hits in the interned multiplier-basis cache (identical
    /// target/factor support pairs across constraints share one pruning).
    pub mult_cache_hits: usize,
}

impl ReductionStats {
    /// Accumulates another compile's stats (sums; `max_block` maxes).
    pub fn accumulate(&mut self, other: &ReductionStats) {
        self.grams += other.grams;
        self.basis_before += other.basis_before;
        self.basis_after += other.basis_after;
        self.blocks += other.blocks;
        self.max_block = self.max_block.max(other.max_block);
        self.newton_dropped += other.newton_dropped;
        self.symmetry_blocks += other.symmetry_blocks;
        self.term_sparsity_blocks += other.term_sparsity_blocks;
        self.mult_cache_hits += other.mult_cache_hits;
    }

    /// Did reduction shrink anything at all?
    pub fn is_reduced(&self) -> bool {
        self.basis_after < self.basis_before || self.blocks > self.grams
    }

    /// Per-layer breakdown for the CLI `reduction:` block — `None` when no
    /// layer did anything (the headline [`std::fmt::Display`] line already
    /// says everything).
    pub fn detail(&self) -> Option<String> {
        if self.newton_dropped == 0
            && self.symmetry_blocks == 0
            && self.term_sparsity_blocks == 0
            && self.mult_cache_hits == 0
        {
            return None;
        }
        Some(format!(
            "newton −{} monomials, symmetry +{} blocks, term-sparsity +{} blocks, multiplier-cache {} hits",
            self.newton_dropped, self.symmetry_blocks, self.term_sparsity_blocks, self.mult_cache_hits
        ))
    }
}

impl std::fmt::Display for ReductionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} grams, basis {}→{}, {} blocks (max dim {})",
            self.grams, self.basis_before, self.basis_after, self.blocks, self.max_block
        )
    }
}

impl cppll_json::ToJson for ReductionStats {
    fn to_json(&self) -> cppll_json::Value {
        cppll_json::ObjectBuilder::new()
            .field("grams", self.grams)
            .field("basis_before", self.basis_before)
            .field("basis_after", self.basis_after)
            .field("blocks", self.blocks)
            .field("max_block", self.max_block)
            .field("newton_dropped", self.newton_dropped)
            .field("symmetry_blocks", self.symmetry_blocks)
            .field("term_sparsity_blocks", self.term_sparsity_blocks)
            .field("mult_cache_hits", self.mult_cache_hits)
            .build()
    }
}

impl cppll_json::FromJson for ReductionStats {
    fn from_json(v: &cppll_json::Value) -> Result<Self, cppll_json::DecodeError> {
        use cppll_json::decode;
        Ok(ReductionStats {
            grams: decode::required(v, "grams")?,
            basis_before: decode::required(v, "basis_before")?,
            basis_after: decode::required(v, "basis_after")?,
            blocks: decode::required(v, "blocks")?,
            max_block: decode::required(v, "max_block")?,
            // Per-layer counters postdate the first journal format; default
            // to zero so prior-run ledgers still decode.
            newton_dropped: decode::optional(v, "newton_dropped")?.unwrap_or(0),
            symmetry_blocks: decode::optional(v, "symmetry_blocks")?.unwrap_or(0),
            term_sparsity_blocks: decode::optional(v, "term_sparsity_blocks")?.unwrap_or(0),
            mult_cache_hits: decode::optional(v, "mult_cache_hits")?.unwrap_or(0),
        })
    }
}

/// Bit mask of the odd-exponent variables of a monomial: the quantity a
/// sign flip `τ_s` sees (`τ_s(x^α) = (−1)^{s·α} x^α`).
pub(crate) fn parity_mask(m: &Monomial) -> u64 {
    let mut mask = 0u64;
    for (i, &e) in m.exps().iter().enumerate() {
        if e % 2 == 1 {
            mask |= 1u64 << i;
        }
    }
    mask
}

/// Collects GF(2) parity constraints on candidate sign flips `s` and
/// solves for the group of flips satisfying all of them.
///
/// Per-term rules (τ = τ_s, ε_i = (−1)^{s_i}):
///
/// * known polynomial `q` appearing multiplicatively (constants, scalar
///   coefficients, multiplier factors, plain `V·q`): need `q∘τ = q`, i.e.
///   `s·α = 0` for every `α ∈ supp(q)` — [`SymmetryDetector::require_invariant`];
/// * `(∂V/∂xᵢ)·q`: the derivative picks up `εᵢ`, so `q` must satisfy
///   `q∘τ = εᵢ·q`, i.e. `s·(α ⊕ eᵢ) = 0` —
///   [`SymmetryDetector::require_equivariant`] with `var = i`;
/// * `V(R(x))·q`: need `q` invariant and each component equivariant,
///   `Rⱼ(τx) = εⱼ·Rⱼ(x)`, i.e. `s·(α ⊕ eⱼ) = 0` for `α ∈ supp(Rⱼ)`.
#[derive(Debug)]
pub(crate) struct SymmetryDetector {
    nvars: usize,
    /// Row space of the parity constraints, kept in reduced row-echelon
    /// form (each pivot bit appears in exactly one row).
    rows: Vec<u64>,
    /// Pivot bit of each row (same order as `rows`).
    pivots: Vec<u32>,
}

impl SymmetryDetector {
    pub(crate) fn new(nvars: usize) -> Self {
        SymmetryDetector {
            nvars,
            rows: Vec::new(),
            pivots: Vec::new(),
        }
    }

    fn add_row(&mut self, mut r: u64) {
        if self.nvars > 64 {
            return; // Symmetry detection disabled beyond mask width.
        }
        for (row, &p) in self.rows.iter().zip(&self.pivots) {
            if (r >> p) & 1 == 1 {
                r ^= row;
            }
        }
        if r == 0 {
            return;
        }
        let p = r.trailing_zeros();
        // Keep reduced form: clear the new pivot bit from existing rows.
        for row in &mut self.rows {
            if (*row >> p) & 1 == 1 {
                *row ^= r;
            }
        }
        self.rows.push(r);
        self.pivots.push(p);
    }

    /// `q∘τ_s = q` for every admissible flip: one row per support monomial.
    pub(crate) fn require_invariant(&mut self, q: &Polynomial) {
        for (m, c) in q.terms() {
            if c != 0.0 {
                self.add_row(parity_mask(m));
            }
        }
    }

    /// `q∘τ_s = (−1)^{s_var}·q`: the parity of every support monomial must
    /// match the flip of `var`.
    pub(crate) fn require_equivariant(&mut self, q: &Polynomial, var: usize) {
        for (m, c) in q.terms() {
            if c != 0.0 {
                self.add_row(parity_mask(m) ^ (1u64 << var));
            }
        }
    }

    /// Basis of the group of admissible flips: the GF(2) null space of the
    /// collected rows. Deterministic (free columns in ascending order).
    /// Empty when only the identity flip survives — or when `nvars > 64`,
    /// where detection is disabled and "no symmetry" is the sound answer.
    pub(crate) fn generators(&self) -> Vec<u64> {
        if self.nvars > 64 {
            return Vec::new();
        }
        let mut gens = Vec::new();
        for j in 0..self.nvars as u32 {
            if self.pivots.contains(&j) {
                continue;
            }
            let mut v = 1u64 << j;
            for (row, &p) in self.rows.iter().zip(&self.pivots) {
                if (row >> j) & 1 == 1 {
                    v |= 1u64 << p;
                }
            }
            gens.push(v);
        }
        gens
    }
}

/// Signature of a basis monomial under the symmetry generators: bit `k` is
/// the parity `gₖ · (m mod 2)`. The group-averaged Gram is zero across
/// distinct signatures.
pub(crate) fn signature(m: &Monomial, generators: &[u64]) -> u64 {
    let mask = parity_mask(m);
    let mut sig = 0u64;
    for (k, g) in generators.iter().enumerate() {
        if (g & mask).count_ones() % 2 == 1 {
            sig |= 1u64 << k;
        }
    }
    sig
}

/// Partitions basis indices into signature classes, ordered by first
/// occurrence (deterministic; the class of the constant monomial comes
/// first for the usual grlex bases). With no generators this is the single
/// identity class.
pub(crate) fn split_by_signature(basis: &[Monomial], generators: &[u64]) -> Vec<Vec<usize>> {
    if generators.is_empty() {
        return vec![(0..basis.len()).collect()];
    }
    let mut classes: Vec<(u64, Vec<usize>)> = Vec::new();
    for (i, m) in basis.iter().enumerate() {
        let sig = signature(m, generators);
        match classes.iter_mut().find(|(s, _)| *s == sig) {
            Some((_, idxs)) => idxs.push(i),
            None => classes.push((sig, vec![i])),
        }
    }
    classes.into_iter().map(|(_, idxs)| idxs).collect()
}

/// One Gram's view of a joint term-sparsity refinement: its basis, the
/// factor monomials it multiplies into the constraint (`supp(h)` for an
/// S-procedure multiplier appearing as `σ·h`, the single constant monomial
/// for the constraint's own Gram), and its current partition — entering as
/// the sign-symmetry signature classes, leaving as their term-sparsity
/// refinement.
#[derive(Debug)]
pub(crate) struct TsGram<'a> {
    pub basis: &'a [Monomial],
    pub shifts: Vec<Monomial>,
    pub classes: Vec<Vec<usize>>,
}

/// TSSOS-style term-sparsity refinement, run jointly over every Gram of one
/// constraint (the constraint's own Gram plus its multipliers).
///
/// The term-sparsity graph of a Gram puts an edge between basis indices
/// `i, j` iff some factor shift lands their product on a monomial of the
/// current support `B`; blocks are the graph's connected components (the
/// "maximal chordal extension" variant of TSSOS, which keeps the partition
/// disjoint and hence compatible with the block-diagonal Gram layout).
/// `B` starts as the constraint's fixed support plus every Gram's diagonal
/// rows, and is extended each round with the within-block pair products the
/// blocks themselves can realise, until no partition changes — the support-
/// extension fixed point. Partitions only ever coarsen (the support grows
/// monotonically), so termination is immediate.
///
/// Soundness: zeroing cross-block Gram entries restricts the feasible set —
/// any block-feasible solution assembles into a feasible block-diagonal
/// Gram for the original constraint. Like support-driven multiplier bases
/// (and unlike sign-symmetry splitting) the restriction can lose
/// certificates; verdict-agreement tests against the legacy mode guard it.
pub(crate) fn refine_by_term_sparsity(seed: &BTreeSet<Monomial>, grams: &mut [TsGram<'_>]) {
    // B₀ = fixed support ∪ every diagonal row every Gram can produce.
    let mut support: BTreeSet<Monomial> = seed.clone();
    for g in grams.iter() {
        for class in &g.classes {
            for &i in class {
                let sq = g.basis[i].mul(&g.basis[i]);
                for s in &g.shifts {
                    support.insert(sq.mul(s));
                }
            }
        }
    }
    // Start from the finest partition compatible with the signature
    // classes — singletons — then coarsen by components until stable. No
    // explicit cross-class guard is needed: every support monomial is
    // flip-invariant (signature 0), so a mixed-signature pair product can
    // never appear in `support` and blocks from different signature classes
    // never merge.
    for g in grams.iter_mut() {
        g.classes = g
            .classes
            .iter()
            .flat_map(|c| c.iter().map(|&i| vec![i]))
            .collect();
    }
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    loop {
        let mut changed = false;
        for g in grams.iter_mut() {
            // Union-find over the current blocks: merge two blocks when any
            // cross pair of their members lands in the support under some
            // shift.
            let nblocks = g.classes.len();
            let mut parent: Vec<usize> = (0..nblocks).collect();
            for a in 0..nblocks {
                for b in (a + 1)..nblocks {
                    if find(&mut parent, a) == find(&mut parent, b) {
                        continue;
                    }
                    let connected = g.classes[a].iter().any(|&i| {
                        g.classes[b].iter().any(|&j| {
                            let prod = g.basis[i].mul(&g.basis[j]);
                            g.shifts.iter().any(|s| support.contains(&prod.mul(s)))
                        })
                    });
                    if connected {
                        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                        parent[rb.max(ra)] = rb.min(ra);
                    }
                }
            }
            // Reassemble blocks by root, ordered by first occurrence.
            let mut merged: Vec<Vec<usize>> = Vec::new();
            let mut root_to_pos: Vec<Option<usize>> = vec![None; nblocks];
            for k in 0..nblocks {
                let r = find(&mut parent, k);
                let members = std::mem::take(&mut g.classes[k]);
                match root_to_pos[r] {
                    Some(pos) => merged[pos].extend(members),
                    None => {
                        root_to_pos[r] = Some(merged.len());
                        merged.push(members);
                    }
                }
            }
            for c in &mut merged {
                c.sort_unstable();
            }
            if merged.len() != nblocks {
                changed = true;
            }
            g.classes = merged;
        }
        // Extend the support with the pair products the new blocks realise.
        for g in grams.iter() {
            for class in &g.classes {
                for (p, &i) in class.iter().enumerate() {
                    for &j in class.iter().skip(p) {
                        let prod = g.basis[i].mul(&g.basis[j]);
                        for s in &g.shifts {
                            support.insert(prod.mul(s));
                        }
                    }
                }
            }
        }
        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppll_poly::{monomials_up_to, Polynomial};

    fn poly(nvars: usize, terms: &[(&[u32], f64)]) -> Polynomial {
        Polynomial::from_terms(nvars, terms)
    }

    #[test]
    fn even_polynomial_admits_full_flip_group() {
        let mut det = SymmetryDetector::new(2);
        det.require_invariant(&poly(2, &[(&[2, 0], 1.0), (&[0, 4], -2.0), (&[0, 0], 1.0)]));
        let gens = det.generators();
        assert_eq!(gens, vec![0b01, 0b10]);
        // The degree-2 basis splits into 4 signature classes.
        let classes = split_by_signature(&monomials_up_to(2, 2), &gens);
        assert_eq!(classes.len(), 4);
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn odd_term_restricts_the_group() {
        let mut det = SymmetryDetector::new(2);
        // x breaks the x-flip but xy-coupling is absent: only the y-flip
        // survives... x has parity 01 → constraint s·(1,0) = 0 → s₀ = 0.
        det.require_invariant(&poly(2, &[(&[1, 0], 1.0), (&[2, 2], 1.0)]));
        assert_eq!(det.generators(), vec![0b10]);
        // Adding an xy term couples the flips away entirely: s₀ + s₁ = 0
        // with s₀ = 0 forces s = 0.
        det.require_invariant(&poly(2, &[(&[1, 1], 1.0)]));
        assert!(det.generators().is_empty());
    }

    #[test]
    fn derivative_equivariance_preserves_odd_field_symmetry() {
        // ẋ = −x³ is odd: (∂V/∂x)·(−x³) needs s·(α ⊕ e₀) = 0 for α = (3),
        // i.e. s·(0) = 0 — no restriction. The full flip group survives.
        let mut det = SymmetryDetector::new(1);
        det.require_equivariant(&poly(1, &[(&[3], -1.0)]), 0);
        assert_eq!(det.generators(), vec![0b1]);
        // An even field component x² under ∂/∂x breaks it: s·(2 ⊕ 1) ≠ 0.
        det.require_equivariant(&poly(1, &[(&[2], 1.0)]), 0);
        assert!(det.generators().is_empty());
    }

    #[test]
    fn composition_equivariance_rules() {
        // R(x, y) = (−y, x) style coupling: R₀ = y needs s·(e_y ⊕ e_x) = 0,
        // R₁ = x needs the same — the diagonal flip (both together) remains.
        let mut det = SymmetryDetector::new(2);
        det.require_equivariant(&poly(2, &[(&[0, 1], -1.0)]), 0);
        det.require_equivariant(&poly(2, &[(&[1, 0], 1.0)]), 1);
        assert_eq!(det.generators(), vec![0b11]);
    }

    #[test]
    fn nullspace_matches_brute_force() {
        let rows: Vec<u64> = vec![0b0011, 0b0110, 0b1000];
        let mut det = SymmetryDetector::new(4);
        for &r in &rows {
            det.add_row(r);
        }
        let gens = det.generators();
        // Brute force: enumerate all 16 flips, keep those orthogonal to all
        // rows; the span of the generators must be exactly that set.
        let valid: Vec<u64> = (0u64..16)
            .filter(|s| rows.iter().all(|r| (r & s).count_ones() % 2 == 0))
            .collect();
        let mut span = vec![0u64];
        for g in &gens {
            let mut next = span.clone();
            for v in &span {
                next.push(v ^ g);
            }
            span = next;
        }
        span.sort_unstable();
        span.dedup();
        assert_eq!(span, valid);
    }

    #[test]
    fn signature_partition_is_consistent_with_products() {
        // Within-class products are invariant monomials; cross-class
        // products are not — the fact that makes the block split sound.
        let gens = vec![0b01u64, 0b10];
        let basis = monomials_up_to(2, 2);
        let classes = split_by_signature(&basis, &gens);
        for idxs in &classes {
            for &a in idxs {
                for &b in idxs {
                    let prod = basis[a].mul(&basis[b]);
                    assert_eq!(signature(&prod, &gens), 0, "{} * {}", basis[a], basis[b]);
                }
            }
        }
    }

    #[test]
    fn stats_accumulate_and_render() {
        let mut s = ReductionStats::default();
        s.accumulate(&ReductionStats {
            grams: 2,
            basis_before: 10,
            basis_after: 7,
            blocks: 4,
            max_block: 3,
            newton_dropped: 3,
            symmetry_blocks: 2,
            term_sparsity_blocks: 0,
            mult_cache_hits: 1,
        });
        s.accumulate(&ReductionStats {
            grams: 1,
            basis_before: 5,
            basis_after: 5,
            blocks: 1,
            max_block: 5,
            newton_dropped: 0,
            symmetry_blocks: 0,
            term_sparsity_blocks: 2,
            mult_cache_hits: 0,
        });
        assert_eq!(s.grams, 3);
        assert_eq!(s.basis_before, 15);
        assert_eq!(s.basis_after, 12);
        assert_eq!(s.blocks, 5);
        assert_eq!(s.max_block, 5);
        assert_eq!(s.newton_dropped, 3);
        assert_eq!(s.symmetry_blocks, 2);
        assert_eq!(s.term_sparsity_blocks, 2);
        assert_eq!(s.mult_cache_hits, 1);
        assert!(s.is_reduced());
        assert_eq!(s.to_string(), "3 grams, basis 15→12, 5 blocks (max dim 5)");
        assert_eq!(
            s.detail().unwrap(),
            "newton −3 monomials, symmetry +2 blocks, term-sparsity +2 blocks, multiplier-cache 1 hits"
        );
        assert!(ReductionStats::default().detail().is_none());
    }

    #[test]
    fn options_round_trip_json() {
        use cppll_json::{parse, FromJson, ToJson};
        for (n, y) in [(true, true), (true, false), (false, true), (false, false)] {
            for mode in [ReduceMode::Support, ReduceMode::Legacy] {
                for cone in [SosCone::Sos, SosCone::Sdsos, SosCone::Dsos] {
                    let o = ReductionOptions {
                        newton: n,
                        symmetry: y,
                        mode,
                        term_sparsity: n ^ y,
                        cone,
                        trust_infeasible: y,
                    };
                    let back = ReductionOptions::from_json(
                        &parse(&o.to_json().to_compact_string()).unwrap(),
                    )
                    .unwrap();
                    assert_eq!(back, o);
                }
            }
        }
        let s = ReductionStats {
            grams: 1,
            basis_before: 2,
            basis_after: 3,
            blocks: 4,
            max_block: 5,
            newton_dropped: 6,
            symmetry_blocks: 7,
            term_sparsity_blocks: 8,
            mult_cache_hits: 9,
        };
        let back =
            ReductionStats::from_json(&parse(&s.to_json().to_compact_string()).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn legacy_options_without_new_fields_decode() {
        use cppll_json::{parse, FromJson};
        // Journals written before the mode/term-sparsity/cone fields existed
        // carry only the two original flags; they must decode to the legacy
        // behaviour, not fail.
        let v = parse(r#"{"newton":true,"symmetry":true}"#).unwrap();
        let o = ReductionOptions::from_json(&v).unwrap();
        assert_eq!(o.mode, ReduceMode::Legacy);
        assert!(!o.term_sparsity);
        assert_eq!(o.cone, SosCone::Sos);
        let v = parse(r#"{"grams":1,"basis_before":2,"basis_after":2,"blocks":1,"max_block":2}"#)
            .unwrap();
        let s = ReductionStats::from_json(&v).unwrap();
        assert_eq!(s.newton_dropped, 0);
        assert_eq!(s.mult_cache_hits, 0);
    }

    #[test]
    fn mode_and_cone_parse_round_trip() {
        for m in [ReduceMode::Support, ReduceMode::Legacy] {
            assert_eq!(ReduceMode::parse(m.as_str()), Some(m));
        }
        for c in [SosCone::Sos, SosCone::Sdsos, SosCone::Dsos] {
            assert_eq!(SosCone::parse(c.as_str()), Some(c));
        }
        assert_eq!(ReduceMode::parse("full"), None);
        assert_eq!(SosCone::parse("socp"), None);
    }

    fn mono(exps: &[u32]) -> Monomial {
        Monomial::new(exps.to_vec())
    }

    #[test]
    fn term_sparsity_splits_disconnected_supports() {
        // Target support {x⁴, y⁴, 1} over basis {1, x, y, x², xy, y²}: the
        // term-sparsity graph connects 1↔x² (product x² ∉ B... product is
        // x², not in B₀ = {x⁴, y⁴, 1} ∪ squares {1, x², y², x⁴, x²y², y⁴} —
        // x² IS a diagonal square, so 1↔x is connected via product x... no:
        // edge (1, x) iff 1·x = x ∈ B — absent. Edge (1, x²): product
        // x² ∈ B (diagonal square of x) — connected. Edge (x, y): xy ∉ B.
        // Components: {1, x², y²} (via x⁴? edge (x², 1) yes; edge (y², 1)
        // via y² ∈ B yes), {x}, {xy}, {y}.
        let basis = monomials_up_to(2, 2);
        let seed: BTreeSet<Monomial> = [mono(&[4, 0]), mono(&[0, 4]), mono(&[0, 0])]
            .into_iter()
            .collect();
        let mut grams = [TsGram {
            basis: &basis,
            shifts: vec![mono(&[0, 0])],
            classes: vec![(0..basis.len()).collect()],
        }];
        refine_by_term_sparsity(&seed, &mut grams);
        let classes = &grams[0].classes;
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, basis.len(), "partition must cover the basis");
        assert!(
            classes.len() > 1,
            "disconnected support must split: {classes:?}"
        );
        // Every pair inside a block must be reachable; x and y stay apart
        // from the even component.
        let idx_of = |m: &Monomial| basis.iter().position(|b| b == m).unwrap();
        let class_of = |i: usize| classes.iter().position(|c| c.contains(&i)).unwrap();
        assert_ne!(class_of(idx_of(&mono(&[1, 0]))), class_of(idx_of(&mono(&[0, 0]))));
        assert_eq!(class_of(idx_of(&mono(&[2, 0]))), class_of(idx_of(&mono(&[0, 0]))));
    }

    #[test]
    fn term_sparsity_iterates_to_coarser_fixed_point() {
        // Support extension can merge blocks that the first round left
        // apart: with support {x², xy} over basis {1, x, y}, round one joins
        // 1↔x (product x... x ∉ B₀ = {x², xy} ∪ {1, x², y²}) — recompute:
        // edges: (1,x): x ∉ B. (1,y): y ∉ B. (x,y): xy ∈ B ✓. So blocks
        // {x,y}, {1}. Extension adds y² ... already there; adds x², xy, y².
        // No new edges to 1 — stable. Sanity: the refinement is a valid
        // partition and the connected pair stays together.
        let basis = monomials_up_to(2, 1);
        let seed: BTreeSet<Monomial> = [mono(&[2, 0]), mono(&[1, 1])].into_iter().collect();
        let mut grams = [TsGram {
            basis: &basis,
            shifts: vec![mono(&[0, 0])],
            classes: vec![(0..basis.len()).collect()],
        }];
        refine_by_term_sparsity(&seed, &mut grams);
        let classes = &grams[0].classes;
        let idx_of = |m: &Monomial| basis.iter().position(|b| b == m).unwrap();
        let class_of = |i: usize| classes.iter().position(|c| c.contains(&i)).unwrap();
        assert_eq!(class_of(idx_of(&mono(&[1, 0]))), class_of(idx_of(&mono(&[0, 1]))));
        assert_ne!(class_of(idx_of(&mono(&[0, 0]))), class_of(idx_of(&mono(&[1, 0]))));
    }

    #[test]
    fn term_sparsity_respects_signature_classes() {
        // Even support, so the flip group splits {1, x², y²} / {x} / {y} /
        // {xy}; term sparsity must refine *within* those classes only.
        let basis = monomials_up_to(2, 2);
        let gens = vec![0b01u64, 0b10];
        let sym = split_by_signature(&basis, &gens);
        let seed: BTreeSet<Monomial> = [mono(&[0, 0]), mono(&[4, 0]), mono(&[0, 4])]
            .into_iter()
            .collect();
        let mut grams = [TsGram {
            basis: &basis,
            shifts: vec![mono(&[0, 0])],
            classes: sym.clone(),
        }];
        refine_by_term_sparsity(&seed, &mut grams);
        for c in &grams[0].classes {
            let sig0 = signature(&basis[c[0]], &gens);
            for &i in c {
                assert_eq!(signature(&basis[i], &gens), sig0, "cross-class merge");
            }
        }
    }
}
