//! Problem-size reduction between SOS program construction and SDP
//! emission: Newton-polytope basis pruning (see [`cppll_poly::prune_gram_basis`])
//! and sign-symmetry block-diagonalisation of Gram matrices.
//!
//! # Sign symmetries
//!
//! A sign symmetry is a variable-flip map `τ_s : xᵢ ↦ (−1)^{sᵢ} xᵢ`
//! (`s ∈ GF(2)ⁿ`) under which **every** datum of the program is invariant
//! (or, for derivative/composition operators, suitably equivariant — see
//! the per-term rules in `SymmetryDetector`). From any feasible solution a
//! flipped solution can be built (`V ↦ V∘τ_s`, Gram `Q ↦ DQD` with
//! `D = diag((−1)^{s·m})`, scalars unchanged), and the group average of all
//! flipped solutions is again feasible (the constraints are affine in the
//! decisions and the PSD cone is convex) with the same objective value
//! (`tr(DQD) = tr(Q)`). The averaged Gram commutes with every `D`, so its
//! entry `Q_{ab}` vanishes whenever the *signatures* `s ↦ s·(a mod 2)` of
//! basis monomials `a, b` differ on some group generator. Partitioning each
//! Gram basis by signature therefore splits one monolithic PSD block into
//! independent smaller blocks **without changing feasibility in either
//! direction** — exactly the shape the per-block parallel factorisations of
//! the SDP solver are best at.
//!
//! The group of valid flips is computed as the GF(2) null space of parity
//! constraints harvested from all known polynomial data; `u64` bit masks
//! make the Gaussian elimination a few dozen XORs for the ≤ 8 variables
//! this pipeline sees.

use cppll_poly::{Monomial, Polynomial};

/// Which reductions [`SosProgram::solve`](crate::SosProgram::solve) applies
/// before handing the SDP to the solver. Both are on by default; the CLI
/// exposes `--no-reduce` as the escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionOptions {
    /// Newton-polytope + diagonal-consistency pruning of automatically
    /// chosen constraint Gram bases. (Explicit bases passed via
    /// `require_sos_with_basis` are honoured verbatim, and multiplier Grams
    /// are free decision polynomials, to which the Newton argument does not
    /// apply — neither is ever pruned.)
    pub newton: bool,
    /// Sign-symmetry block-diagonalisation of every Gram block (constraint
    /// Grams and multipliers alike).
    pub symmetry: bool,
}

impl Default for ReductionOptions {
    fn default() -> Self {
        ReductionOptions {
            newton: true,
            symmetry: true,
        }
    }
}

impl ReductionOptions {
    /// Reduction fully disabled: compile exactly the SDP the program text
    /// describes (bit-identical to the pre-reduction pipeline).
    pub fn none() -> Self {
        ReductionOptions {
            newton: false,
            symmetry: false,
        }
    }

    /// `true` when any reduction is enabled.
    pub fn is_active(&self) -> bool {
        self.newton || self.symmetry
    }
}

impl cppll_json::ToJson for ReductionOptions {
    fn to_json(&self) -> cppll_json::Value {
        cppll_json::ObjectBuilder::new()
            .field("newton", self.newton)
            .field("symmetry", self.symmetry)
            .build()
    }
}

impl cppll_json::FromJson for ReductionOptions {
    fn from_json(v: &cppll_json::Value) -> Result<Self, cppll_json::DecodeError> {
        use cppll_json::decode;
        Ok(ReductionOptions {
            newton: decode::required(v, "newton")?,
            symmetry: decode::required(v, "symmetry")?,
        })
    }
}

/// What the reduction achieved, accumulated over every Gram block of every
/// compiled program (and, via the ledger, over every solve of a pipeline
/// run). `basis_after < basis_before` and `blocks > grams` are the two ways
/// an SDP shrinks; both are reported rather than asserted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Gram blocks considered (multipliers + SOS constraints).
    pub grams: usize,
    /// Total basis monomials before pruning.
    pub basis_before: usize,
    /// Total basis monomials after pruning (= sum of all block dimensions).
    pub basis_after: usize,
    /// PSD blocks emitted (≥ `grams`; larger when symmetry splits).
    pub blocks: usize,
    /// Largest emitted block dimension.
    pub max_block: usize,
}

impl ReductionStats {
    /// Accumulates another compile's stats (sums; `max_block` maxes).
    pub fn accumulate(&mut self, other: &ReductionStats) {
        self.grams += other.grams;
        self.basis_before += other.basis_before;
        self.basis_after += other.basis_after;
        self.blocks += other.blocks;
        self.max_block = self.max_block.max(other.max_block);
    }

    /// Did reduction shrink anything at all?
    pub fn is_reduced(&self) -> bool {
        self.basis_after < self.basis_before || self.blocks > self.grams
    }
}

impl std::fmt::Display for ReductionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} grams, basis {}→{}, {} blocks (max dim {})",
            self.grams, self.basis_before, self.basis_after, self.blocks, self.max_block
        )
    }
}

impl cppll_json::ToJson for ReductionStats {
    fn to_json(&self) -> cppll_json::Value {
        cppll_json::ObjectBuilder::new()
            .field("grams", self.grams)
            .field("basis_before", self.basis_before)
            .field("basis_after", self.basis_after)
            .field("blocks", self.blocks)
            .field("max_block", self.max_block)
            .build()
    }
}

impl cppll_json::FromJson for ReductionStats {
    fn from_json(v: &cppll_json::Value) -> Result<Self, cppll_json::DecodeError> {
        use cppll_json::decode;
        Ok(ReductionStats {
            grams: decode::required(v, "grams")?,
            basis_before: decode::required(v, "basis_before")?,
            basis_after: decode::required(v, "basis_after")?,
            blocks: decode::required(v, "blocks")?,
            max_block: decode::required(v, "max_block")?,
        })
    }
}

/// Bit mask of the odd-exponent variables of a monomial: the quantity a
/// sign flip `τ_s` sees (`τ_s(x^α) = (−1)^{s·α} x^α`).
pub(crate) fn parity_mask(m: &Monomial) -> u64 {
    let mut mask = 0u64;
    for (i, &e) in m.exps().iter().enumerate() {
        if e % 2 == 1 {
            mask |= 1u64 << i;
        }
    }
    mask
}

/// Collects GF(2) parity constraints on candidate sign flips `s` and
/// solves for the group of flips satisfying all of them.
///
/// Per-term rules (τ = τ_s, ε_i = (−1)^{s_i}):
///
/// * known polynomial `q` appearing multiplicatively (constants, scalar
///   coefficients, multiplier factors, plain `V·q`): need `q∘τ = q`, i.e.
///   `s·α = 0` for every `α ∈ supp(q)` — [`SymmetryDetector::require_invariant`];
/// * `(∂V/∂xᵢ)·q`: the derivative picks up `εᵢ`, so `q` must satisfy
///   `q∘τ = εᵢ·q`, i.e. `s·(α ⊕ eᵢ) = 0` —
///   [`SymmetryDetector::require_equivariant`] with `var = i`;
/// * `V(R(x))·q`: need `q` invariant and each component equivariant,
///   `Rⱼ(τx) = εⱼ·Rⱼ(x)`, i.e. `s·(α ⊕ eⱼ) = 0` for `α ∈ supp(Rⱼ)`.
#[derive(Debug)]
pub(crate) struct SymmetryDetector {
    nvars: usize,
    /// Row space of the parity constraints, kept in reduced row-echelon
    /// form (each pivot bit appears in exactly one row).
    rows: Vec<u64>,
    /// Pivot bit of each row (same order as `rows`).
    pivots: Vec<u32>,
}

impl SymmetryDetector {
    pub(crate) fn new(nvars: usize) -> Self {
        SymmetryDetector {
            nvars,
            rows: Vec::new(),
            pivots: Vec::new(),
        }
    }

    fn add_row(&mut self, mut r: u64) {
        if self.nvars > 64 {
            return; // Symmetry detection disabled beyond mask width.
        }
        for (row, &p) in self.rows.iter().zip(&self.pivots) {
            if (r >> p) & 1 == 1 {
                r ^= row;
            }
        }
        if r == 0 {
            return;
        }
        let p = r.trailing_zeros();
        // Keep reduced form: clear the new pivot bit from existing rows.
        for row in &mut self.rows {
            if (*row >> p) & 1 == 1 {
                *row ^= r;
            }
        }
        self.rows.push(r);
        self.pivots.push(p);
    }

    /// `q∘τ_s = q` for every admissible flip: one row per support monomial.
    pub(crate) fn require_invariant(&mut self, q: &Polynomial) {
        for (m, c) in q.terms() {
            if c != 0.0 {
                self.add_row(parity_mask(m));
            }
        }
    }

    /// `q∘τ_s = (−1)^{s_var}·q`: the parity of every support monomial must
    /// match the flip of `var`.
    pub(crate) fn require_equivariant(&mut self, q: &Polynomial, var: usize) {
        for (m, c) in q.terms() {
            if c != 0.0 {
                self.add_row(parity_mask(m) ^ (1u64 << var));
            }
        }
    }

    /// Basis of the group of admissible flips: the GF(2) null space of the
    /// collected rows. Deterministic (free columns in ascending order).
    /// Empty when only the identity flip survives — or when `nvars > 64`,
    /// where detection is disabled and "no symmetry" is the sound answer.
    pub(crate) fn generators(&self) -> Vec<u64> {
        if self.nvars > 64 {
            return Vec::new();
        }
        let mut gens = Vec::new();
        for j in 0..self.nvars as u32 {
            if self.pivots.contains(&j) {
                continue;
            }
            let mut v = 1u64 << j;
            for (row, &p) in self.rows.iter().zip(&self.pivots) {
                if (row >> j) & 1 == 1 {
                    v |= 1u64 << p;
                }
            }
            gens.push(v);
        }
        gens
    }
}

/// Signature of a basis monomial under the symmetry generators: bit `k` is
/// the parity `gₖ · (m mod 2)`. The group-averaged Gram is zero across
/// distinct signatures.
pub(crate) fn signature(m: &Monomial, generators: &[u64]) -> u64 {
    let mask = parity_mask(m);
    let mut sig = 0u64;
    for (k, g) in generators.iter().enumerate() {
        if (g & mask).count_ones() % 2 == 1 {
            sig |= 1u64 << k;
        }
    }
    sig
}

/// Partitions basis indices into signature classes, ordered by first
/// occurrence (deterministic; the class of the constant monomial comes
/// first for the usual grlex bases). With no generators this is the single
/// identity class.
pub(crate) fn split_by_signature(basis: &[Monomial], generators: &[u64]) -> Vec<Vec<usize>> {
    if generators.is_empty() {
        return vec![(0..basis.len()).collect()];
    }
    let mut classes: Vec<(u64, Vec<usize>)> = Vec::new();
    for (i, m) in basis.iter().enumerate() {
        let sig = signature(m, generators);
        match classes.iter_mut().find(|(s, _)| *s == sig) {
            Some((_, idxs)) => idxs.push(i),
            None => classes.push((sig, vec![i])),
        }
    }
    classes.into_iter().map(|(_, idxs)| idxs).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppll_poly::{monomials_up_to, Polynomial};

    fn poly(nvars: usize, terms: &[(&[u32], f64)]) -> Polynomial {
        Polynomial::from_terms(nvars, terms)
    }

    #[test]
    fn even_polynomial_admits_full_flip_group() {
        let mut det = SymmetryDetector::new(2);
        det.require_invariant(&poly(2, &[(&[2, 0], 1.0), (&[0, 4], -2.0), (&[0, 0], 1.0)]));
        let gens = det.generators();
        assert_eq!(gens, vec![0b01, 0b10]);
        // The degree-2 basis splits into 4 signature classes.
        let classes = split_by_signature(&monomials_up_to(2, 2), &gens);
        assert_eq!(classes.len(), 4);
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn odd_term_restricts_the_group() {
        let mut det = SymmetryDetector::new(2);
        // x breaks the x-flip but xy-coupling is absent: only the y-flip
        // survives... x has parity 01 → constraint s·(1,0) = 0 → s₀ = 0.
        det.require_invariant(&poly(2, &[(&[1, 0], 1.0), (&[2, 2], 1.0)]));
        assert_eq!(det.generators(), vec![0b10]);
        // Adding an xy term couples the flips away entirely: s₀ + s₁ = 0
        // with s₀ = 0 forces s = 0.
        det.require_invariant(&poly(2, &[(&[1, 1], 1.0)]));
        assert!(det.generators().is_empty());
    }

    #[test]
    fn derivative_equivariance_preserves_odd_field_symmetry() {
        // ẋ = −x³ is odd: (∂V/∂x)·(−x³) needs s·(α ⊕ e₀) = 0 for α = (3),
        // i.e. s·(0) = 0 — no restriction. The full flip group survives.
        let mut det = SymmetryDetector::new(1);
        det.require_equivariant(&poly(1, &[(&[3], -1.0)]), 0);
        assert_eq!(det.generators(), vec![0b1]);
        // An even field component x² under ∂/∂x breaks it: s·(2 ⊕ 1) ≠ 0.
        det.require_equivariant(&poly(1, &[(&[2], 1.0)]), 0);
        assert!(det.generators().is_empty());
    }

    #[test]
    fn composition_equivariance_rules() {
        // R(x, y) = (−y, x) style coupling: R₀ = y needs s·(e_y ⊕ e_x) = 0,
        // R₁ = x needs the same — the diagonal flip (both together) remains.
        let mut det = SymmetryDetector::new(2);
        det.require_equivariant(&poly(2, &[(&[0, 1], -1.0)]), 0);
        det.require_equivariant(&poly(2, &[(&[1, 0], 1.0)]), 1);
        assert_eq!(det.generators(), vec![0b11]);
    }

    #[test]
    fn nullspace_matches_brute_force() {
        let rows: Vec<u64> = vec![0b0011, 0b0110, 0b1000];
        let mut det = SymmetryDetector::new(4);
        for &r in &rows {
            det.add_row(r);
        }
        let gens = det.generators();
        // Brute force: enumerate all 16 flips, keep those orthogonal to all
        // rows; the span of the generators must be exactly that set.
        let valid: Vec<u64> = (0u64..16)
            .filter(|s| rows.iter().all(|r| (r & s).count_ones() % 2 == 0))
            .collect();
        let mut span = vec![0u64];
        for g in &gens {
            let mut next = span.clone();
            for v in &span {
                next.push(v ^ g);
            }
            span = next;
        }
        span.sort_unstable();
        span.dedup();
        assert_eq!(span, valid);
    }

    #[test]
    fn signature_partition_is_consistent_with_products() {
        // Within-class products are invariant monomials; cross-class
        // products are not — the fact that makes the block split sound.
        let gens = vec![0b01u64, 0b10];
        let basis = monomials_up_to(2, 2);
        let classes = split_by_signature(&basis, &gens);
        for idxs in &classes {
            for &a in idxs {
                for &b in idxs {
                    let prod = basis[a].mul(&basis[b]);
                    assert_eq!(signature(&prod, &gens), 0, "{} * {}", basis[a], basis[b]);
                }
            }
        }
    }

    #[test]
    fn stats_accumulate_and_render() {
        let mut s = ReductionStats::default();
        s.accumulate(&ReductionStats {
            grams: 2,
            basis_before: 10,
            basis_after: 7,
            blocks: 4,
            max_block: 3,
        });
        s.accumulate(&ReductionStats {
            grams: 1,
            basis_before: 5,
            basis_after: 5,
            blocks: 1,
            max_block: 5,
        });
        assert_eq!(s.grams, 3);
        assert_eq!(s.basis_before, 15);
        assert_eq!(s.basis_after, 12);
        assert_eq!(s.blocks, 5);
        assert_eq!(s.max_block, 5);
        assert!(s.is_reduced());
        assert_eq!(s.to_string(), "3 grams, basis 15→12, 5 blocks (max dim 5)");
    }

    #[test]
    fn options_round_trip_json() {
        use cppll_json::{parse, FromJson, ToJson};
        for (n, y) in [(true, true), (true, false), (false, true), (false, false)] {
            let o = ReductionOptions {
                newton: n,
                symmetry: y,
            };
            let back =
                ReductionOptions::from_json(&parse(&o.to_json().to_compact_string()).unwrap())
                    .unwrap();
            assert_eq!(back, o);
        }
        let s = ReductionStats {
            grams: 1,
            basis_before: 2,
            basis_after: 3,
            blocks: 4,
            max_block: 5,
        };
        let back =
            ReductionStats::from_json(&parse(&s.to_json().to_compact_string()).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
