//! The solve supervisor: retry policies, budgets, attempt records, and the
//! shared ledger.
//!
//! Every [`SosProgram::solve`](crate::SosProgram::solve) call is supervised:
//! when the SDP terminates with a *retryable* status
//! ([`SdpStatus::is_retryable`]) and the [`RetryPolicy`] allows it, the
//! program is recompiled and re-solved with escalated regularisation, a
//! rescaled trace weight, and a deterministically jittered step fraction.
//! Infeasibility verdicts are never retried — they are answers, not
//! failures.
//!
//! Determinism is a design constraint: the attempt log of a supervised
//! solve contains only quantities derived from the problem, the options,
//! and the (seeded) jitter — no wall-clock readings. Two runs with the same
//! seed and the same fault schedule produce byte-identical logs. Backoff is
//! therefore *planned* (recorded in milliseconds) and only actually slept
//! when [`RetryPolicy::sleep`] is set, which production callers may want
//! and tests never do.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cppll_sdp::{FaultInjector, SdpStatus, SolveTimings};
use cppll_trace::Tracer;

use crate::reduce::ReductionStats;

/// How (and whether) failed solves are retried.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries allowed beyond the first attempt (0 = never retry).
    pub max_retries: usize,
    /// Factor applied to both Schur and free-variable regularisation per
    /// retry (the classic escape hatch for stalled interior-point runs).
    pub regularization_escalation: f64,
    /// Factor applied to the Gram trace weight per retry, floored at
    /// `1e-9`; rescaling the objective changes the problem's conditioning
    /// without changing its feasible set.
    pub trace_rescale: f64,
    /// Planned backoff before the first retry, in milliseconds.
    pub backoff_base_ms: u64,
    /// Multiplier on the planned backoff per further retry.
    pub backoff_factor: f64,
    /// Seed for the deterministic step-fraction jitter.
    pub jitter_seed: u64,
    /// Actually sleep the planned backoff between attempts. Defaults to on
    /// for production builds and off under `cfg(test)`, so unit tests stay
    /// fast while deployed pipelines get real backpressure. The sleep is
    /// always clamped to the remaining pipeline deadline — planned backoff
    /// is counted against the budget, never allowed to overrun it.
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            regularization_escalation: 100.0,
            trace_rescale: 1e-3,
            backoff_base_ms: 10,
            backoff_factor: 2.0,
            jitter_seed: 0x5eed_cafe,
            sleep: cfg!(not(test)),
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_retries` retries with the default escalation.
    pub fn with_retries(max_retries: usize) -> Self {
        RetryPolicy {
            max_retries,
            ..Default::default()
        }
    }

    /// The planned backoff before retry number `retry` (1-based), in ms.
    pub fn planned_backoff_ms(&self, retry: usize) -> u64 {
        if retry == 0 {
            return 0;
        }
        let scaled = self.backoff_base_ms as f64 * self.backoff_factor.powi(retry as i32 - 1);
        scaled.min(60_000.0) as u64
    }

    /// Deterministic step fraction for `attempt` (0-based): the base value
    /// on the first attempt, then a jittered value in `[0.90, 0.98]`.
    pub fn jittered_step_fraction(&self, base: f64, attempt: usize) -> f64 {
        if attempt == 0 {
            return base;
        }
        let r = splitmix64(self.jitter_seed ^ attempt as u64) as f64 / u64::MAX as f64;
        0.90 + 0.08 * r
    }
}

/// One stage of splitmix64 — a tiny, well-distributed PRNG that keeps the
/// jitter deterministic without a `rand` dependency.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What one attempt of a supervised solve did. Contains only deterministic
/// fields — no wall-clock — so attempt logs are reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// Attempt number, 0-based.
    pub attempt: usize,
    /// Status the SDP solver reported.
    pub status: SdpStatus,
    /// Interior-point iterations performed.
    pub iterations: usize,
    /// Final relative primal infeasibility.
    pub primal_infeasibility: f64,
    /// Final relative dual infeasibility.
    pub dual_infeasibility: f64,
    /// Final relative duality gap.
    pub gap: f64,
    /// Trace weight the attempt compiled with.
    pub trace_weight: f64,
    /// Schur regularisation the attempt solved with.
    pub schur_regularization: f64,
    /// Step fraction the attempt solved with.
    pub step_fraction: f64,
    /// Backoff planned after this attempt (0 on success or final failure).
    pub planned_backoff_ms: u64,
}

impl AttemptRecord {
    /// Canonical single-line rendering, used for the ledger log and the
    /// determinism tests (byte-identical across runs with equal seeds and
    /// fault schedules).
    pub fn log_line(&self) -> String {
        format!(
            "attempt={} status={} iters={} pinf={:.6e} dinf={:.6e} gap={:.6e} tw={:.3e} reg={:.3e} step={:.6} backoff_ms={}",
            self.attempt,
            self.status,
            self.iterations,
            self.primal_infeasibility,
            self.dual_infeasibility,
            self.gap,
            self.trace_weight,
            self.schur_regularization,
            self.step_fraction,
            self.planned_backoff_ms
        )
    }
}

/// Budgets, retry policy, and hooks for supervised solving. The default is
/// a no-op: one attempt, no timeouts, no faults — exactly the unsupervised
/// behaviour.
#[derive(Debug, Clone, Default)]
pub struct ResilienceOptions {
    /// Retry policy.
    pub retry: RetryPolicy,
    /// Per-attempt wall-clock budget (cooperative, checked once per
    /// interior-point iteration).
    pub solve_timeout: Option<Duration>,
    /// Absolute deadline for the whole pipeline; attempts never run past
    /// it. When both this and `solve_timeout` are set, the earlier instant
    /// wins.
    pub deadline: Option<Instant>,
    /// Override of the SDP iteration limit for supervised solves.
    pub iteration_budget: Option<usize>,
    /// Fault injector forwarded to the SDP solver (testing hook). The
    /// supervisor reports the attempt number to it before each attempt.
    pub fault: Option<Arc<FaultInjector>>,
    /// Shared ledger collecting attempt statistics across solves.
    pub ledger: Option<SolveLedger>,
    /// Optional trace sink: the supervisor wraps each supervised solve in
    /// an `sos_solve` span with one `attempt` span per attempt, counts
    /// `retry` / `warm_start_hit`, emits `backoff` instants with the
    /// deadline-clamped sleep, and forwards the tracer to the SDP solver.
    pub tracer: Option<Tracer>,
}

impl ResilienceOptions {
    /// The effective deadline for an attempt starting now.
    pub(crate) fn attempt_deadline(&self) -> Option<Instant> {
        match (
            self.solve_timeout.map(|t| Instant::now() + t),
            self.deadline,
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Aggregate statistics from a [`SolveLedger`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Supervised solves recorded.
    pub solves: usize,
    /// Total attempts across all solves.
    pub attempts: usize,
    /// Attempts beyond the first, across all solves.
    pub retries: usize,
    /// Solves that exhausted their attempts without reaching an answer
    /// (numerical failures; infeasibility verdicts are answers and do not
    /// count).
    pub failures: usize,
}

impl std::fmt::Display for LedgerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} solves, {} attempts ({} retries), {} failed",
            self.solves, self.attempts, self.retries, self.failures
        )
    }
}

impl cppll_json::ToJson for LedgerStats {
    fn to_json(&self) -> cppll_json::Value {
        cppll_json::ObjectBuilder::new()
            .field("solves", self.solves)
            .field("attempts", self.attempts)
            .field("retries", self.retries)
            .field("failures", self.failures)
            .build()
    }
}

impl cppll_json::FromJson for LedgerStats {
    fn from_json(v: &cppll_json::Value) -> Result<Self, cppll_json::DecodeError> {
        use cppll_json::decode;
        Ok(LedgerStats {
            solves: decode::required(v, "solves")?,
            attempts: decode::required(v, "attempts")?,
            retries: decode::required(v, "retries")?,
            failures: decode::required(v, "failures")?,
        })
    }
}

#[derive(Debug, Default)]
struct LedgerInner {
    stats: LedgerStats,
    lines: Vec<String>,
    /// Per-stage wall-clock totals summed over every recorded attempt.
    /// Kept apart from `lines`/`stats`: timings are diagnostic and must
    /// never leak into the deterministic attempt log.
    timings: SolveTimings,
    /// What compilation-time problem reduction achieved, summed over every
    /// compiled attempt.
    reduction: ReductionStats,
    /// Trusted-probe fallbacks where the legacy compile *confirmed* the
    /// reduced compile's non-answer (infeasible, or failed the same way).
    trust_confirmed: usize,
    /// Trusted-probe fallbacks where the legacy compile *overturned* the
    /// reduced compile's failure by reaching feasibility.
    trust_overturned: usize,
}

/// Cheaply cloneable, thread-safe collector of attempt records. One ledger
/// is typically shared across every solve of a pipeline run; the
/// verification report then carries its statistics.
#[derive(Debug, Clone, Default)]
pub struct SolveLedger(Arc<Mutex<LedgerInner>>);

impl SolveLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one supervised solve's attempt history.
    pub fn record(&self, attempts: &[AttemptRecord], succeeded: bool) {
        let mut inner = self.0.lock().expect("ledger lock");
        inner.stats.solves += 1;
        inner.stats.attempts += attempts.len();
        inner.stats.retries += attempts.len().saturating_sub(1);
        if !succeeded {
            inner.stats.failures += 1;
        }
        let solve_index = inner.stats.solves - 1;
        for a in attempts {
            let line = format!("solve={} {}", solve_index, a.log_line());
            inner.lines.push(line);
        }
    }

    /// Accumulates one solve attempt's per-stage wall-clock breakdown.
    /// Deliberately separate from [`SolveLedger::record`]: attempt records
    /// are deterministic, timings are not.
    pub fn add_timings(&self, t: &SolveTimings) {
        self.0.lock().expect("ledger lock").timings.accumulate(t);
    }

    /// Per-stage wall-clock totals across every attempt recorded so far.
    pub fn timings(&self) -> SolveTimings {
        self.0.lock().expect("ledger lock").timings
    }

    /// Accumulates one compiled attempt's problem-reduction statistics.
    pub fn add_reduction(&self, r: &ReductionStats) {
        self.0.lock().expect("ledger lock").reduction.accumulate(r);
    }

    /// Problem-reduction totals across every compiled attempt so far.
    pub fn reduction(&self) -> ReductionStats {
        self.0.lock().expect("ledger lock").reduction
    }

    /// Records the outcome of one trusted-probe legacy fallback:
    /// `overturned` when the legacy compile reached feasibility after the
    /// reduced compile had failed on the same probe.
    pub fn record_trust_fallback(&self, overturned: bool) {
        let mut inner = self.0.lock().expect("ledger lock");
        if overturned {
            inner.trust_overturned += 1;
        } else {
            inner.trust_confirmed += 1;
        }
    }

    /// `(confirmed, overturned)` tallies of trusted-probe legacy fallbacks
    /// recorded so far. Supervisors use this to stop paying for legacy
    /// fallbacks on models where the reduced compile's failures have only
    /// ever been confirmed.
    pub fn trust_fallback_tally(&self) -> (usize, usize) {
        let inner = self.0.lock().expect("ledger lock");
        (inner.trust_confirmed, inner.trust_overturned)
    }

    /// Merges a previous run's cumulative statistics, timings and reduction
    /// totals into this ledger, so a resumed pipeline reports the *total*
    /// work done across crash boundaries rather than only the post-resume
    /// tail. Called once by checkpoint replay, before any post-resume solve
    /// runs.
    pub fn absorb_prior(
        &self,
        stats: &LedgerStats,
        timings: &SolveTimings,
        reduction: &ReductionStats,
    ) {
        let mut inner = self.0.lock().expect("ledger lock");
        inner.stats.solves += stats.solves;
        inner.stats.attempts += stats.attempts;
        inner.stats.retries += stats.retries;
        inner.stats.failures += stats.failures;
        inner.timings.accumulate(timings);
        inner.reduction.accumulate(reduction);
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> LedgerStats {
        self.0.lock().expect("ledger lock").stats
    }

    /// The full attempt log, one canonical line per attempt.
    pub fn log_lines(&self) -> Vec<String> {
        self.0.lock().expect("ledger lock").lines.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_never_retries() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.planned_backoff_ms(0), 0);
        // Under cfg(test) the default policy never sleeps its backoff.
        assert!(!p.sleep);
    }

    #[test]
    fn ledger_accumulates_timings_separately_from_log() {
        let ledger = SolveLedger::new();
        let t = SolveTimings {
            schur_assembly: 0.25,
            kkt_factor: 0.5,
            total: 1.0,
            ..Default::default()
        };
        ledger.add_timings(&t);
        ledger.add_timings(&t);
        let got = ledger.timings();
        assert_eq!(got.schur_assembly, 0.5);
        assert_eq!(got.kkt_factor, 1.0);
        assert_eq!(got.total, 2.0);
        // Timings never touch the deterministic attempt log.
        assert!(ledger.log_lines().is_empty());
        assert_eq!(ledger.stats(), LedgerStats::default());
    }

    #[test]
    fn backoff_grows_geometrically_and_saturates() {
        let p = RetryPolicy::with_retries(3);
        assert_eq!(p.planned_backoff_ms(1), 10);
        assert_eq!(p.planned_backoff_ms(2), 20);
        assert_eq!(p.planned_backoff_ms(3), 40);
        let mut huge = RetryPolicy::with_retries(64);
        huge.backoff_base_ms = 1000;
        assert_eq!(huge.planned_backoff_ms(60), 60_000);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::with_retries(5);
        assert_eq!(p.jittered_step_fraction(0.95, 0), 0.95);
        for attempt in 1..6 {
            let a = p.jittered_step_fraction(0.95, attempt);
            let b = p.jittered_step_fraction(0.95, attempt);
            assert_eq!(a, b);
            assert!((0.90..=0.98).contains(&a), "{a}");
        }
        let mut other = RetryPolicy::with_retries(5);
        other.jitter_seed ^= 1;
        assert_ne!(
            p.jittered_step_fraction(0.95, 1),
            other.jittered_step_fraction(0.95, 1)
        );
    }

    #[test]
    fn ledger_aggregates_attempts() {
        let ledger = SolveLedger::new();
        let rec = |attempt| AttemptRecord {
            attempt,
            status: SdpStatus::Stalled,
            iterations: 1,
            primal_infeasibility: 0.5,
            dual_infeasibility: 0.5,
            gap: 1.0,
            trace_weight: 1.0,
            schur_regularization: 1e-11,
            step_fraction: 0.95,
            planned_backoff_ms: 0,
        };
        ledger.record(&[rec(0), rec(1)], true);
        ledger.record(&[rec(0)], false);
        let s = ledger.stats();
        assert_eq!(s.solves, 2);
        assert_eq!(s.attempts, 3);
        assert_eq!(s.retries, 1);
        assert_eq!(s.failures, 1);
        assert_eq!(ledger.log_lines().len(), 3);
        assert!(ledger.log_lines()[0].starts_with("solve=0 attempt=0"));
        assert!(ledger.log_lines()[2].starts_with("solve=1 attempt=0"));
    }

    #[test]
    fn absorb_prior_merges_counts_and_timings() {
        let ledger = SolveLedger::new();
        let prior = LedgerStats {
            solves: 3,
            attempts: 5,
            retries: 2,
            failures: 1,
        };
        let pt = SolveTimings {
            total: 2.5,
            kkt_solve: 1.0,
            ..Default::default()
        };
        ledger.absorb_prior(&prior, &pt, &ReductionStats::default());
        let rec = AttemptRecord {
            attempt: 0,
            status: SdpStatus::Optimal,
            iterations: 1,
            primal_infeasibility: 0.0,
            dual_infeasibility: 0.0,
            gap: 0.0,
            trace_weight: 1.0,
            schur_regularization: 1e-11,
            step_fraction: 0.95,
            planned_backoff_ms: 0,
        };
        ledger.record(&[rec], true);
        let s = ledger.stats();
        assert_eq!(s.solves, 4);
        assert_eq!(s.attempts, 6);
        assert_eq!(s.retries, 2);
        assert_eq!(s.failures, 1);
        assert_eq!(ledger.timings().total, 2.5);
        // Post-resume log lines continue the solve numbering.
        assert!(ledger.log_lines()[0].starts_with("solve=3 "));
    }

    #[test]
    fn ledger_stats_round_trip_json() {
        use cppll_json::{parse, FromJson, ToJson};
        let s = LedgerStats {
            solves: 7,
            attempts: 9,
            retries: 2,
            failures: 1,
        };
        let back =
            LedgerStats::from_json(&parse(&s.to_json().to_compact_string()).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn log_line_is_stable() {
        let rec = AttemptRecord {
            attempt: 1,
            status: SdpStatus::MaxIterations,
            iterations: 42,
            primal_infeasibility: 1.25e-3,
            dual_infeasibility: 2.5e-4,
            gap: 0.125,
            trace_weight: 1e-3,
            schur_regularization: 1e-9,
            step_fraction: 0.9375,
            planned_backoff_ms: 20,
        };
        assert_eq!(
            rec.log_line(),
            "attempt=1 status=iteration limit reached iters=42 pinf=1.250000e-3 \
             dinf=2.500000e-4 gap=1.250000e-1 tw=1.000e-3 reg=1.000e-9 step=0.937500 backoff_ms=20"
        );
    }
}
