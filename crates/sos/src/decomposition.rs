//! Extraction of explicit `Σ qᵢ²` decompositions from Gram matrices.

use cppll_linalg::Matrix;
use cppll_poly::{Monomial, Polynomial};

use crate::program::gram_to_poly;

/// An explicit sum-of-squares decomposition `p(x) ≈ Σᵢ qᵢ(x)²`.
///
/// Obtained from a PSD Gram matrix `Q` over a monomial basis `z` via the
/// eigendecomposition `Q = Σ λᵢ vᵢ vᵢᵀ`: each square is
/// `qᵢ = √λᵢ · (vᵢᵀ z)` (eigenvalues below a small floor are dropped).
///
/// Because the Gram matrix comes from a floating-point interior-point solve,
/// the decomposition is approximate; [`SosDecomposition::residual`] reports
/// how well `Σ qᵢ²` reconstructs a target polynomial, which is the
/// *a-posteriori* soundness check used throughout the verification pipeline.
#[derive(Debug, Clone)]
pub struct SosDecomposition {
    squares: Vec<Polynomial>,
    reconstruction: Polynomial,
}

impl SosDecomposition {
    /// Builds the decomposition from a Gram matrix over `basis`.
    ///
    /// # Panics
    ///
    /// Panics if `gram` is not square of dimension `basis.len()`.
    pub fn from_gram(basis: &[Monomial], gram: &Matrix) -> Self {
        assert_eq!(gram.nrows(), basis.len(), "gram/basis size mismatch");
        assert!(gram.is_square(), "gram matrix must be square");
        let nvars = basis.first().map_or(0, Monomial::nvars);
        let eig = gram.symmetric_eigen();
        let floor = 1e-12 * eig.max_eigenvalue().abs().max(1.0);
        let mut squares = Vec::new();
        for (i, &l) in eig.eigenvalues().iter().enumerate() {
            if l <= floor {
                continue;
            }
            let v = eig.eigenvectors().col(i);
            let mut q = Polynomial::zero(nvars);
            let s = l.sqrt();
            for (k, m) in basis.iter().enumerate() {
                q.add_term(m.clone(), s * v[k]);
            }
            squares.push(q.prune(1e-12));
        }
        let reconstruction = gram_to_poly(basis, gram);
        SosDecomposition {
            squares,
            reconstruction,
        }
    }

    /// Builds the decomposition of a block-diagonal Gram matrix given as
    /// `(sub-basis, block)` pairs — the form sign-symmetry reduction
    /// produces. Equivalent to [`SosDecomposition::from_gram`] on the
    /// assembled matrix (the blocks are its invariant subspaces), but each
    /// eigendecomposition is on the small block.
    ///
    /// # Panics
    ///
    /// Panics if any block is not square of its sub-basis dimension.
    pub fn from_blocks(nvars: usize, blocks: &[(Vec<Monomial>, Matrix)]) -> Self {
        let mut squares = Vec::new();
        let mut reconstruction = Polynomial::zero(nvars);
        for (basis, gram) in blocks {
            if basis.is_empty() {
                continue;
            }
            let dec = SosDecomposition::from_gram(basis, gram);
            squares.extend(dec.squares);
            reconstruction = &reconstruction + &dec.reconstruction;
        }
        SosDecomposition {
            squares,
            reconstruction,
        }
    }

    /// The square roots `qᵢ`.
    pub fn squares(&self) -> &[Polynomial] {
        &self.squares
    }

    /// The polynomial `z(x)ᵀ Q z(x)` represented by the Gram matrix.
    pub fn reconstruction(&self) -> &Polynomial {
        &self.reconstruction
    }

    /// `Σᵢ qᵢ²` recomputed from the extracted squares.
    pub fn sum_of_squares(&self) -> Polynomial {
        let nvars = self.reconstruction.nvars();
        let mut acc = Polynomial::zero(nvars);
        for q in &self.squares {
            acc = &acc + &(q * q);
        }
        acc
    }

    /// Maximum absolute coefficient difference between `Σ qᵢ²` and `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` lives over a different number of variables.
    pub fn residual(&self, target: &Polynomial) -> f64 {
        (&self.sum_of_squares() - target).max_abs_coefficient()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppll_poly::monomials_up_to;

    #[test]
    fn identity_gram_gives_basis_squares() {
        let basis = monomials_up_to(2, 1); // 1, y, x (grlex)
        let gram = Matrix::identity(3);
        let dec = SosDecomposition::from_gram(&basis, &gram);
        assert_eq!(dec.squares().len(), 3);
        // Σ q² = 1 + x² + y².
        let target = Polynomial::from_terms(2, &[(&[0, 0], 1.0), (&[2, 0], 1.0), (&[0, 2], 1.0)]);
        assert!(dec.residual(&target) < 1e-12);
    }

    #[test]
    fn rank_one_gram() {
        // Q = vvᵀ with v = (1, -1) over basis (x, y): p = (x − y)².
        let basis = vec![Monomial::var(2, 0), Monomial::var(2, 1)];
        let gram = Matrix::from_rows(&[&[1.0, -1.0], &[-1.0, 1.0]]);
        let dec = SosDecomposition::from_gram(&basis, &gram);
        assert_eq!(dec.squares().len(), 1);
        let target = Polynomial::from_terms(2, &[(&[2, 0], 1.0), (&[1, 1], -2.0), (&[0, 2], 1.0)]);
        assert!(dec.residual(&target) < 1e-12);
    }
}
