//! Property-based tests pinning the cache-blocked kernels to their naive
//! reference implementations.
//!
//! The blocked matmul / Cholesky / LDLᵀ are *designed* to apply the same
//! sequence of floating-point operations per entry as the references (only
//! the memory access pattern changes), so these tests assert bit-identity —
//! strictly stronger than the 1e-12 agreement the acceptance criteria ask
//! for. Sizes are drawn across tile boundaries (the matmul panel is 32
//! columns, the factorisation panels 48), deliberately including
//! non-multiples.

use cppll_linalg::{Cholesky, Ldlt, Matrix};
use proptest::prelude::*;

/// Largest dimension exercised; crosses the 48-column factorisation panel.
const NMAX: usize = 72;

fn data_pool(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, len)
}

/// An n×n SPD matrix `B Bᵀ + n·I` built from the front of a data pool.
fn spd_from(pool: &[f64], n: usize) -> Matrix {
    let b = Matrix::from_col_major(n, n, pool[..n * n].to_vec());
    let mut a = b.matmul(&b.transpose());
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// A symmetric quasidefinite matrix: SPD leading block coupled to a negative
/// diagonal tail — the shape of the solver's KKT systems.
fn quasidefinite_from(pool: &[f64], n: usize) -> Matrix {
    let mut a = Matrix::from_col_major(n, n, pool[..n * n].to_vec());
    a.symmetrize();
    let split = n.div_ceil(2);
    for i in 0..n {
        if i < split {
            a[(i, i)] += n as f64;
        } else {
            a[(i, i)] = -(a[(i, i)].abs() + 1e-6);
        }
    }
    a
}

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.nrows() == b.nrows()
        && a.ncols() == b.ncols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_matches_naive(pool_a in data_pool(NMAX * NMAX),
                                    pool_b in data_pool(NMAX * NMAX),
                                    m in 1usize..NMAX,
                                    k in 1usize..NMAX,
                                    n in 1usize..NMAX) {
        let a = Matrix::from_col_major(m, k, pool_a[..m * k].to_vec());
        let b = Matrix::from_col_major(k, n, pool_b[..k * n].to_vec());
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        prop_assert!(max_abs_diff(&blocked, &naive) <= 1e-12,
                     "blocked matmul drifted for {m}x{k} * {k}x{n}");
        prop_assert!(bits_equal(&blocked, &naive),
                     "blocked matmul not bit-identical for {m}x{k} * {k}x{n}");
    }

    #[test]
    fn matmul_into_reuses_workspace(pool_a in data_pool(NMAX * NMAX),
                                    pool_b in data_pool(NMAX * NMAX),
                                    m in 1usize..40,
                                    k in 1usize..40,
                                    n in 1usize..40) {
        let a = Matrix::from_col_major(m, k, pool_a[..m * k].to_vec());
        let b = Matrix::from_col_major(k, n, pool_b[..k * n].to_vec());
        // Pre-soil the workspace: matmul_into must fully overwrite it.
        let mut out = Matrix::from_col_major(m, n, vec![f64::NAN; m * n]);
        a.matmul_into(&b, &mut out);
        prop_assert!(bits_equal(&out, &a.matmul(&b)));
    }

    #[test]
    fn blocked_cholesky_matches_unblocked(pool in data_pool(NMAX * NMAX),
                                          n in 1usize..NMAX) {
        let a = spd_from(&pool, n);
        let blocked = Cholesky::new(&a).unwrap();
        let reference = Cholesky::new_unblocked(&a).unwrap();
        prop_assert!(max_abs_diff(blocked.l(), reference.l()) <= 1e-12,
                     "blocked cholesky drifted at n={n}");
        prop_assert!(bits_equal(blocked.l(), reference.l()),
                     "blocked cholesky not bit-identical at n={n}");
    }

    #[test]
    fn blocked_cholesky_rejects_like_unblocked(pool in data_pool(NMAX * NMAX),
                                               n in 2usize..NMAX) {
        // Make the matrix indefinite by flipping a diagonal entry; both
        // kernels must fail at the same pivot.
        let mut a = spd_from(&pool, n);
        let bad = n / 2;
        a[(bad, bad)] = -1.0;
        let e1 = format!("{:?}", Cholesky::new(&a).unwrap_err());
        let e2 = format!("{:?}", Cholesky::new_unblocked(&a).unwrap_err());
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn blocked_ldlt_matches_reference(pool in data_pool(NMAX * NMAX),
                                      rhs in data_pool(NMAX),
                                      n in 1usize..NMAX) {
        let a = quasidefinite_from(&pool, n);
        let blocked = Ldlt::new(&a, 1e-12).unwrap();
        let reference = Ldlt::new_reference(&a, 1e-12).unwrap();
        prop_assert_eq!(blocked.regularised_pivots(), reference.regularised_pivots());
        prop_assert_eq!(blocked.inertia(), reference.inertia());
        let x1 = blocked.solve(&rhs[..n]);
        let x2 = reference.solve(&rhs[..n]);
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!(u.to_bits() == v.to_bits(),
                         "ldlt solve not bit-identical at n={n}: {u} vs {v}");
        }
    }

    #[test]
    fn parallel_packed_ldlt_bit_identical_across_threads(
        pool in data_pool(NMAX * NMAX),
        rhs in data_pool(NMAX),
        n in 1usize..NMAX,
    ) {
        // The packed parallel kernel must equal both the serial blocked
        // kernel and the left-looking reference bit for bit at every thread
        // count — dims deliberately cross the 48-column panel boundary.
        let a = quasidefinite_from(&pool, n);
        let reference = Ldlt::new_reference(&a, 1e-12).unwrap();
        let serial = Ldlt::new(&a, 1e-12).unwrap();
        let xr = reference.solve(&rhs[..n]);
        prop_assert_eq!(serial.inertia(), reference.inertia());
        for threads in [1usize, 2, 4, 8] {
            let par = Ldlt::new_parallel(&a, 1e-12, threads).unwrap();
            prop_assert_eq!(par.regularised_pivots(), reference.regularised_pivots());
            prop_assert_eq!(par.inertia(), reference.inertia());
            let xp = par.solve(&rhs[..n]);
            for (u, v) in xp.iter().zip(&xr) {
                prop_assert!(u.to_bits() == v.to_bits(),
                    "parallel ldlt solve not bit-identical at n={n}, {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_packed_ldlt_exploits_block_sparsity(
        pool in data_pool(NMAX * NMAX),
        rhs in data_pool(NMAX),
        nb in 1usize..10,
        blocks in 2usize..5,
        tail in 1usize..8,
    ) {
        // Block-diagonal quasidefinite KKT shape (independent SOS identities
        // plus a free-variable tail): the zero-multiplier skip must leave
        // results identical to the reference while the factor stays sparse.
        let n = nb * blocks + tail;
        let mut a = Matrix::zeros(n, n);
        for b in 0..blocks {
            let lo = b * nb;
            for r in 0..nb {
                for c in 0..nb {
                    a[(lo + r, lo + c)] = pool[(b * nb * nb + r * nb + c) % pool.len()];
                }
            }
        }
        a.symmetrize();
        for i in 0..n {
            if i < nb * blocks {
                a[(i, i)] += n as f64;
            } else {
                // Arrowhead coupling of the tail to every block.
                for j in 0..nb * blocks {
                    let v = pool[(i * 31 + j) % pool.len()];
                    a[(i, j)] = v;
                    a[(j, i)] = v;
                }
                a[(i, i)] = -(1.0 + (i as f64) / 8.0);
            }
        }
        let reference = Ldlt::new_reference(&a, 1e-12).unwrap();
        let xr = reference.solve(&rhs[..n]);
        for threads in [1usize, 4] {
            let par = Ldlt::new_parallel(&a, 1e-12, threads).unwrap();
            prop_assert_eq!(par.inertia(), reference.inertia());
            let xp = par.solve(&rhs[..n]);
            for (u, v) in xp.iter().zip(&xr) {
                prop_assert!(u.to_bits() == v.to_bits(),
                    "block-sparse ldlt solve differs at n={n}, {threads} threads");
            }
        }
        // Cross-block entries of L are exactly zero, so the packed factor
        // stores far fewer than the dense strictly-lower count.
        let dense_lower = n * (n - 1) / 2;
        let sparse_bound = blocks * nb * (nb - 1) / 2 + tail * (n - 1);
        let got = Ldlt::new(&a, 1e-12).unwrap().lower_nonzeros();
        prop_assert!(got <= sparse_bound.min(dense_lower) + tail * tail,
            "factor denser than block structure allows: {got}");
    }

    #[test]
    fn blocked_ldlt_regularises_like_reference(pool in data_pool(NMAX * NMAX),
                                               n in 2usize..32) {
        // Rank-deficient input forces the static-regularisation path.
        let b = Matrix::from_col_major(n, 1, pool[..n].to_vec());
        let mut a = b.matmul(&b.transpose()); // rank 1
        a[(0, 0)] += 1.0;
        let blocked = Ldlt::new(&a, 1e-10).unwrap();
        let reference = Ldlt::new_reference(&a, 1e-10).unwrap();
        prop_assert_eq!(blocked.regularised_pivots(), reference.regularised_pivots());
        prop_assert!(blocked.regularised_pivots() >= n.saturating_sub(2));
    }
}
