//! Property-based tests for the dense factorisations.

use cppll_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a random well-conditioned SPD matrix `A = B Bᵀ + n·I`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let b = Matrix::from_col_major(n, n, data);
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    })
}

/// Strategy: a random nonsingular-ish square matrix `A = B + 3n·I`.
fn diag_dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut a = Matrix::from_col_major(n, n, data);
        for i in 0..n {
            a[(i, i)] += 3.0 * n as f64;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_residual_small(a in diag_dominant_matrix(6),
                               b in prop::collection::vec(-10.0f64..10.0, 6)) {
        let x = a.lu().unwrap().solve(&b);
        let r = a.matvec(&x);
        for (u, v) in r.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_reconstructs(a in spd_matrix(5)) {
        let l = a.cholesky().unwrap().l().clone();
        let rec = l.matmul(&l.transpose());
        prop_assert!(rec.sub(&a).norm() < 1e-9 * a.norm().max(1.0));
    }

    #[test]
    fn ldlt_solves_spd(a in spd_matrix(5),
                       b in prop::collection::vec(-10.0f64..10.0, 5)) {
        let x = a.ldlt(0.0).unwrap().solve(&b);
        let r = a.matvec(&x);
        for (u, v) in r.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn eigen_reconstructs_and_is_orthonormal(a in spd_matrix(5)) {
        let e = a.symmetric_eigen();
        let v = e.eigenvectors();
        let lam = Matrix::from_diag(e.eigenvalues());
        let rec = v.matmul(&lam).matmul(&v.transpose());
        prop_assert!(rec.sub(&a).norm() < 1e-8 * a.norm().max(1.0));
        let vtv = v.transpose().matmul(v);
        prop_assert!(vtv.sub(&Matrix::identity(5)).norm() < 1e-10);
        // SPD ⇒ all eigenvalues positive.
        prop_assert!(e.min_eigenvalue() > 0.0);
    }

    #[test]
    fn eigenvalues_sorted_ascending(a in spd_matrix(6)) {
        let e = a.symmetric_eigen();
        for w in e.eigenvalues().windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn det_product_rule(a in diag_dominant_matrix(4), b in diag_dominant_matrix(4)) {
        let da = a.lu().unwrap().det();
        let db = b.lu().unwrap().det();
        let dab = a.matmul(&b).lu().unwrap().det();
        prop_assert!((dab - da * db).abs() < 1e-6 * dab.abs().max(1.0));
    }

    #[test]
    fn trace_equals_eigenvalue_sum(a in spd_matrix(5)) {
        let e = a.symmetric_eigen();
        let s: f64 = e.eigenvalues().iter().sum();
        prop_assert!((s - a.trace()).abs() < 1e-9 * a.trace().abs().max(1.0));
    }
}
