//! LDLᵀ factorisation for symmetric (quasidefinite) KKT systems.

use crate::{FactorError, Matrix};

/// LDLᵀ factorisation `A = L D Lᵀ` with unit lower-triangular `L` and
/// diagonal `D`, using 1×1 pivots and *static regularisation*.
///
/// The interior-point method produces symmetric quasidefinite KKT systems of
/// the form `[[M, B], [Bᵀ, -δI]]` with `M ⪰ 0`. Such matrices admit an LDLᵀ
/// factorisation without pivoting; near-zero pivots (possible in the limit of
/// the central path) are nudged by `reg` with the sign they were drifting
/// towards, which is the standard static-regularisation safeguard.
///
/// # Examples
///
/// ```
/// use cppll_linalg::Matrix;
///
/// // A saddle-point system.
/// let a = Matrix::from_rows(&[&[2.0, 0.0, 1.0],
///                             &[0.0, 2.0, 1.0],
///                             &[1.0, 1.0, 0.0]]);
/// let f = a.ldlt(1e-12).expect("factorable");
/// let x = f.solve(&[1.0, 1.0, 1.0]);
/// let r = a.matvec(&x);
/// assert!((r[0] - 1.0).abs() < 1e-8);
/// ```
#[derive(Debug, Clone)]
pub struct Ldlt {
    /// Packed unit-lower L (strictly below diagonal) with D on the diagonal.
    ld: Matrix,
    /// Number of pivots that required regularisation.
    regularised: usize,
}

impl Ldlt {
    /// Factors a symmetric matrix; only the lower triangle is read.
    ///
    /// `reg` is the magnitude used to replace pivots whose absolute value
    /// falls below `reg` (zero disables regularisation — then a vanishing
    /// pivot produces [`FactorError::Singular`]).
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::DimensionMismatch`] for non-square input, and
    /// [`FactorError::Singular`] when a pivot vanishes and `reg == 0`.
    pub fn new(a: &Matrix, reg: f64) -> Result<Self, FactorError> {
        if !a.is_square() {
            return Err(FactorError::DimensionMismatch {
                context: "ldlt requires a square matrix",
            });
        }
        let n = a.nrows();
        let mut ld = Matrix::zeros(n, n);
        // Copy lower triangle.
        for c in 0..n {
            for r in c..n {
                ld[(r, c)] = a[(r, c)];
            }
        }
        // Blocked right-looking factorisation. The reference kernel
        // ([`Ldlt::new_reference`]) subtracts `(l_ik · l_jk) · d_k` terms in
        // ascending k; this version applies the very same sequence of
        // floating-point operations per entry (panels in order, columns
        // within a panel in order, identical association), so pivots — and
        // therefore the regularisation decisions — are bit-identical. The
        // win is purely cache behaviour: the m×m KKT matrix is updated
        // through contiguous column slices instead of strided row walks.
        const NB: usize = 48;
        let mut regularised = 0;
        for j0 in (0..n).step_by(NB) {
            let j1 = (j0 + NB).min(n);
            // Factor panel columns j0..j1, right-looking within the panel.
            for j in j0..j1 {
                let mut d = ld[(j, j)];
                if d.abs() < reg {
                    regularised += 1;
                    d = if d >= 0.0 { reg } else { -reg };
                }
                if d == 0.0 {
                    return Err(FactorError::Singular { pivot: j });
                }
                ld[(j, j)] = d;
                {
                    let col = ld.col_mut(j);
                    for v in &mut col[(j + 1)..n] {
                        *v /= d;
                    }
                }
                // Apply column j's rank-1 update (weighted by d) to the rest
                // of the panel.
                let dat = ld.as_mut_slice();
                for c in (j + 1)..j1 {
                    let (head, tail) = dat.split_at_mut(c * n);
                    let lj = &head[j * n..j * n + n];
                    let ljc = lj[c];
                    let cc = &mut tail[..n];
                    for i in c..n {
                        cc[i] -= lj[i] * ljc * d;
                    }
                }
            }
            // Trailing update with the whole panel while it is hot in cache.
            let dat = ld.as_mut_slice();
            for c in j1..n {
                let (head, tail) = dat.split_at_mut(c * n);
                let cc = &mut tail[..n];
                for k in j0..j1 {
                    let lk = &head[k * n..k * n + n];
                    let lkc = lk[c];
                    let dk = lk[k];
                    for i in c..n {
                        cc[i] -= lk[i] * lkc * dk;
                    }
                }
            }
        }
        Ok(Ldlt { ld, regularised })
    }

    /// Reference (unblocked, left-looking) factorisation — the kernel the
    /// blocked [`Ldlt::new`] is validated against in tests. Produces
    /// bit-identical factors and regularisation counts.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ldlt::new`].
    pub fn new_reference(a: &Matrix, reg: f64) -> Result<Self, FactorError> {
        if !a.is_square() {
            return Err(FactorError::DimensionMismatch {
                context: "ldlt requires a square matrix",
            });
        }
        let n = a.nrows();
        let mut ld = Matrix::zeros(n, n);
        for c in 0..n {
            for r in c..n {
                ld[(r, c)] = a[(r, c)];
            }
        }
        let mut regularised = 0;
        for j in 0..n {
            // d_j = a_jj - Σ_k L_jk² d_k
            let mut d = ld[(j, j)];
            for k in 0..j {
                let l = ld[(j, k)];
                d -= l * l * ld[(k, k)];
            }
            if d.abs() < reg {
                regularised += 1;
                d = if d >= 0.0 { reg } else { -reg };
            }
            if d == 0.0 {
                return Err(FactorError::Singular { pivot: j });
            }
            ld[(j, j)] = d;
            for i in (j + 1)..n {
                let mut v = ld[(i, j)];
                for k in 0..j {
                    v -= ld[(i, k)] * ld[(j, k)] * ld[(k, k)];
                }
                ld[(i, j)] = v / d;
            }
        }
        Ok(Ldlt { ld, regularised })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.ld.nrows()
    }

    /// Number of pivots that hit the regularisation floor.
    pub fn regularised_pivots(&self) -> usize {
        self.regularised
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
        let mut x = b.to_vec();
        // L y = b (unit diagonal)
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.ld[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // D z = y
        for i in 0..n {
            x[i] /= self.ld[(i, i)];
        }
        // Lᵀ x = z
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.ld[(j, i)] * x[j];
            }
            x[i] = acc;
        }
        x
    }

    /// Inertia `(n_pos, n_neg)` of the factored matrix — the counts of
    /// positive and negative pivots (Sylvester's law of inertia).
    pub fn inertia(&self) -> (usize, usize) {
        let mut pos = 0;
        let mut neg = 0;
        for i in 0..self.dim() {
            if self.ld[(i, i)] > 0.0 {
                pos += 1;
            } else {
                neg += 1;
            }
        }
        (pos, neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_spd_matches_cholesky() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let b = [1.0, -1.0];
        let x1 = a.ldlt(0.0).unwrap().solve(&b);
        let x2 = a.cholesky().unwrap().solve(&b);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_indefinite_saddle() {
        // KKT-like quasidefinite matrix.
        let a = Matrix::from_rows(&[
            &[2.0, 0.0, 1.0, 0.0],
            &[0.0, 3.0, 0.0, 1.0],
            &[1.0, 0.0, -1e-8, 0.0],
            &[0.0, 1.0, 0.0, -1e-8],
        ]);
        let f = a.ldlt(1e-14).unwrap();
        let (pos, neg) = f.inertia();
        assert_eq!((pos, neg), (2, 2));
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = f.solve(&b);
        let r = a.matvec(&x);
        for (u, v) in r.iter().zip(&b) {
            assert!((u - v).abs() < 1e-6, "residual too large: {u} vs {v}");
        }
    }

    #[test]
    fn regularisation_counts_pivots() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]); // rank 1
        let f = a.ldlt(1e-10).unwrap();
        assert_eq!(f.regularised_pivots(), 1);
    }

    #[test]
    fn zero_reg_singular_errors() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(matches!(a.ldlt(0.0), Err(FactorError::Singular { .. })));
    }
}
