//! LDLᵀ factorisation for symmetric (quasidefinite) KKT systems.

use crate::{FactorError, Matrix};

/// LDLᵀ factorisation `A = L D Lᵀ` with unit lower-triangular `L` and
/// diagonal `D`, using 1×1 pivots and *static regularisation*.
///
/// The interior-point method produces symmetric quasidefinite KKT systems of
/// the form `[[M, B], [Bᵀ, -δI]]` with `M ⪰ 0`. Such matrices admit an LDLᵀ
/// factorisation without pivoting; near-zero pivots (possible in the limit of
/// the central path) are nudged by `reg` with the sign they were drifting
/// towards, which is the standard static-regularisation safeguard.
///
/// # Sparsity
///
/// The Schur complement of a multi-identity SOS program is block-diagonal —
/// constraints from different identities never share a Gram block — so the
/// KKT matrix (and, without pivoting, its factor) is mostly structural
/// zeros. Every kernel here skips an update term whenever its *multiplier*
/// `L[c,k]` is exactly zero, which turns the dense-storage factorisation
/// into an effectively sparse one, and the factor keeps a compressed-column
/// map of `L`'s nonzeros so [`Ldlt::solve`] walks only those. All three
/// kernels ([`Ldlt::new`], [`Ldlt::new_parallel`], [`Ldlt::new_reference`])
/// share the same skip rule and the same per-entry operation order, so they
/// are bit-identical to each other by construction — including the signs of
/// zeros — for every input and thread count.
///
/// # Examples
///
/// ```
/// use cppll_linalg::Matrix;
///
/// // A saddle-point system.
/// let a = Matrix::from_rows(&[&[2.0, 0.0, 1.0],
///                             &[0.0, 2.0, 1.0],
///                             &[1.0, 1.0, 0.0]]);
/// let f = a.ldlt(1e-12).expect("factorable");
/// let x = f.solve(&[1.0, 1.0, 1.0]);
/// let r = a.matvec(&x);
/// assert!((r[0] - 1.0).abs() < 1e-8);
/// ```
#[derive(Debug, Clone)]
pub struct Ldlt {
    /// Packed unit-lower L (strictly below diagonal) with D on the diagonal.
    ld: Matrix,
    /// Number of pivots that required regularisation.
    regularised: usize,
    /// Compressed-column structure of the strictly-lower nonzeros of `L`:
    /// `row_idx[col_ptr[j]..col_ptr[j+1]]` are the rows `i > j` with
    /// `L[i,j] != 0`, and `vals` holds the matching entries contiguously.
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    vals: Vec<f64>,
    /// The diagonal of `D`, pulled out for a contiguous divide pass.
    diag: Vec<f64>,
}

/// Panel width of the blocked kernels. The trailing update applies whole
/// panels, so the per-entry update order is "panels ascending, columns
/// within a panel ascending" — the same ascending-`k` order as the
/// unblocked reference.
const NB: usize = 48;

impl Ldlt {
    /// Factors a symmetric matrix; only the lower triangle is read.
    ///
    /// `reg` is the magnitude used to replace pivots whose absolute value
    /// falls below `reg` (zero disables regularisation — then a vanishing
    /// pivot produces [`FactorError::Singular`]).
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::DimensionMismatch`] for non-square input, and
    /// [`FactorError::Singular`] when a pivot vanishes and `reg == 0`.
    pub fn new(a: &Matrix, reg: f64) -> Result<Self, FactorError> {
        Self::factor_blocked(a, reg, 1)
    }

    /// Factors with the packed, parallel trailing update: panel columns are
    /// copied into a contiguous buffer once per panel and the trailing
    /// columns are distributed over `threads` workers (0 = process
    /// default). Each trailing column is updated by exactly one worker with
    /// the same per-entry operation sequence as [`Ldlt::new`], so the
    /// result is bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ldlt::new`].
    pub fn new_parallel(a: &Matrix, reg: f64, threads: usize) -> Result<Self, FactorError> {
        Self::factor_blocked(a, reg, cppll_par::resolve_threads(threads).max(1))
    }

    fn factor_blocked(a: &Matrix, reg: f64, threads: usize) -> Result<Self, FactorError> {
        if !a.is_square() {
            return Err(FactorError::DimensionMismatch {
                context: "ldlt requires a square matrix",
            });
        }
        let n = a.nrows();
        let mut ld = Matrix::zeros(n, n);
        // Copy lower triangle.
        for c in 0..n {
            for r in c..n {
                ld[(r, c)] = a[(r, c)];
            }
        }
        // Blocked right-looking factorisation. The reference kernel
        // ([`Ldlt::new_reference`]) subtracts `(l_ik · l_jk) · d_k` terms in
        // ascending k; this version applies the very same sequence of
        // floating-point operations per entry (panels in order, columns
        // within a panel in order, identical association, identical skip
        // rule), so pivots — and therefore the regularisation decisions —
        // are bit-identical. The wins are cache behaviour (contiguous packed
        // panels instead of strided row walks), the zero-multiplier skip
        // (block-sparse KKT columns never touch foreign identities), and
        // the parallel trailing update.
        let mut regularised = 0;
        // Contiguous copy of the current panel's rows `j1..n` plus its
        // pivots, rebuilt per panel; read-only during the trailing update so
        // trailing columns can be updated in parallel.
        let mut pack = vec![0.0f64; NB * n];
        let mut pivots = [0.0f64; NB];
        for j0 in (0..n).step_by(NB) {
            let j1 = (j0 + NB).min(n);
            // Factor panel columns j0..j1, right-looking within the panel.
            for j in j0..j1 {
                let mut d = ld[(j, j)];
                if d.abs() < reg {
                    regularised += 1;
                    d = if d >= 0.0 { reg } else { -reg };
                }
                if d == 0.0 {
                    return Err(FactorError::Singular { pivot: j });
                }
                ld[(j, j)] = d;
                {
                    let col = ld.col_mut(j);
                    for v in &mut col[(j + 1)..n] {
                        *v /= d;
                    }
                }
                // Apply column j's rank-1 update (weighted by d) to the rest
                // of the panel.
                let dat = ld.as_mut_slice();
                for c in (j + 1)..j1 {
                    let (head, tail) = dat.split_at_mut(c * n);
                    let lj = &head[j * n..j * n + n];
                    let ljc = lj[c];
                    if ljc == 0.0 {
                        continue;
                    }
                    let cc = &mut tail[..n];
                    for i in c..n {
                        cc[i] -= lj[i] * ljc * d;
                    }
                }
            }
            if j1 == n {
                break;
            }
            // Pack the panel's trailing rows (and pivots) contiguously, then
            // update the trailing columns with the whole panel while it is
            // hot in cache. Each trailing column's update sequence is
            // independent of every other's, so the columns fan out across
            // workers without changing a single operation.
            let plen = n - j1;
            for k in j0..j1 {
                let src = ld.col(k);
                pivots[k - j0] = src[k];
                pack[(k - j0) * plen..(k - j0 + 1) * plen].copy_from_slice(&src[j1..n]);
            }
            let pack = &pack[..(j1 - j0) * plen];
            let pivots = &pivots[..j1 - j0];
            let dat = ld.as_mut_slice();
            let tail_cols = &mut dat[j1 * n..];
            cppll_par::parallel_fill_chunks(tail_cols, n, threads, |ci, cc| {
                let c = j1 + ci;
                for k in 0..(j1 - j0) {
                    let lk = &pack[k * plen..(k + 1) * plen];
                    let lkc = lk[c - j1];
                    if lkc == 0.0 {
                        continue;
                    }
                    let dk = pivots[k];
                    for i in c..n {
                        cc[i] -= lk[i - j1] * lkc * dk;
                    }
                }
            });
        }
        Ok(Self::finish(ld, regularised))
    }

    /// Reference (unblocked, left-looking) factorisation — the kernel the
    /// blocked [`Ldlt::new`] and packed-parallel [`Ldlt::new_parallel`] are
    /// validated against in tests. Shares their zero-multiplier skip rule,
    /// so it produces bit-identical factors and regularisation counts for
    /// every input, including adversarial signed zeros.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ldlt::new`].
    pub fn new_reference(a: &Matrix, reg: f64) -> Result<Self, FactorError> {
        if !a.is_square() {
            return Err(FactorError::DimensionMismatch {
                context: "ldlt requires a square matrix",
            });
        }
        let n = a.nrows();
        let mut ld = Matrix::zeros(n, n);
        for c in 0..n {
            for r in c..n {
                ld[(r, c)] = a[(r, c)];
            }
        }
        let mut regularised = 0;
        for j in 0..n {
            // d_j = a_jj - Σ_k L_jk² d_k
            let mut d = ld[(j, j)];
            for k in 0..j {
                let l = ld[(j, k)];
                if l == 0.0 {
                    continue;
                }
                d -= l * l * ld[(k, k)];
            }
            if d.abs() < reg {
                regularised += 1;
                d = if d >= 0.0 { reg } else { -reg };
            }
            if d == 0.0 {
                return Err(FactorError::Singular { pivot: j });
            }
            ld[(j, j)] = d;
            for i in (j + 1)..n {
                let mut v = ld[(i, j)];
                for k in 0..j {
                    let ljk = ld[(j, k)];
                    if ljk == 0.0 {
                        continue;
                    }
                    v -= ld[(i, k)] * ljk * ld[(k, k)];
                }
                ld[(i, j)] = v / d;
            }
        }
        Ok(Self::finish(ld, regularised))
    }

    /// Builds the compressed-column view of the factor's strictly-lower
    /// nonzeros; one O(n²) scan that every subsequent solve amortises.
    fn finish(ld: Matrix, regularised: usize) -> Self {
        let n = ld.nrows();
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        let mut vals = Vec::new();
        let mut diag = Vec::with_capacity(n);
        col_ptr.push(0);
        for j in 0..n {
            let col = ld.col(j);
            diag.push(col[j]);
            for (i, &v) in col.iter().enumerate().take(n).skip(j + 1) {
                if v != 0.0 {
                    row_idx.push(i as u32);
                    vals.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        Ldlt {
            ld,
            regularised,
            col_ptr,
            row_idx,
            vals,
            diag,
        }
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.ld.nrows()
    }

    /// Number of pivots that hit the regularisation floor.
    pub fn regularised_pivots(&self) -> usize {
        self.regularised
    }

    /// Number of stored strictly-lower nonzeros of `L` — the work a solve
    /// actually performs (the dense count is `n(n-1)/2`).
    pub fn lower_nonzeros(&self) -> usize {
        self.vals.len()
    }

    /// Solves `A x = b`, walking only the stored nonzeros of `L`.
    ///
    /// The forward pass is column-oriented: per target entry the
    /// subtractions still happen in ascending column order, so the result is
    /// bit-identical to the textbook row walk; skipped terms have an exactly
    /// zero multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
        let mut x = b.to_vec();
        // L y = b (unit diagonal)
        for j in 0..n {
            let xj = x[j];
            for t in self.col_ptr[j]..self.col_ptr[j + 1] {
                x[self.row_idx[t] as usize] -= self.vals[t] * xj;
            }
        }
        // D z = y
        for (xi, d) in x.iter_mut().zip(&self.diag) {
            *xi /= d;
        }
        // Lᵀ x = z
        for i in (0..n).rev() {
            let mut acc = x[i];
            for t in self.col_ptr[i]..self.col_ptr[i + 1] {
                acc -= self.vals[t] * x[self.row_idx[t] as usize];
            }
            x[i] = acc;
        }
        x
    }

    /// Inertia `(n_pos, n_neg)` of the factored matrix — the counts of
    /// positive and negative pivots (Sylvester's law of inertia).
    pub fn inertia(&self) -> (usize, usize) {
        let mut pos = 0;
        let mut neg = 0;
        for i in 0..self.dim() {
            if self.ld[(i, i)] > 0.0 {
                pos += 1;
            } else {
                neg += 1;
            }
        }
        (pos, neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_spd_matches_cholesky() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let b = [1.0, -1.0];
        let x1 = a.ldlt(0.0).unwrap().solve(&b);
        let x2 = a.cholesky().unwrap().solve(&b);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_indefinite_saddle() {
        // KKT-like quasidefinite matrix.
        let a = Matrix::from_rows(&[
            &[2.0, 0.0, 1.0, 0.0],
            &[0.0, 3.0, 0.0, 1.0],
            &[1.0, 0.0, -1e-8, 0.0],
            &[0.0, 1.0, 0.0, -1e-8],
        ]);
        let f = a.ldlt(1e-14).unwrap();
        let (pos, neg) = f.inertia();
        assert_eq!((pos, neg), (2, 2));
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = f.solve(&b);
        let r = a.matvec(&x);
        for (u, v) in r.iter().zip(&b) {
            assert!((u - v).abs() < 1e-6, "residual too large: {u} vs {v}");
        }
    }

    #[test]
    fn regularisation_counts_pivots() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]); // rank 1
        let f = a.ldlt(1e-10).unwrap();
        assert_eq!(f.regularised_pivots(), 1);
    }

    #[test]
    fn zero_reg_singular_errors() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(matches!(a.ldlt(0.0), Err(FactorError::Singular { .. })));
    }

    #[test]
    fn block_diagonal_factor_stays_sparse() {
        // Two decoupled 3×3 diagonal-dominant blocks: L must keep the
        // off-block zeros, and the solve must still be exact.
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        for blk in 0..2 {
            let o = blk * 3;
            for r in 0..3 {
                for c in 0..3 {
                    a[(o + r, o + c)] = if r == c { 4.0 } else { 1.0 };
                }
            }
        }
        let f = a.ldlt(0.0).unwrap();
        // Dense strict lower would hold 15 entries; two 3×3 blocks hold 6.
        assert_eq!(f.lower_nonzeros(), 6);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = f.solve(&b);
        let r = a.matvec(&x);
        for (u, v) in r.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn parallel_factor_bit_identical_across_threads() {
        // A quasidefinite matrix larger than one panel, with a zero block to
        // exercise the skip rule.
        let n = 97;
        let mut a = Matrix::zeros(n, n);
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for c in 0..n {
            for r in c..n {
                // Decouple rows < 40 from rows >= 40 except through the
                // trailing "free" rows, mimicking the KKT arrowhead.
                let coupled = (r < 40) == (c < 40) || r >= 90;
                if coupled {
                    let v = rnd();
                    a[(r, c)] = v;
                    a[(c, r)] = v;
                }
            }
        }
        for i in 0..90 {
            a[(i, i)] = 8.0 + rnd();
        }
        for i in 90..n {
            a[(i, i)] = -1.0 - rnd().abs();
        }
        let serial = Ldlt::new(&a, 1e-12).unwrap();
        let reference = Ldlt::new_reference(&a, 1e-12).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = Ldlt::new_parallel(&a, 1e-12, threads).unwrap();
            assert_eq!(par.regularised_pivots(), serial.regularised_pivots());
            for c in 0..n {
                for r in c..n {
                    assert_eq!(
                        par.ld[(r, c)].to_bits(),
                        serial.ld[(r, c)].to_bits(),
                        "threads={threads} entry ({r},{c})"
                    );
                    assert_eq!(
                        par.ld[(r, c)].to_bits(),
                        reference.ld[(r, c)].to_bits(),
                        "reference mismatch at ({r},{c})"
                    );
                }
            }
        }
    }
}
