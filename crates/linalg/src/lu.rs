//! LU factorisation with partial (row) pivoting.

use crate::{FactorError, Matrix};

/// LU factorisation `P A = L U` with partial pivoting.
///
/// # Examples
///
/// ```
/// use cppll_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 1.0]]);
/// let lu = a.lu().expect("nonsingular");
/// let x = lu.solve(&[1.0, 4.0]);
/// assert!((x[0] - 1.5).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row moved to position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    perm_sign: f64,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::DimensionMismatch`] for non-square input and
    /// [`FactorError::Singular`] when a pivot vanishes to working precision.
    pub fn new(a: &Matrix) -> Result<Self, FactorError> {
        if !a.is_square() {
            return Err(FactorError::DimensionMismatch {
                context: "lu factorisation requires a square matrix",
            });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = lu.norm_max().max(1.0);
        for k in 0..n {
            // Pivot search in column k.
            let mut piv = k;
            let mut piv_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > piv_val {
                    piv = r;
                    piv_val = v;
                }
            }
            if piv_val <= f64::EPSILON * scale * (n as f64) {
                return Err(FactorError::Singular { pivot: k });
            }
            if piv != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(piv, c)];
                    lu[(piv, c)] = tmp;
                }
                perm.swap(k, piv);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let m = lu[(r, k)] / pivot;
                lu[(r, k)] = m;
                if m != 0.0 {
                    for c in (k + 1)..n {
                        let u = lu[(k, c)];
                        lu[(r, c)] -= m * u;
                    }
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward solve L y = P b (unit diagonal).
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back solve U x = y.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows()` differs from the factored dimension.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "rhs rows must equal matrix dimension");
        let mut out = Matrix::zeros(n, b.ncols());
        for c in 0..b.ncols() {
            let x = self.solve(b.col(c));
            out.col_mut(c).copy_from_slice(&x);
        }
        out
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the factored matrix.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_reconstructs_rhs() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]);
        let b = [5.0, -2.0, 9.0];
        let x = a.lu().unwrap().solve(&b);
        let bx = a.matvec(&x);
        for (u, v) in bx.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn det_matches_known_value() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((a.lu().unwrap().det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.lu().unwrap().inverse();
        let prod = a.matmul(&inv);
        let i = Matrix::identity(2);
        assert!(prod.sub(&i).norm() < 1e-12);
    }

    #[test]
    fn singular_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(FactorError::Singular { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.lu().unwrap().solve(&[3.0, 7.0]);
        assert_eq!(x, vec![7.0, 3.0]);
    }
}
