// Index-based loops over matrix rows/columns mirror the textbook
// formulations of the algorithms and keep row/column symmetry visible.
#![allow(clippy::needless_range_loop)]

//! Dense linear algebra kernels for the `cppll` workspace.
//!
//! The semidefinite-programming solver (`cppll-sdp`) and the sum-of-squares
//! layer (`cppll-sos`) need a small but reliable set of dense kernels:
//!
//! * [`Matrix`] — column-major dense matrices with ring arithmetic,
//! * [`Lu`] — LU factorisation with partial pivoting (general solves),
//! * [`Cholesky`] — positive-definite factorisation (also used as the
//!   definiteness oracle in interior-point line searches),
//! * [`Ldlt`] — symmetric indefinite LDLᵀ with diagonal regularisation for
//!   quasidefinite KKT systems,
//! * [`SymmetricEigen`] — cyclic Jacobi eigendecomposition (certificate
//!   extraction, definiteness diagnostics).
//!
//! Everything is `f64` and allocation-explicit; no BLAS/LAPACK is linked.
//!
//! # Examples
//!
//! ```
//! use cppll_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let chol = a.cholesky().expect("positive definite");
//! let x = chol.solve(&[1.0, 2.0]);
//! // A x = b
//! let b = a.matvec(&x);
//! assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12);
//! ```

mod cholesky;
mod eigen;
mod ldlt;
mod lu;
mod matrix;
pub mod vec_ops;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use ldlt::Ldlt;
pub use lu::Lu;
pub use matrix::Matrix;

/// Error produced when a factorisation cannot be completed.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// The matrix is not positive definite (Cholesky failed at `pivot`).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value found at the failing pivot.
        value: f64,
    },
    /// The matrix is singular to working precision.
    Singular {
        /// Index of the vanishing pivot.
        pivot: usize,
    },
    /// The input dimensions are inconsistent for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
    },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value:e}"
            ),
            FactorError::Singular { pivot } => {
                write!(f, "matrix is singular: pivot {pivot} vanishes")
            }
            FactorError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
        }
    }
}

impl std::error::Error for FactorError {}
