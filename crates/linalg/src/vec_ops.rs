//! Small free functions on `&[f64]` vectors.
//!
//! Kept as free functions (not a newtype) because the SDP solver mixes these
//! with raw index manipulation constantly; a wrapper type added friction
//! without catching real bugs in practice.

/// Dot product `xᵀ y`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "vector lengths must match");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖∞`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// In-place `y += a * x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "vector lengths must match");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// In-place `x *= a`.
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Elementwise difference `x - y`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "vector lengths must match");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Elementwise sum `x + y`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "vector lengths must match");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_identities() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, -5.0, 6.0];
        assert_eq!(dot(&x, &y), 12.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&y), 6.0);
        let mut z = y.to_vec();
        axpy(2.0, &x, &mut z);
        assert_eq!(z, vec![6.0, -1.0, 12.0]);
        assert_eq!(sub(&x, &x), vec![0.0; 3]);
        assert_eq!(add(&x, &x), vec![2.0, 4.0, 6.0]);
    }
}
