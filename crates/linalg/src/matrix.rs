//! Column-major dense matrix type and basic operations.

use crate::{Cholesky, FactorError, Ldlt, Lu, SymmetricEigen};

/// A dense, column-major `f64` matrix.
///
/// This is the single matrix type used throughout the workspace. It favours
/// clarity and predictability over raw speed, but the hot kernels (matrix
/// multiplication, factorisations) are written cache-consciously enough for
/// the Schur complements that arise in the SDP solver (a few thousand rows).
///
/// # Examples
///
/// ```
/// use cppll_linalg::Matrix;
///
/// let i = Matrix::identity(3);
/// let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
/// assert_eq!(a.matmul(&i), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    /// Column-major storage: entry `(r, c)` lives at `data[c * nrows + r]`.
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of shape `nrows × ncols`.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Matrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut m = Matrix::zeros(nrows, ncols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "rows must have equal length");
            for (c, &v) in row.iter().enumerate() {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Creates a matrix of shape `nrows × ncols` from column-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "data length must match shape");
        Matrix { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Borrow of the column-major backing storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the column-major backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of column `c` as a contiguous slice.
    pub fn col(&self, c: usize) -> &[f64] {
        &self.data[c * self.nrows..(c + 1) * self.nrows]
    }

    /// Mutable borrow of column `c` as a contiguous slice.
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        let n = self.nrows;
        &mut self.data[c * n..(c + 1) * n]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.ncols, self.nrows);
        for c in 0..self.ncols {
            for r in 0..self.nrows {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// Cache-blocked over panels of `self`'s columns; bit-identical to
    /// [`Matrix::matmul_naive`] because every output column still
    /// accumulates its `k` terms in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.nrows, rhs.ncols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-provided output buffer (reused
    /// across solver iterations to avoid allocation churn). Overwrites
    /// `out` entirely.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or `out` has the wrong shape.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.ncols, rhs.nrows, "inner dimensions must agree");
        assert_eq!(
            (out.nrows, out.ncols),
            (self.nrows, rhs.ncols),
            "output shape must be lhs.nrows × rhs.ncols"
        );
        out.data.fill(0.0);
        // Panel of self's columns kept hot across every output column:
        // out[:, j] += self[:, k] * rhs[k, j] for k in the panel. Per output
        // column the k-accumulation order is globally ascending (panels are
        // visited in order), so the result matches the naive kernel bit for
        // bit while self is streamed from cache instead of memory.
        const KB: usize = 32;
        let nrows = self.nrows;
        for k0 in (0..self.ncols).step_by(KB) {
            let k1 = (k0 + KB).min(self.ncols);
            for j in 0..rhs.ncols {
                let dst = &mut out.data[j * nrows..(j + 1) * nrows];
                for k in k0..k1 {
                    let scale = rhs[(k, j)];
                    if scale == 0.0 {
                        continue;
                    }
                    let src = &self.data[k * nrows..(k + 1) * nrows];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += scale * s;
                    }
                }
            }
        }
    }

    /// Reference (unblocked) matrix–matrix product — the kernel the blocked
    /// [`Matrix::matmul`] is validated against in tests and benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.ncols, rhs.nrows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.nrows, rhs.ncols);
        // Column-major friendly loop order: out[:, j] += self[:, k] * rhs[k, j].
        for j in 0..rhs.ncols {
            for k in 0..self.ncols {
                let scale = rhs[(k, j)];
                if scale == 0.0 {
                    continue;
                }
                let src = &self.data[k * self.nrows..(k + 1) * self.nrows];
                let dst = &mut out.data[j * self.nrows..(j + 1) * self.nrows];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += scale * s;
                }
            }
        }
        out
    }

    /// Zeroes every entry in place (workspace reuse).
    pub fn set_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Overwrites `self` with `other`'s contents without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "shapes must match"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "vector length must equal ncols");
        let mut out = vec![0.0; self.nrows];
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            let col = self.col(c);
            for (o, &v) in out.iter_mut().zip(col) {
                *o += xc * v;
            }
        }
        out
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.nrows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "vector length must equal nrows");
        let mut out = vec![0.0; self.ncols];
        for (c, o) in out.iter_mut().enumerate() {
            let col = self.col(c);
            let mut acc = 0.0;
            for (&v, &xv) in col.iter().zip(x) {
                acc += v * xv;
            }
            *o = acc;
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.nrows, self.ncols),
            (rhs.nrows, rhs.ncols),
            "shapes must match"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        }
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.nrows, self.ncols),
            (rhs.nrows, rhs.ncols),
            "shapes must match"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        }
    }

    /// Scalar multiple `self * s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// In-place `self += s * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, s: f64, rhs: &Matrix) {
        assert_eq!(
            (self.nrows, self.ncols),
            (rhs.nrows, rhs.ncols),
            "shapes must match"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += s * b;
        }
    }

    /// Frobenius inner product `⟨self, rhs⟩ = Σᵢⱼ selfᵢⱼ rhsᵢⱼ`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn dot(&self, rhs: &Matrix) -> f64 {
        assert_eq!(
            (self.nrows, self.ncols),
            (rhs.nrows, rhs.ncols),
            "shapes must match"
        );
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.nrows).map(|i| self[(i, i)]).sum()
    }

    /// Returns `true` if `|self[(r,c)] - self[(c,r)]| ≤ tol` for all entries.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for c in 0..self.ncols {
            for r in (c + 1)..self.nrows {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Replaces the matrix with its symmetric part `(A + Aᵀ)/2`.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for c in 0..self.ncols {
            for r in (c + 1)..self.nrows {
                let avg = 0.5 * (self[(r, c)] + self[(c, r)]);
                self[(r, c)] = avg;
                self[(c, r)] = avg;
            }
        }
    }

    /// LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Singular`] if a pivot vanishes to working
    /// precision, and [`FactorError::DimensionMismatch`] for non-square input.
    pub fn lu(&self) -> Result<Lu, FactorError> {
        Lu::new(self)
    }

    /// Cholesky factorisation `A = L Lᵀ` of a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::NotPositiveDefinite`] if a pivot is not strictly
    /// positive — this doubles as the definiteness oracle in the SDP solver.
    pub fn cholesky(&self) -> Result<Cholesky, FactorError> {
        Cholesky::new(self)
    }

    /// LDLᵀ factorisation of a symmetric (possibly indefinite) matrix with
    /// diagonal regularisation `reg ≥ 0` applied to near-zero pivots.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::DimensionMismatch`] for non-square input.
    pub fn ldlt(&self, reg: f64) -> Result<Ldlt, FactorError> {
        Ldlt::new(self, reg)
    }

    /// LDLᵀ factorisation with the packed, parallel trailing update
    /// ([`Ldlt::new_parallel`]); bit-identical to [`Matrix::ldlt`] for every
    /// thread count (`threads = 0` uses the process default).
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::DimensionMismatch`] for non-square input.
    pub fn ldlt_parallel(&self, reg: f64, threads: usize) -> Result<Ldlt, FactorError> {
        Ldlt::new_parallel(self, reg, threads)
    }

    /// Symmetric eigendecomposition by the cyclic Jacobi method.
    ///
    /// The input is symmetrized (`(A + Aᵀ)/2`) before iteration.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetric_eigen(&self) -> SymmetricEigen {
        SymmetricEigen::new(self)
    }

    /// Solve `self * x = b` via LU.
    ///
    /// # Errors
    ///
    /// Propagates factorisation errors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, FactorError> {
        Ok(self.lu()?.solve(b))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &self.data[c * self.nrows + r]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &mut self.data[c * self.nrows + r]
    }
}

impl cppll_json::ToJson for Matrix {
    fn to_json(&self) -> cppll_json::Value {
        cppll_json::ObjectBuilder::new()
            .field("nrows", self.nrows)
            .field("ncols", self.ncols)
            .field("data", self.as_slice())
            .build()
    }
}

impl cppll_json::FromJson for Matrix {
    fn from_json(v: &cppll_json::Value) -> Result<Self, cppll_json::DecodeError> {
        use cppll_json::{decode, DecodeError};
        let nrows: usize = decode::required(v, "nrows")?;
        let ncols: usize = decode::required(v, "ncols")?;
        let data: Vec<f64> = decode::required(v, "data")?;
        if data.len() != nrows * ncols {
            return Err(DecodeError::new(format!(
                "data: expected {} entries for a {nrows}x{ncols} matrix, got {}",
                nrows * ncols,
                data.len()
            )));
        }
        Ok(Matrix::from_col_major(nrows, ncols, data))
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.nrows {
            write!(f, "[")?;
            for c in 0..self.ncols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4e}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_is_bit_exact() {
        use cppll_json::{FromJson, ToJson};
        let a = Matrix::from_rows(&[&[1.0, -0.0, 2.5e-17], &[3.0, 4.0, -1e300]]);
        let text = a.to_json().to_compact_string();
        let back = Matrix::from_json(&cppll_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.nrows(), 2);
        assert_eq!(back.ncols(), 3);
        for (x, y) in a.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // NaN serialises as null and must be rejected on decode.
        let mut bad = a.clone();
        bad[(0, 0)] = f64::NAN;
        let bad_text = bad.to_json().to_compact_string();
        assert!(Matrix::from_json(&cppll_json::parse(&bad_text).unwrap()).is_err());
        // Shape mismatch is rejected.
        let torn = cppll_json::parse(r#"{"nrows":2,"ncols":2,"data":[1,2,3]}"#).unwrap();
        assert!(Matrix::from_json(&torn).is_err());
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().nrows(), 3);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = vec![7.0, -1.0];
        let y = a.matvec(&x);
        assert_eq!(y, vec![5.0, 17.0, 29.0]);
        let yt = a.matvec_transposed(&[1.0, 1.0, 1.0]);
        assert_eq!(yt, vec![9.0, 12.0]);
    }

    #[test]
    fn dot_and_norm() {
        let a = Matrix::identity(3);
        assert_eq!(a.dot(&a), 3.0);
        assert!((a.norm() - 3.0_f64.sqrt()).abs() < 1e-15);
        assert_eq!(a.trace(), 3.0);
    }

    #[test]
    fn symmetry_checks() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0 + 1e-12, 5.0]]);
        assert!(a.is_symmetric(1e-9));
        assert!(!a.is_symmetric(1e-15));
        a.symmetrize();
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.trace(), 6.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
