//! Symmetric eigendecomposition by the cyclic Jacobi method.

use crate::Matrix;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Computed with the cyclic Jacobi rotation method, which is slow (O(n³) per
/// sweep, a handful of sweeps) but extremely robust and accurate for the
/// moderate sizes (≤ a few hundred) appearing in Gram-matrix certificate
/// extraction.
///
/// Eigenvalues are returned in **ascending** order with matching eigenvector
/// columns.
///
/// # Examples
///
/// ```
/// use cppll_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let e = a.symmetric_eigen();
/// assert!((e.eigenvalues()[0] - 1.0).abs() < 1e-12);
/// assert!((e.eigenvalues()[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Decomposes `(a + aᵀ)/2`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Self {
        assert!(a.is_square(), "eigendecomposition requires a square matrix");
        let n = a.nrows();
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Matrix::identity(n);
        let max_sweeps = 64;
        for _sweep in 0..max_sweeps {
            let mut off = 0.0;
            for p in 0..n {
                for q in (p + 1)..n {
                    off += m[(p, q)] * m[(p, q)];
                }
            }
            let scale = m.norm().max(1.0);
            if off.sqrt() <= 1e-15 * scale {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= 1e-300 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Apply rotation to rows/cols p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        // Extract and sort ascending.
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("eigenvalues are finite"));
        let eigenvalues: Vec<f64> = pairs.iter().map(|&(l, _)| l).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_c, &(_, old_c)) in pairs.iter().enumerate() {
            for r in 0..n {
                eigenvectors[(r, new_c)] = v[(r, old_c)];
            }
        }
        SymmetricEigen {
            eigenvalues,
            eigenvectors,
        }
    }

    /// Eigenvalues in ascending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Orthonormal eigenvector matrix; column `i` pairs with eigenvalue `i`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Smallest eigenvalue.
    pub fn min_eigenvalue(&self) -> f64 {
        self.eigenvalues[0]
    }

    /// Largest eigenvalue.
    pub fn max_eigenvalue(&self) -> f64 {
        *self.eigenvalues.last().expect("nonempty spectrum")
    }

    /// Reconstructs `V diag(λ⁺) Vᵀ` keeping only eigenvalues above `floor`
    /// (a PSD projection used when extracting Gram-matrix certificates).
    pub fn psd_projection(&self, floor: f64) -> Matrix {
        let n = self.eigenvalues.len();
        let mut out = Matrix::zeros(n, n);
        for (i, &l) in self.eigenvalues.iter().enumerate() {
            if l <= floor {
                continue;
            }
            let vcol = self.eigenvectors.col(i);
            for c in 0..n {
                let lc = l * vcol[c];
                for r in 0..n {
                    out[(r, c)] += vcol[r] * lc;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_spectrum() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = a.symmetric_eigen();
        let got = e.eigenvalues();
        assert!((got[0] - 1.0).abs() < 1e-12);
        assert!((got[1] - 2.0).abs() < 1e-12);
        assert!((got[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let e = a.symmetric_eigen();
        let v = e.eigenvectors();
        let lam = Matrix::from_diag(e.eigenvalues());
        let rec = v.matmul(&lam).matmul(&v.transpose());
        assert!(rec.sub(&a).norm() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]);
        let e = a.symmetric_eigen();
        let v = e.eigenvectors();
        let vtv = v.transpose().matmul(v);
        assert!(vtv.sub(&Matrix::identity(2)).norm() < 1e-12);
    }

    #[test]
    fn psd_projection_clips_negative_part() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]); // eigenvalues ±1
        let e = a.symmetric_eigen();
        let p = e.psd_projection(0.0);
        let ep = p.symmetric_eigen();
        assert!(ep.min_eigenvalue() > -1e-12);
        assert!((ep.max_eigenvalue() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = a.symmetric_eigen();
        assert!((e.min_eigenvalue() - 1.0).abs() < 1e-12);
        assert!((e.max_eigenvalue() - 3.0).abs() < 1e-12);
    }
}
