//! Cholesky factorisation of symmetric positive-definite matrices.

use crate::{FactorError, Matrix};

/// Cholesky factorisation `A = L Lᵀ` with `L` lower triangular.
///
/// Besides solving SPD systems, [`Cholesky::new`] is the *definiteness
/// oracle* of the interior-point method: the line search asks "is
/// `X + α ΔX ≻ 0`?" by attempting a factorisation.
///
/// # Examples
///
/// ```
/// use cppll_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0, 0.0],
///                             &[-5.0, 0.0, 11.0]]);
/// let l = a.cholesky().expect("spd").l().clone();
/// assert!((l[(0, 0)] - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::NotPositiveDefinite`] when a pivot is not
    /// strictly positive, and [`FactorError::DimensionMismatch`] for
    /// non-square input.
    pub fn new(a: &Matrix) -> Result<Self, FactorError> {
        if !a.is_square() {
            return Err(FactorError::DimensionMismatch {
                context: "cholesky requires a square matrix",
            });
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        // Work on a copy of the lower triangle; the factor overwrites it.
        for c in 0..n {
            for r in c..n {
                l[(r, c)] = a[(r, c)];
            }
        }
        // Blocked right-looking factorisation. Every entry still receives its
        // `-= l_ik · l_jk` updates in globally ascending k (panels are visited
        // in order and each applies its columns in order), so the result is
        // bit-identical to the unblocked left-looking reference
        // ([`Cholesky::new_unblocked`]) — only the memory access pattern
        // changes: all inner loops walk contiguous column slices.
        const NB: usize = 48;
        for j0 in (0..n).step_by(NB) {
            let j1 = (j0 + NB).min(n);
            // Factor the panel columns j0..j1 (including the rows below the
            // panel), right-looking within the panel.
            for j in j0..j1 {
                let d = l[(j, j)];
                // NOTE: `!(d > 0.0)` would also catch NaN; spell it out.
                if d <= 0.0 || d.is_nan() || !d.is_finite() {
                    return Err(FactorError::NotPositiveDefinite { pivot: j, value: d });
                }
                let dj = d.sqrt();
                l[(j, j)] = dj;
                {
                    let col = l.col_mut(j);
                    for v in &mut col[(j + 1)..n] {
                        *v /= dj;
                    }
                }
                // Apply column j's rank-1 update to the rest of the panel.
                let dat = l.as_mut_slice();
                for c in (j + 1)..j1 {
                    let (head, tail) = dat.split_at_mut(c * n);
                    let lj = &head[j * n..j * n + n];
                    let ljc = lj[c];
                    let cc = &mut tail[..n];
                    for i in c..n {
                        cc[i] -= lj[i] * ljc;
                    }
                }
            }
            // Trailing update: subtract the whole panel's contribution from
            // columns ≥ j1 while the panel is hot in cache.
            let dat = l.as_mut_slice();
            for c in j1..n {
                let (head, tail) = dat.split_at_mut(c * n);
                let cc = &mut tail[..n];
                for k in j0..j1 {
                    let lk = &head[k * n..k * n + n];
                    let lkc = lk[c];
                    for i in c..n {
                        cc[i] -= lk[i] * lkc;
                    }
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Reference (unblocked, left-looking) factorisation — the kernel the
    /// blocked [`Cholesky::new`] is validated against in tests. Produces
    /// bit-identical factors.
    ///
    /// # Errors
    ///
    /// Same contract as [`Cholesky::new`].
    pub fn new_unblocked(a: &Matrix) -> Result<Self, FactorError> {
        if !a.is_square() {
            return Err(FactorError::DimensionMismatch {
                context: "cholesky requires a square matrix",
            });
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            if d <= 0.0 || d.is_nan() || !d.is_finite() {
                return Err(FactorError::NotPositiveDefinite { pivot: j, value: d });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solves `A x = b` via two triangular solves.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A x = b` in place.
    ///
    /// Both sweeps are column-oriented: per target entry the subtractions
    /// still happen in ascending column order with the division last, so the
    /// result is bit-identical to the textbook row walk — but every inner
    /// loop now reads one contiguous column slice of `L`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the factored dimension.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        self.solve_in_place_from(x, 0);
    }

    /// Solves `A x = b` in place when the leading `first` entries of `b` are
    /// exactly `+0.0`: the forward sweep starts at column `first`, skipping
    /// work that provably produces the unchanged prefix. The backward sweep
    /// is full — `Lᵀ` spreads trailing entries upward into the prefix.
    ///
    /// Correctness contract (the sparse-RHS Schur path guarantees it by
    /// zero-filling its workspaces): `x[..first]` must be `+0.0` bit
    /// patterns and `x` must contain no `-0.0`. Then every skipped forward
    /// operation is a no-op down to the sign of zero: prefix targets only
    /// ever subtract `±0.0` from `+0.0` (stays `+0.0`), divide `+0.0` by a
    /// positive pivot (stays `+0.0`), and suffix targets skip `±0.0` terms
    /// while still holding their non-`-0.0` initial value.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the factored dimension.
    pub fn solve_in_place_from(&self, x: &mut [f64], first: usize) {
        let n = self.dim();
        assert_eq!(x.len(), n, "rhs length must equal matrix dimension");
        // L y = b
        for j in first..n {
            let col = self.l.col(j);
            let xj = x[j] / col[j];
            x[j] = xj;
            for i in (j + 1)..n {
                x[i] -= col[i] * xj;
            }
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let col = self.l.col(i);
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= col[j] * x[j];
            }
            x[i] = acc / col[i];
        }
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows()` differs from the factored dimension.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "rhs rows must equal matrix dimension");
        let mut out = b.clone();
        for c in 0..b.ncols() {
            self.solve_in_place(out.col_mut(c));
        }
        out
    }

    /// Inverse of the factored matrix.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Solves the lower-triangular system `L y = b` only.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_lower_in_place(&mut x);
        x
    }

    /// Solves `L y = b` in place (column-oriented forward sweep; see
    /// [`Cholesky::solve_in_place`] for the bit-identity argument).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the factored dimension.
    pub fn solve_lower_in_place(&self, x: &mut [f64]) {
        let n = self.dim();
        assert_eq!(x.len(), n, "rhs length must equal matrix dimension");
        for j in 0..n {
            let col = self.l.col(j);
            let xj = x[j] / col[j];
            x[j] = xj;
            for i in (j + 1)..n {
                x[i] -= col[i] * xj;
            }
        }
    }

    /// Solves `L Z = B` (lower-triangular, matrix right-hand side).
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows()` differs from the factored dimension.
    pub fn solve_lower_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "rhs rows must equal matrix dimension");
        let mut out = b.clone();
        for c in 0..b.ncols() {
            self.solve_lower_in_place(out.col_mut(c));
        }
        out
    }

    /// Computes the symmetric similarity transform `L⁻¹ M L⁻ᵀ` for a
    /// symmetric `M` (used for exact interior-point step lengths).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not square of the factored dimension.
    pub fn whiten(&self, m: &Matrix) -> Matrix {
        let y = self.solve_lower_matrix(m); // L⁻¹ M
        let mut w = self.solve_lower_matrix(&y.transpose()); // L⁻¹ Mᵀ L⁻ᵀ … transposed
        w.symmetrize();
        w
    }

    /// log(det A) computed stably from the factor.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Returns `true` when the symmetric matrix is positive definite.
///
/// Convenience wrapper over [`Cholesky::new`].
pub(crate) fn _is_positive_definite(a: &Matrix) -> bool {
    Cholesky::new(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
    }

    #[test]
    fn reconstruction() {
        let a = spd3();
        let l = a.cholesky().unwrap().l().clone();
        let llt = l.matmul(&l.transpose());
        assert!(llt.sub(&a).norm() < 1e-12);
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd3();
        let b = [1.0, 2.0, 3.0];
        let x1 = a.cholesky().unwrap().solve(&b);
        let x2 = a.lu().unwrap().solve(&b);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            a.cholesky(),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_semidefinite() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn whiten_matches_explicit() {
        let a = spd3();
        let ch = a.cholesky().unwrap();
        // whiten(A) must be the identity.
        let w = ch.whiten(&a);
        assert!(w.sub(&Matrix::identity(3)).norm() < 1e-12);
        // whiten preserves eigenvalue signs of M w.r.t. A (congruence).
        let m = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, -2.0, 0.0], &[0.0, 0.0, 0.5]]);
        let w = ch.whiten(&m);
        let e = w.symmetric_eigen();
        assert!(e.min_eigenvalue() < 0.0);
        assert!(e.max_eigenvalue() > 0.0);
    }

    #[test]
    fn column_oriented_solve_matches_row_walk_bitwise() {
        let a = spd3();
        let ch = a.cholesky().unwrap();
        let b = [0.125, -3.5, 2.75];
        let got = ch.solve(&b);
        // Textbook row-walk reference.
        let n = 3;
        let mut x = b.to_vec();
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= ch.l()[(i, j)] * x[j];
            }
            x[i] = acc / ch.l()[(i, i)];
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= ch.l()[(j, i)] * x[j];
            }
            x[i] = acc / ch.l()[(i, i)];
        }
        for (u, v) in got.iter().zip(&x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn restricted_forward_solve_matches_full_bitwise() {
        // 5×5 SPD with a RHS whose leading two entries are exactly +0.0.
        let mut a = Matrix::identity(5);
        for r in 0..5 {
            for c in 0..5 {
                a[(r, c)] += 0.25 / ((r + c + 1) as f64);
            }
        }
        let ch = a.cholesky().unwrap();
        let b = [0.0, 0.0, 1.5, -2.0, 0.75];
        let mut full = b.to_vec();
        ch.solve_in_place(&mut full);
        let mut skip = b.to_vec();
        ch.solve_in_place_from(&mut skip, 2);
        for (u, v) in full.iter().zip(&skip) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn log_det_matches_det() {
        let a = spd3();
        let ld = a.cholesky().unwrap().log_det();
        let d = a.lu().unwrap().det();
        assert!((ld - d.ln()).abs() < 1e-10);
    }
}
