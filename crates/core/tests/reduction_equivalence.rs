//! End-to-end equivalence of the verification pipeline with and without
//! problem-size reduction: same verdict on the toy two-mode system, with the
//! reduction layer engaged on every Gram and the no-reduce run untouched.
//!
//! Note the reduced run is *not* expected to shrink here: the pipeline's
//! Lyapunov/multiplier encodings use full degree-envelope bases, so every
//! Gram's support is the whole simplex and the Newton polytope is exactly
//! the envelope; the affine guard polynomials likewise break sign symmetry.
//! See DESIGN.md §10 — the reductions fire on structured targets (covered
//! by `crates/sos/tests/proptest_reduce.rs`), and this test pins down that
//! running them on dense programs is verdict- and certificate-neutral.

use cppll_hybrid::{HybridSystem, Jump, Mode};
use cppll_poly::Polynomial;
use cppll_verify::{InevitabilityVerifier, PipelineOptions, ReductionOptions, Region};

/// Two contracting planar modes switching on the line `x = 0` (the toy
/// inevitability benchmark used throughout the test suite).
fn two_mode_spiral() -> HybridSystem {
    let right = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
    ];
    let left = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
        Polynomial::from_terms(2, &[(&[1, 0], -0.5), (&[0, 1], -1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("right", right).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("left", left).with_flow_set(vec![x.scale(-1.0)]);
    let guard = vec![Polynomial::var(2, 0)];
    let jumps = vec![
        Jump::identity(0, 1).with_guard_eq(guard.clone()),
        Jump::identity(1, 0).with_guard_eq(guard),
    ];
    HybridSystem::new(2, vec![m0, m1], jumps)
}

#[test]
fn toy_pipeline_verdict_agrees_with_reduction_on_and_off() {
    let sys = two_mode_spiral();
    let mut boundary = Vec::new();
    for i in 0..2 {
        let xi = Polynomial::var(2, i);
        boundary.push(&Polynomial::constant(2, 3.0) - &xi);
        boundary.push(&Polynomial::constant(2, 3.0) + &xi);
    }
    let verifier = InevitabilityVerifier::new(&sys, boundary, Region::ball(2, 2.0));

    let reduced = verifier
        .verify(&PipelineOptions::degree(2))
        .expect("reduced run succeeds");

    let mut opt = PipelineOptions::degree(2);
    opt.reduction = ReductionOptions::none();
    let unreduced = verifier.verify(&opt).expect("unreduced run succeeds");

    assert_eq!(
        reduced.verdict.is_verified(),
        unreduced.verdict.is_verified(),
        "verdict flipped under reduction: {:?} vs {:?}",
        reduced.verdict,
        unreduced.verdict
    );
    assert!(reduced.verdict.is_verified(), "toy system must verify");

    // The reduced run must have engaged the reduction layer on every Gram
    // (one block per Gram when no symmetry splits, never fewer) without
    // growing any basis. The unreduced run must report untouched bases.
    let r = &reduced.reduction;
    assert!(r.grams > 0, "reduced run saw no Gram blocks");
    assert!(r.blocks >= r.grams, "lost Gram blocks in reduction: {r}");
    assert!(r.basis_after <= r.basis_before, "pruning grew a basis: {r}");
    let u = &unreduced.reduction;
    assert_eq!(
        u.basis_after, u.basis_before,
        "no-reduce run pruned anyway: {u}"
    );
    assert_eq!(u.blocks, u.grams, "no-reduce run split anyway: {u}");

    // Both runs accumulated solver time; only the reduced one spent any of
    // it inside the reduction stage.
    assert_eq!(unreduced.solve_timings.reduction, 0.0);
}
