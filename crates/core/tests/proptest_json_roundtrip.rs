//! Property-based tests for the checkpoint journal's serialisation layer:
//! every `f64` that enters a journal record must come back **bit-identical**
//! (`to_bits` equality, not `==` — the sign of `-0.0` and denormals count),
//! and non-finite values must be rejected at decode time rather than
//! silently corrupting a resumed run.

use cppll_json::{FromJson, ToJson};
use cppll_linalg::Matrix;
use cppll_poly::Polynomial;
use cppll_sdp::{SdpSolution, SdpStatus, SolveTimings};
use proptest::prelude::*;

/// Reinterprets raw generator bits as an `f64`, skewing a slice of the
/// space onto the interesting cases (−0.0 and denormals) that plain range
/// strategies never produce.
fn f64_from_bits(bits: u64) -> f64 {
    match bits % 8 {
        0 => -0.0,
        1 => f64::from_bits(bits | 1), // force odd mantissas (denormals incl.)
        _ => f64::from_bits(bits),
    }
}

fn finite_values(bits: &[u64]) -> Option<Vec<f64>> {
    let vals: Vec<f64> = bits.iter().map(|&b| f64_from_bits(b)).collect();
    vals.iter().all(|v| v.is_finite()).then_some(vals)
}

fn bits_of(vals: &[f64]) -> Vec<u64> {
    vals.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn polynomial_roundtrips_bit_identically(
        nvars in 1usize..4,
        exps in prop::collection::vec(0u32..5, 12),
        coeff_bits in prop::collection::vec(0u64..u64::MAX, 4),
    ) {
        let Some(coeffs) = finite_values(&coeff_bits) else {
            prop_assume!(false);
            unreachable!();
        };
        let terms: Vec<(Vec<u32>, f64)> = coeffs
            .iter()
            .enumerate()
            .map(|(i, &c)| (exps[i * nvars..(i + 1) * nvars].to_vec(), c))
            .collect();
        let borrowed: Vec<(&[u32], f64)> =
            terms.iter().map(|(e, c)| (e.as_slice(), *c)).collect();
        let p = Polynomial::from_terms(nvars, &borrowed);

        let text = p.to_json().to_compact_string();
        let back = Polynomial::from_json(&cppll_json::parse(&text).unwrap()).unwrap();

        prop_assert_eq!(back.nvars(), p.nvars());
        let a: Vec<(Vec<u32>, u64)> = p
            .terms()
            .map(|(m, c)| (m.exps().to_vec(), c.to_bits()))
            .collect();
        let b: Vec<(Vec<u32>, u64)> = back
            .terms()
            .map(|(m, c)| (m.exps().to_vec(), c.to_bits()))
            .collect();
        prop_assert_eq!(a, b);
        // Serialise→parse→serialise is a fixpoint: canonical text is stable.
        prop_assert_eq!(back.to_json().to_compact_string(), text);
    }

    #[test]
    fn matrix_roundtrips_bit_identically(
        nrows in 1usize..5,
        ncols in 1usize..5,
        entry_bits in prop::collection::vec(0u64..u64::MAX, 16),
    ) {
        let Some(vals) = finite_values(&entry_bits[..nrows * ncols]) else {
            prop_assume!(false);
            unreachable!();
        };
        let m = Matrix::from_col_major(nrows, ncols, vals);

        let text = m.to_json().to_compact_string();
        let back = Matrix::from_json(&cppll_json::parse(&text).unwrap()).unwrap();

        prop_assert_eq!(back.nrows(), m.nrows());
        prop_assert_eq!(back.ncols(), m.ncols());
        prop_assert_eq!(bits_of(back.as_slice()), bits_of(m.as_slice()));
        prop_assert_eq!(back.to_json().to_compact_string(), text);
    }

    #[test]
    fn sdp_solution_roundtrips_bit_identically(
        status_idx in 0usize..7,
        n in 1usize..4,
        block_bits in prop::collection::vec(0u64..u64::MAX, 18),
        vec_bits in prop::collection::vec(0u64..u64::MAX, 6),
        scalar_bits in prop::collection::vec(0u64..u64::MAX, 5),
        iterations in 0usize..500,
        warm in prop::option::of(0u32..1),
    ) {
        let statuses = [
            SdpStatus::Optimal,
            SdpStatus::NearOptimal,
            SdpStatus::MaxIterations,
            SdpStatus::Stalled,
            SdpStatus::PrimalInfeasibleLikely,
            SdpStatus::DualInfeasibleLikely,
            SdpStatus::DeadlineExceeded,
        ];
        let (Some(blocks), Some(vecs), Some(scalars)) = (
            finite_values(&block_bits[..2 * n * n]),
            finite_values(&vec_bits),
            finite_values(&scalar_bits),
        ) else {
            prop_assume!(false);
            unreachable!();
        };
        let sol = SdpSolution {
            status: statuses[status_idx],
            x: vec![Matrix::from_col_major(n, n, blocks[..n * n].to_vec())],
            free: vecs[..3].to_vec(),
            y: vecs[3..].to_vec(),
            s: vec![Matrix::from_col_major(n, n, blocks[n * n..].to_vec())],
            primal_objective: scalars[0],
            dual_objective: scalars[1],
            primal_infeasibility: scalars[2],
            dual_infeasibility: scalars[3],
            gap: scalars[4],
            iterations,
            timings: SolveTimings::default(),
            warm_started: warm.is_some(),
        };

        let text = sol.to_json().to_compact_string();
        let back = SdpSolution::from_json(&cppll_json::parse(&text).unwrap()).unwrap();

        prop_assert_eq!(back.status, sol.status);
        prop_assert_eq!(back.iterations, sol.iterations);
        prop_assert_eq!(back.warm_started, sol.warm_started);
        prop_assert_eq!(bits_of(back.x[0].as_slice()), bits_of(sol.x[0].as_slice()));
        prop_assert_eq!(bits_of(back.s[0].as_slice()), bits_of(sol.s[0].as_slice()));
        prop_assert_eq!(bits_of(&back.free), bits_of(&sol.free));
        prop_assert_eq!(bits_of(&back.y), bits_of(&sol.y));
        prop_assert_eq!(
            bits_of(&[
                back.primal_objective,
                back.dual_objective,
                back.primal_infeasibility,
                back.dual_infeasibility,
                back.gap
            ]),
            bits_of(&scalars)
        );
        prop_assert_eq!(back.to_json().to_compact_string(), text);
    }
}

#[test]
fn non_finite_values_are_rejected_on_decode() {
    // NaN / Inf serialise to `null` (JSON has no non-finite literals), and
    // the decoder refuses them anywhere an f64 is expected — a journal can
    // never smuggle a non-finite number into a resumed pipeline.
    use cppll_json::Value;
    assert_eq!(Value::Number(f64::NAN).to_compact_string(), "null");
    assert_eq!(Value::Number(f64::INFINITY).to_compact_string(), "null");

    let poly = r#"{"nvars":1,"terms":[[[2],null]]}"#;
    assert!(Polynomial::from_json(&cppll_json::parse(poly).unwrap()).is_err());

    let matrix = r#"{"nrows":1,"ncols":2,"data":[1.5,null]}"#;
    assert!(Matrix::from_json(&cppll_json::parse(matrix).unwrap()).is_err());

    let mut sol_json = SdpSolution {
        status: SdpStatus::Optimal,
        x: vec![Matrix::from_col_major(1, 1, vec![1.0])],
        free: vec![],
        y: vec![0.25],
        s: vec![Matrix::from_col_major(1, 1, vec![2.0])],
        primal_objective: 1.0,
        dual_objective: 1.0,
        primal_infeasibility: 0.0,
        dual_infeasibility: 0.0,
        gap: f64::NAN,
        iterations: 3,
        timings: SolveTimings::default(),
        warm_started: false,
    }
    .to_json()
    .to_compact_string();
    assert!(sol_json.contains("\"gap\":null"), "{sol_json}");
    assert!(SdpSolution::from_json(&cppll_json::parse(&sol_json).unwrap()).is_err());
    // The same document with a finite gap decodes fine.
    sol_json = sol_json.replace("\"gap\":null", "\"gap\":0.125");
    let back = SdpSolution::from_json(&cppll_json::parse(&sol_json).unwrap()).unwrap();
    assert_eq!(back.gap.to_bits(), 0.125f64.to_bits());
}
