//! Level-curve maximisation (the paper's second SOS program): grow the
//! sublevel sets of the Lyapunov certificates as far as the verified region
//! allows; their union is the attractive invariant `S1`.

use cppll_hybrid::HybridSystem;
use cppll_poly::Polynomial;
use cppll_sos::{check_inclusion, maximize_bisect, InclusionOptions, SosOptions};

use crate::lyapunov::{CertificateScheme, LyapunovCertificates};
use crate::region::Region;

/// Options for [`LevelSetMaximizer`].
#[derive(Debug, Clone)]
pub struct LevelSetOptions {
    /// Absolute bisection resolution on the level value (floored at
    /// `hi/32` — each probe is a full SDP solve, so the budget is capped at
    /// roughly seven probes).
    pub tolerance: f64,
    /// Upper bound for the bisection; estimated from boundary samples when
    /// `None`.
    pub hi: Option<f64>,
    /// Half-degree of the inclusion-certificate multipliers; `None` picks
    /// `max(1, degree(V)/2)`. (A weaker `degree/2 − 1` is cheaper but was
    /// observed to under-certify the fourth-order level value enough to
    /// break the downstream P2 inclusion.)
    pub mult_half_degree: Option<u32>,
    /// SOS options for the feasibility probes.
    pub sos: SosOptions,
}

impl Default for LevelSetOptions {
    fn default() -> Self {
        LevelSetOptions {
            tolerance: 1e-3,
            hi: None,
            mult_half_degree: None,
            sos: SosOptions::default(),
        }
    }
}

/// Result of the level maximisation: the attractive invariant
/// `S1 = ∪ᵢ {Vᵢ ≤ c*} ∩ Cᵢ`.
#[derive(Debug, Clone)]
pub struct LevelSetResult {
    /// The common maximised level value `c*`.
    pub level: f64,
    /// Sublevel polynomials `Vᵢ − c*` per mode.
    pub ai_polys: Vec<Polynomial>,
    /// Number of SOS feasibility probes spent in the bisection.
    pub probes: usize,
}

impl LevelSetResult {
    /// The attractive-invariant piece for `mode`, as a [`Region`]
    /// (`{Vᵢ − c* ≤ 0}` intersected with the mode's flow set).
    pub fn ai_region(&self, system: &HybridSystem, mode: usize) -> Region {
        let mut r = Region::sublevel(self.ai_polys[mode].clone());
        for g in system.modes()[mode].flow_set() {
            r = r.with_side(g.clone());
        }
        r
    }

    /// Membership test for the union `S1` (within `tol`).
    pub fn contains(&self, system: &HybridSystem, x: &[f64], tol: f64) -> bool {
        (0..self.ai_polys.len())
            .any(|mi| self.ai_polys[mi].eval(x) <= tol && system.modes()[mi].contains(x, tol))
    }
}

/// Maximises the certified level `c` such that every sublevel piece
/// `{Vᵢ ≤ c} ∩ Cᵢ` stays inside the verified region `{gⱼ ≥ 0}`.
///
/// Each probe of the bisection checks, per mode and per region boundary
/// polynomial `g`, the implication `Vᵢ ≤ c ∧ x ∈ Cᵢ ⟹ g ≥ 0` through the
/// Lemma-1 inclusion certificate.
pub struct LevelSetMaximizer<'s> {
    system: &'s HybridSystem,
    /// Region boundary inequalities `g(x) ≥ 0` (the modeled envelope).
    boundary: Vec<Polynomial>,
}

impl<'s> LevelSetMaximizer<'s> {
    /// Creates a maximizer; `boundary` describes the region on which the
    /// Lyapunov conditions were verified (e.g. `|e| ≤ θ_max`).
    pub fn new(system: &'s HybridSystem, boundary: Vec<Polynomial>) -> Self {
        LevelSetMaximizer { system, boundary }
    }

    /// Runs the bisection.
    ///
    /// Returns `None` when even an arbitrarily small level cannot be
    /// certified (which indicates a certificate/region mismatch).
    pub fn maximize(
        &self,
        certs: &LyapunovCertificates,
        opt: &LevelSetOptions,
    ) -> Option<LevelSetResult> {
        let hi = opt.hi.unwrap_or_else(|| self.estimate_hi(certs));
        let mut inc_opt = InclusionOptions {
            mult_half_degree: opt
                .mult_half_degree
                .unwrap_or_else(|| (certs.degree() / 2).max(1)),
            sos: opt.sos.clone(),
        };
        // Bisection probes accept the support-reduced compile's "no" as a
        // conservative answer: a spurious rejection only lowers the level we
        // settle on, and every accepted level carries a real certificate.
        inc_opt.sos.reduction.trust_infeasible = true;
        let modes: Vec<usize> = match certs.scheme() {
            CertificateScheme::Common => vec![0],
            CertificateScheme::Multiple => (0..self.system.modes().len()).collect(),
        };
        let result = maximize_bisect(hi * 1e-4, hi, opt.tolerance.max(hi / 32.0), |c| {
            modes.iter().all(|&mi| {
                let v = certs.for_mode(mi);
                let level = v - &Polynomial::constant(v.nvars(), c);
                let domain: Vec<Polynomial> = match certs.scheme() {
                    CertificateScheme::Common => Vec::new(),
                    CertificateScheme::Multiple => self.system.modes()[mi].flow_set().to_vec(),
                };
                self.boundary.iter().all(|g| {
                    let neg_g = g.scale(-1.0); // S(−g) = {g ≥ 0}
                    check_inclusion(&level, &neg_g, &domain, &inc_opt)
                })
            })
        });
        let level = result.best?;
        let ai_polys: Vec<Polynomial> = (0..self.system.modes().len())
            .map(|mi| {
                let v = certs.for_mode(mi);
                v - &Polynomial::constant(v.nvars(), level)
            })
            .collect();
        Some(LevelSetResult {
            level,
            ai_polys,
            probes: result.probes,
        })
    }

    /// Upper bound for the bisection: the smallest certificate value found
    /// on a grid sample of the region boundary (the level curve cannot grow
    /// past the first boundary touch).
    fn estimate_hi(&self, certs: &LyapunovCertificates) -> f64 {
        let n = self.system.nstates();
        // Bounding box radius: where the boundary polynomials change sign.
        let bound = 4.0;
        let steps = 9usize;
        let mut hi = f64::INFINITY;
        let mut idx = vec![0usize; n];
        loop {
            let point: Vec<f64> = idx
                .iter()
                .map(|&i| -bound + 2.0 * bound * (i as f64) / ((steps - 1) as f64))
                .collect();
            // Outside the verified region?
            if self.boundary.iter().any(|g| g.eval(&point) < 0.0) {
                for v in certs.all() {
                    hi = hi.min(v.eval(&point));
                }
            }
            let mut k = 0;
            loop {
                if k == n {
                    return if hi.is_finite() && hi > 0.0 { hi } else { 1.0 };
                }
                idx[k] += 1;
                if idx[k] < steps {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lyapunov::{LyapunovOptions, LyapunovSynthesizer};
    use cppll_hybrid::{HybridSystem, Mode};

    /// ẋ = −x + y, ẏ = −y on the strip {|x| ≤ 2}.
    fn stable_strip() -> HybridSystem {
        let f = vec![
            Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
            Polynomial::from_terms(2, &[(&[0, 1], -1.0)]),
        ];
        let g = vec![
            &Polynomial::constant(2, 2.0) - &Polynomial::var(2, 0),
            &Polynomial::constant(2, 2.0) + &Polynomial::var(2, 0),
        ];
        HybridSystem::new(2, vec![Mode::new("m", f).with_flow_set(g)], vec![])
    }

    #[test]
    fn level_set_touches_strip_boundary() {
        let sys = stable_strip();
        let certs = LyapunovSynthesizer::new(&sys)
            .synthesize(&LyapunovOptions::degree(2))
            .expect("stable");
        let boundary = sys.modes()[0].flow_set().to_vec();
        let max = LevelSetMaximizer::new(&sys, boundary);
        let res = max
            .maximize(&certs, &LevelSetOptions::default())
            .expect("level found");
        assert!(res.level > 0.0, "level = {}", res.level);
        // The level set must contain a neighbourhood of the origin …
        assert!(res.contains(&sys, &[0.1, 0.1], 0.0));
        // … and stay inside the strip: V(x) ≤ c ⟹ |x1| ≤ 2. Check on a grid.
        let v = certs.for_mode(0);
        for i in 0..100 {
            let x = -3.0 + 6.0 * (i as f64) / 99.0;
            for j in 0..100 {
                let y = -3.0 + 6.0 * (j as f64) / 99.0;
                if v.eval(&[x, y]) <= res.level {
                    assert!(
                        x.abs() <= 2.0 + 1e-6,
                        "level set leaks outside the strip at ({x},{y})"
                    );
                }
            }
        }
    }
}
