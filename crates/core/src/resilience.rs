//! Pipeline-level resilience: stage naming, failure reports, and the
//! configuration that wires the `cppll-sos` solve supervisor into every
//! stage of [`InevitabilityVerifier::verify`](crate::InevitabilityVerifier).
//!
//! The pipeline degrades rather than aborts: when a stage's solves fail
//! numerically even after the configured retries, `verify` returns a
//! *partial* [`VerificationReport`](crate::VerificationReport) whose
//! [`Verdict::Degraded`](crate::Verdict) names the stage and whose
//! [`FailureReport`]s carry the supervised attempt logs — everything the
//! earlier stages did prove (Lyapunov certificates, the attractive
//! invariant level) stays in the report. Infeasibility still propagates as
//! an error: it is an answer about the relaxation, not a transient fault.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cppll_sdp::FaultInjector;
use cppll_sos::{AttemptRecord, ResilienceOptions, RetryPolicy, SolveLedger};
use cppll_trace::Tracer;

/// The stages of Algorithm 1, as reported in failure reports and announced
/// to the fault injector (`FaultInjector::set_stage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PipelineStage {
    /// Multiple-Lyapunov-function synthesis (P1).
    Lyapunov,
    /// Level-curve maximisation carving the attractive invariant (P1).
    LevelSet,
    /// Bounded advection with inclusion checking (P2).
    Advection,
    /// Escape-certificate synthesis for the leftover (P2).
    Escape,
}

impl PipelineStage {
    /// Canonical lower-case stage name, matching what the pipeline passes
    /// to [`FaultInjector::set_stage`].
    pub fn name(self) -> &'static str {
        match self {
            PipelineStage::Lyapunov => "lyapunov",
            PipelineStage::LevelSet => "levelset",
            PipelineStage::Advection => "advection",
            PipelineStage::Escape => "escape",
        }
    }
}

impl std::fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Structured description of a stage failure that the pipeline absorbed
/// into a degraded verdict instead of propagating as an error.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The stage that failed.
    pub stage: PipelineStage,
    /// Human-readable description of what went wrong.
    pub detail: String,
    /// Supervised attempt log of the failing solve, when the stage exposes
    /// one (stages that absorb solver errors into boolean outcomes report
    /// ledger-level counts in `detail` instead).
    pub attempts: Vec<AttemptRecord>,
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} failed after {} attempt(s): {}",
            self.stage,
            self.attempts.len().max(1),
            self.detail
        )
    }
}

/// Retries each supervised solve gets by default. Nonzero on purpose: the
/// interior-point solver can stall on marginal-but-feasible programs (the
/// third-order PLL at degree 4 is one), and a retry with escalated
/// regularisation is what absorbs those transient failures now that the
/// Lyapunov ε-ladder no longer retries numerical errors.
pub const DEFAULT_RETRIES: usize = 2;

/// Pipeline-level resilience configuration: how many retries each solve
/// gets, wall-clock budgets, and the (test-only) fault injector. The
/// default allows [`DEFAULT_RETRIES`] retries per solve with no budgets;
/// use `retries = 0` for the strictly-unsupervised single-attempt
/// pipeline.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Retries allowed per supervised solve (0 = never retry).
    pub retries: usize,
    /// Wall-clock budget per solve attempt.
    pub solve_timeout: Option<Duration>,
    /// Wall-clock budget for the whole `verify` call, measured from its
    /// start; solves never run past it (they terminate with a
    /// `DeadlineExceeded` status, which is not retryable).
    pub deadline: Option<Duration>,
    /// Override of the SDP iteration limit for supervised solves.
    pub iteration_budget: Option<usize>,
    /// Seed of the deterministic step-fraction jitter used on retries.
    pub jitter_seed: u64,
    /// Actually sleep the planned exponential backoff between retries.
    pub sleep_backoff: bool,
    /// Deterministic fault injector (testing hook); the pipeline announces
    /// each stage to it, the supervisor each attempt.
    pub fault: Option<Arc<FaultInjector>>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        let retry = RetryPolicy::default();
        ResilienceConfig {
            retries: DEFAULT_RETRIES,
            solve_timeout: None,
            deadline: None,
            iteration_budget: None,
            jitter_seed: retry.jitter_seed,
            sleep_backoff: retry.sleep,
            fault: None,
        }
    }
}

impl ResilienceConfig {
    /// A config allowing `retries` retries per solve, otherwise default.
    pub fn with_retries(retries: usize) -> Self {
        ResilienceConfig {
            retries,
            ..Default::default()
        }
    }

    /// Announces `stage` to the fault injector, if one is attached.
    pub(crate) fn announce_stage(&self, stage: PipelineStage) {
        if let Some(fault) = &self.fault {
            fault.set_stage(stage.name());
        }
    }

    /// The solver-facing resilience options for one pipeline run:
    /// `deadline` is the absolute instant derived from [`Self::deadline`]
    /// at the start of `verify`, `ledger` the run's shared ledger.
    pub(crate) fn to_sos(
        &self,
        deadline: Option<Instant>,
        ledger: &SolveLedger,
        tracer: Option<Tracer>,
    ) -> ResilienceOptions {
        ResilienceOptions {
            retry: RetryPolicy {
                max_retries: self.retries,
                jitter_seed: self.jitter_seed,
                sleep: self.sleep_backoff,
                ..RetryPolicy::default()
            },
            solve_timeout: self.solve_timeout,
            deadline,
            iteration_budget: self.iteration_budget,
            fault: self.fault.clone(),
            ledger: Some(ledger.clone()),
            tracer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_match_the_fault_injector_convention() {
        assert_eq!(PipelineStage::Lyapunov.name(), "lyapunov");
        assert_eq!(PipelineStage::LevelSet.name(), "levelset");
        assert_eq!(PipelineStage::Advection.name(), "advection");
        assert_eq!(PipelineStage::Escape.name(), "escape");
        assert_eq!(PipelineStage::Escape.to_string(), "escape");
    }

    #[test]
    fn default_config_retries_but_sets_no_budgets() {
        let c = ResilienceConfig::default();
        assert_eq!(c.retries, DEFAULT_RETRIES);
        assert!(c.solve_timeout.is_none());
        assert!(c.deadline.is_none());
        assert!(c.fault.is_none());
        let ledger = SolveLedger::new();
        let sos = c.to_sos(None, &ledger, None);
        assert_eq!(sos.retry.max_retries, DEFAULT_RETRIES);
        assert!(sos.deadline.is_none());
        assert!(sos.ledger.is_some());
    }

    #[test]
    fn with_retries_threads_through_to_the_policy() {
        let c = ResilienceConfig::with_retries(3);
        let sos = c.to_sos(None, &SolveLedger::new(), None);
        assert_eq!(sos.retry.max_retries, 3);
    }

    #[test]
    fn failure_report_display_names_the_stage() {
        let r = FailureReport {
            stage: PipelineStage::Advection,
            detail: "2 supervised solve(s) failed".into(),
            attempts: Vec::new(),
        };
        assert_eq!(
            r.to_string(),
            "advection failed after 1 attempt(s): 2 supervised solve(s) failed"
        );
    }
}
