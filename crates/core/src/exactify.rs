//! Upgrading numeric Lyapunov certificates to exact rational theorems.
//!
//! The SOS pipeline works in floating point; this module re-states its key
//! inequalities with exact rational data (lifting `V` and the flows exactly
//! — Lie derivatives are recomputed in rational arithmetic, not trusted from
//! floats) and certifies them through `cppll-exact`'s rounding + projection
//! + exact-PSD kernel:
//!
//! * **positivity** — `V − δ‖x‖²` is SOS (globally);
//! * **decrease** — `−V̇ − δ‖x‖²` is nonnegative on each mode's flow set
//!   intersected with a user-supplied compact box, at every parameter
//!   vertex. (The box keeps the decomposition away from tightness at
//!   infinity; pick it to cover the attractive invariant.)
//!
//! A successful [`ExactificationReport`] means those inequalities are
//! *theorems* — checked end to end in exact arithmetic.

use cppll_exact::{prove_nonneg_on_rational, prove_sos, ExactOptions, NonnegProof, RationalPoly};
use cppll_hybrid::HybridSystem;
use cppll_poly::Polynomial;

use crate::lyapunov::LyapunovCertificates;

/// Options for [`exactify_certificates`].
#[derive(Debug, Clone)]
pub struct ExactifyOptions {
    /// Strictness margin δ re-certified exactly (smaller than the synthesis
    /// margin so the numeric certificate has room).
    pub delta: f64,
    /// Exact-kernel options (rounding grid, multiplier degrees).
    pub exact: ExactOptions,
}

impl Default for ExactifyOptions {
    fn default() -> Self {
        ExactifyOptions {
            delta: 1e-8,
            exact: ExactOptions::default(),
        }
    }
}

/// One exactly-certified decrease claim.
#[derive(Debug)]
pub struct DecreaseClaim {
    /// Mode index.
    pub mode: usize,
    /// Parameter-vertex index.
    pub vertex: usize,
    /// The exact proof object.
    pub proof: NonnegProof,
}

/// Everything that was exactly certified, plus explicit accounting of the
/// claims that could not be upgraded (those remain backed by the numeric
/// certificate only).
#[derive(Debug)]
pub struct ExactificationReport {
    /// Exact SOS proofs of `Vᵢ − δ‖x‖²` per distinct certificate.
    pub positivity: Vec<cppll_exact::ExactProof>,
    /// Exact decrease proofs per (mode, vertex).
    pub decrease: Vec<DecreaseClaim>,
    /// Decrease claims that resisted exactification: `(mode, vertex,
    /// reason)`. Typical cause: the S-procedure degree needed to certify a
    /// thin saturated-mode slab exceeds the practical Putinar ladder.
    pub unproven: Vec<(usize, usize, String)>,
}

impl ExactificationReport {
    /// Total number of exactly certified inequalities.
    pub fn claims(&self) -> usize {
        self.positivity.len() + self.decrease.len()
    }

    /// `true` when every stated claim was exactly certified.
    pub fn complete(&self) -> bool {
        self.unproven.is_empty()
    }
}

/// Errors of the exactification step.
#[derive(Debug)]
pub enum ExactifyError {
    /// A positivity claim failed.
    Positivity(cppll_exact::ExactError),
    /// A decrease claim failed (mode, vertex, cause).
    Decrease(usize, usize, cppll_exact::ExactError),
}

impl std::fmt::Display for ExactifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactifyError::Positivity(e) => write!(f, "exact positivity failed: {e}"),
            ExactifyError::Decrease(m, v, e) => {
                write!(f, "exact decrease failed at mode {m}, vertex {v}: {e}")
            }
        }
    }
}

impl std::error::Error for ExactifyError {}

/// Exactly certifies the Lyapunov claims on `box_halfwidths`-sized boxes.
///
/// # Errors
///
/// Returns the first failing claim; the numeric certificates stand but
/// could not be upgraded at this rounding grid / box / margin.
pub fn exactify_certificates(
    system: &HybridSystem,
    certs: &LyapunovCertificates,
    box_halfwidths: &[f64],
    opt: &ExactifyOptions,
) -> Result<ExactificationReport, ExactifyError> {
    let n = system.nstates();
    assert_eq!(box_halfwidths.len(), n, "box dimension mismatch");
    let norm2 = Polynomial::norm_squared(n).scale(opt.delta);

    // Positivity per distinct certificate, with a coercive margin matching
    // the synthesis margin's shape: δ(‖x‖² + ‖x‖^deg).
    let mut positivity = Vec::new();
    let mut seen: Vec<&Polynomial> = Vec::new();
    for mi in 0..system.modes().len() {
        let v = certs.for_mode(mi);
        if seen.contains(&v) {
            continue;
        }
        seen.push(v);
        let eps_pos = &norm2
            + &Polynomial::norm_squared(n)
                .pow(certs.degree() / 2)
                .scale(opt.delta);
        let target = v - &eps_pos;
        positivity.push(prove_sos(&target, &opt.exact).map_err(ExactifyError::Positivity)?);
    }

    // Decrease per mode and parameter vertex, on flow set ∩ box.
    let mut decrease = Vec::new();
    let mut unproven = Vec::new();
    for (mi, mode) in system.modes().iter().enumerate() {
        let v_exact = RationalPoly::from_f64_poly(certs.for_mode(mi));
        let mut domain: Vec<RationalPoly> = mode
            .flow_set()
            .iter()
            .map(RationalPoly::from_f64_poly)
            .collect();
        for (i, &b) in box_halfwidths.iter().enumerate() {
            // b² − xᵢ² ≥ 0
            let mut g = Polynomial::constant(n, b * b);
            let xi = Polynomial::var(n, i);
            g = &g - &(&xi * &xi);
            domain.push(RationalPoly::from_f64_poly(&g));
        }
        // Redundant ball constraint R² − ‖x‖² ≥ 0 (R² = Σ bᵢ²): classic
        // strengthening of Putinar certificates at fixed degree.
        let r2: f64 = box_halfwidths.iter().map(|b| b * b).sum();
        let ball = &Polynomial::constant(n, r2) - &Polynomial::norm_squared(n);
        domain.push(RationalPoly::from_f64_poly(&ball));
        // When the origin lies in the mode's domain, the decrease target
        // vanishes there and the multipliers must too (min degree 1). For
        // saturated modes (origin outside the flow set) the multipliers
        // need constant terms to exploit the violated constraints near 0.
        let origin = vec![0.0; n];
        let origin_in_domain = mode.flow_set().iter().all(|g| g.eval(&origin) >= 0.0);
        let mut exact_opt = opt.exact.clone();
        if origin_in_domain {
            exact_opt.mult_min_degree = exact_opt.mult_min_degree.max(1);
        }
        for (vi, field) in system.flow_vertices(mi).into_iter().enumerate() {
            let field_exact: Vec<RationalPoly> =
                field.iter().map(RationalPoly::from_f64_poly).collect();
            // −V̇ − δ‖x‖², all recomputed in exact arithmetic. The claim
            // is scale-invariant; rescale it so the *margin* (not the
            // coefficients) is O(1) — the interior-slack optimum of a
            // normalized certificate sits near the SDP solver's noise
            // floor otherwise. The margin is grid-estimated (samples only
            // choose the scaling; the proof itself stays exact).
            let vdot = v_exact.lie_derivative(&field_exact);
            let raw = vdot.neg().sub(&RationalPoly::from_f64_poly(&norm2));
            let raw_f64 = raw.to_f64_poly();
            let domain_f64: Vec<Polynomial> =
                domain.iter().map(RationalPoly::to_f64_poly).collect();
            let margin = grid_margin(&raw_f64, &domain_f64, box_halfwidths, certs.degree());
            let scale_exp = if margin > 0.0 {
                (1.0 / margin).log2().round().clamp(-60.0, 60.0) as i32
            } else {
                0
            };
            let target = raw.scale(&cppll_exact::Rational::from_f64(2f64.powi(scale_exp)));
            // Ladder the multiplier degree and the slack shape: different
            // modes need different S-procedure strength (the equilibrium
            // mode is the tightest) and different interior shapes.
            let mut last_err = None;
            let mut proof = None;
            'ladder: for extra in 0..=2u32 {
                for full in [false, true] {
                    let mut attempt = exact_opt.clone();
                    attempt.mult_half_degree = exact_opt.mult_half_degree + extra;
                    attempt.slack_full_basis = full;
                    match prove_nonneg_on_rational(&target, &domain, &attempt) {
                        Ok(pr) => {
                            proof = Some(pr);
                            break 'ladder;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
            }
            match proof {
                Some(proof) => decrease.push(DecreaseClaim {
                    mode: mi,
                    vertex: vi,
                    proof,
                }),
                None => unproven.push((
                    mi,
                    vi,
                    last_err
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "no attempt ran".into()),
                )),
            }
        }
    }
    Ok(ExactificationReport {
        positivity,
        decrease,
        unproven,
    })
}

/// Grid estimate of `min expr(x)/w(x)` over the boxed domain, where `w`
/// mimics the main Gram's slack polynomial (`‖x‖² + ‖x‖^deg`).
fn grid_margin(expr: &Polynomial, domain: &[Polynomial], boxh: &[f64], degree: u32) -> f64 {
    let n = boxh.len();
    let steps = if n <= 3 { 13 } else { 7 };
    let mut worst = f64::INFINITY;
    let mut idx = vec![0usize; n];
    loop {
        let x: Vec<f64> = idx
            .iter()
            .zip(boxh)
            .map(|(&i, &b)| -b + 2.0 * b * (i as f64) / ((steps - 1) as f64))
            .collect();
        let r2: f64 = x.iter().map(|v| v * v).sum();
        if r2 > 1e-6 && domain.iter().all(|g| g.eval(&x) >= 0.0) {
            let w = r2 + r2.powi((degree / 2) as i32);
            worst = worst.min(expr.eval(&x) / w);
        }
        let mut k = 0;
        loop {
            if k == n {
                return if worst.is_finite() { worst } else { 0.0 };
            }
            idx[k] += 1;
            if idx[k] < steps {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lyapunov::{LyapunovOptions, LyapunovSynthesizer};
    use cppll_hybrid::Mode;

    #[test]
    fn linear_system_certificate_exactifies() {
        // ẋ = −x + y, ẏ = −y: synthesise numerically, certify exactly.
        let f = vec![
            Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
            Polynomial::from_terms(2, &[(&[0, 1], -1.0)]),
        ];
        let sys = HybridSystem::new(2, vec![Mode::new("m", f)], vec![]);
        let certs = LyapunovSynthesizer::new(&sys)
            .synthesize(&LyapunovOptions::degree(2))
            .expect("stable");
        let report = exactify_certificates(&sys, &certs, &[2.0, 2.0], &ExactifyOptions::default())
            .expect("exactifiable");
        assert_eq!(report.positivity.len(), 1);
        assert_eq!(report.decrease.len(), 1);
        assert_eq!(report.claims(), 2);
        // Audit: the positivity proof re-verifies against the exact target.
        let v = certs.for_mode(0);
        let delta = ExactifyOptions::default().delta;
        let eps_pos =
            &Polynomial::norm_squared(2).scale(delta) + &Polynomial::norm_squared(2).scale(delta); // degree 2: both terms are ‖x‖²
        let target = v - &eps_pos;
        assert!(report.positivity[0].is_valid_for(&target));
    }

    #[test]
    fn two_mode_system_exactifies_per_mode() {
        let right = vec![
            Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
            Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
        ];
        let left = vec![
            Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
            Polynomial::from_terms(2, &[(&[0, 1], -1.0)]),
        ];
        let x = Polynomial::var(2, 0);
        let sys = HybridSystem::new(
            2,
            vec![
                Mode::new("r", right).with_flow_set(vec![x.clone()]),
                Mode::new("l", left).with_flow_set(vec![x.scale(-1.0)]),
            ],
            vec![],
        );
        let certs = LyapunovSynthesizer::new(&sys)
            .synthesize(&LyapunovOptions::degree(2))
            .expect("stable");
        let report = exactify_certificates(&sys, &certs, &[2.0, 2.0], &ExactifyOptions::default())
            .expect("exactifiable");
        // Common certificate ⇒ one positivity proof; decrease per mode.
        assert_eq!(report.positivity.len(), 1);
        assert_eq!(report.decrease.len(), 2);
    }
}
