//! Crash-safe run journal and resume for the verification pipeline.
//!
//! A checkpointed run writes each *completed* pipeline stage — the Lyapunov
//! certificates, the maximised level set, every advection step's front, and
//! each escape-stage mode outcome — to an append-only JSONL journal under
//! `<runs-dir>/<run-id>/journal.jsonl`. Every append rewrites the whole
//! file to a temp path and renames it into place, so a crash at any instant
//! leaves either the previous or the new journal on disk, never a torn one.
//!
//! The journal's header carries a fingerprint of the verification problem
//! (system, boundary, initial set, and the math-relevant pipeline options).
//! On resume the fingerprint must match — a journal from a different
//! problem or different options is rejected as [`CheckpointError::Stale`]
//! rather than silently replayed into a wrong report.
//!
//! Every stage record also snapshots the cumulative solve-ledger statistics
//! and timings at the instant it was written. Resume absorbs the last
//! snapshot into the fresh run's ledger, so a resumed report counts the
//! pre-crash work too and its totals equal an uninterrupted run's.
//!
//! Floating-point payloads round-trip bit-exactly through `cppll-json`
//! (shortest-round-trip formatting), which is what makes a resumed run's
//! certificates *bit-identical* to an uninterrupted run's: replay feeds the
//! exact same numbers into the exact same downstream arithmetic.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};

use cppll_json::{decode, DecodeError, ObjectBuilder, ToJson, Value};
use cppll_poly::Polynomial;
use cppll_sdp::{SdpSolution, SolveTimings};
use cppll_sos::{LedgerStats, ReductionStats};

use crate::escape::EscapeCertificate;
use crate::lyapunov::CertificateScheme;
use crate::pipeline::PipelineOptions;
use crate::region::Region;

/// Journal format version (bumped on incompatible record changes).
const JOURNAL_VERSION: u64 = 1;

/// Where and how a pipeline run journals its progress.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Identifier of the run; the journal lives in `<dir>/<run_id>/`.
    pub run_id: String,
    /// Base directory for run journals.
    pub dir: PathBuf,
    /// Replay an existing journal for this run id instead of starting
    /// over. With `resume = false` an existing journal is truncated.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpointing for a fresh run under the default `target/runs` dir.
    pub fn new(run_id: impl Into<String>) -> Self {
        CheckpointConfig {
            run_id: run_id.into(),
            dir: PathBuf::from("target/runs"),
            resume: false,
        }
    }

    /// Overrides the base runs directory (builder style).
    #[must_use]
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = dir.into();
        self
    }

    /// Marks the run as a resume of an existing journal (builder style).
    #[must_use]
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Directory holding this run's artifacts.
    pub fn run_dir(&self) -> PathBuf {
        self.dir.join(&self.run_id)
    }

    /// Path of this run's journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.run_dir().join("journal.jsonl")
    }
}

/// Why a journal could not be written or replayed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing the journal.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The journal exists but cannot be parsed back into records.
    Corrupt {
        /// 1-based journal line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The journal belongs to a different problem or different options.
    Stale {
        /// Fingerprint of the current problem.
        expected: String,
        /// Fingerprint recorded in the journal header.
        found: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "journal I/O failed at {}: {source}", path.display())
            }
            CheckpointError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
            CheckpointError::Stale { expected, found } => write!(
                f,
                "journal is stale: problem fingerprint {expected} does not \
                 match journaled {found} (changed spec or options?)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(path: &Path, source: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Cumulative solve-ledger statistics at the instant a record was written.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LedgerSnapshot {
    /// Cumulative supervised-solve counts.
    pub stats: LedgerStats,
    /// Cumulative per-stage solver timings.
    pub timings: SolveTimings,
    /// Cumulative problem-reduction totals.
    pub reduction: ReductionStats,
}

impl ToJson for LedgerSnapshot {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("stats", self.stats)
            .field("timings", self.timings)
            .field("reduction", self.reduction)
            .build()
    }
}

impl cppll_json::FromJson for LedgerSnapshot {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        Ok(LedgerSnapshot {
            stats: decode::required(v, "stats")?,
            timings: decode::required(v, "timings")?,
            // Journals written before problem reduction existed cannot be
            // resumed anyway (the fingerprint now covers the reduction
            // options), but stay lenient for hand-edited journals.
            reduction: decode::optional(v, "reduction")?.unwrap_or_default(),
        })
    }
}

fn scheme_name(s: CertificateScheme) -> &'static str {
    match s {
        CertificateScheme::Common => "common",
        CertificateScheme::Multiple => "multiple",
    }
}

fn parse_scheme(name: &str) -> Option<CertificateScheme> {
    match name {
        "common" => Some(CertificateScheme::Common),
        "multiple" => Some(CertificateScheme::Multiple),
        _ => None,
    }
}

impl ToJson for CertificateScheme {
    fn to_json(&self) -> Value {
        Value::String(scheme_name(*self).to_string())
    }
}

impl cppll_json::FromJson for CertificateScheme {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        let name = decode::string(v)?;
        parse_scheme(name)
            .ok_or_else(|| DecodeError::new(format!("unknown certificate scheme '{name}'")))
    }
}

impl ToJson for EscapeCertificate {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("e", &self.e)
            .field("mode", self.mode)
            .field("epsilon", self.epsilon)
            .build()
    }
}

impl cppll_json::FromJson for EscapeCertificate {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        Ok(EscapeCertificate {
            e: decode::required(v, "e")?,
            mode: decode::required(v, "mode")?,
            epsilon: decode::required(v, "epsilon")?,
        })
    }
}

/// One completed pipeline stage, exactly as journaled.
#[derive(Debug, Clone)]
pub enum StageRecord {
    /// The synthesised Lyapunov certificates (stage "lyapunov").
    Lyapunov {
        /// Per-mode certificates.
        vs: Vec<Polynomial>,
        /// Certificate degree.
        degree: u32,
        /// Synthesis margin.
        epsilon: f64,
        /// Certificate scheme.
        scheme: CertificateScheme,
        /// Cumulative ledger snapshot.
        ledger: LedgerSnapshot,
    },
    /// The maximised level set (stage "levelset").
    LevelSet {
        /// Certified level value.
        level: f64,
        /// Per-mode attractive-invariant polynomials `Vᵢ − c`.
        ai_polys: Vec<Polynomial>,
        /// Bisection probes performed.
        probes: usize,
        /// Cumulative ledger snapshot.
        ledger: LedgerSnapshot,
    },
    /// One advection step (stage "advection").
    AdvectionStep {
        /// 0-based step index.
        iter: usize,
        /// Advected front pieces after this step.
        pieces: Vec<Polynomial>,
        /// Taylor truncation error estimate.
        taylor_error: f64,
        /// Guard-consistency mismatch.
        guard_mismatch: f64,
        /// Whether the front was certified inside the AI after this step.
        included: bool,
        /// Per-mode final SDP iterates of the inclusion probes — the
        /// warm-start seeds for the next step's structurally-identical
        /// probes. `None` for modes the short-circuiting check skipped.
        warm: Vec<Option<SdpSolution>>,
        /// Cumulative ledger snapshot.
        ledger: LedgerSnapshot,
    },
    /// One escape-stage mode outcome (stage "escape").
    Escape {
        /// Mode index.
        mode: usize,
        /// `true` when the mode's piece was already inside the AI (no
        /// escape certificate needed).
        included: bool,
        /// The escape certificate, when one was synthesised.
        certificate: Option<EscapeCertificate>,
        /// Cumulative ledger snapshot.
        ledger: LedgerSnapshot,
    },
}

impl StageRecord {
    /// The cumulative ledger snapshot taken when the record was written.
    pub fn ledger(&self) -> &LedgerSnapshot {
        match self {
            StageRecord::Lyapunov { ledger, .. }
            | StageRecord::LevelSet { ledger, .. }
            | StageRecord::AdvectionStep { ledger, .. }
            | StageRecord::Escape { ledger, .. } => ledger,
        }
    }

    /// Stable record-type tag used in the journal.
    pub fn tag(&self) -> &'static str {
        match self {
            StageRecord::Lyapunov { .. } => "lyapunov",
            StageRecord::LevelSet { .. } => "levelset",
            StageRecord::AdvectionStep { .. } => "advection-step",
            StageRecord::Escape { .. } => "escape",
        }
    }
}

impl ToJson for StageRecord {
    fn to_json(&self) -> Value {
        let b = ObjectBuilder::new().field("record", self.tag());
        match self {
            StageRecord::Lyapunov {
                vs,
                degree,
                epsilon,
                scheme,
                ledger,
            } => b
                .field("vs", vs)
                .field("degree", *degree)
                .field("epsilon", *epsilon)
                .field("scheme", *scheme)
                .field("ledger", *ledger)
                .build(),
            StageRecord::LevelSet {
                level,
                ai_polys,
                probes,
                ledger,
            } => b
                .field("level", *level)
                .field("ai_polys", ai_polys)
                .field("probes", *probes)
                .field("ledger", *ledger)
                .build(),
            StageRecord::AdvectionStep {
                iter,
                pieces,
                taylor_error,
                guard_mismatch,
                included,
                warm,
                ledger,
            } => b
                .field("iter", *iter)
                .field("pieces", pieces)
                .field("taylor_error", *taylor_error)
                .field("guard_mismatch", *guard_mismatch)
                .field("included", *included)
                .field("warm", warm)
                .field("ledger", *ledger)
                .build(),
            StageRecord::Escape {
                mode,
                included,
                certificate,
                ledger,
            } => b
                .field("mode", *mode)
                .field("included", *included)
                .field("certificate", certificate)
                .field("ledger", *ledger)
                .build(),
        }
    }
}

impl cppll_json::FromJson for StageRecord {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        let tag: String = decode::required(v, "record")?;
        match tag.as_str() {
            "lyapunov" => Ok(StageRecord::Lyapunov {
                vs: decode::required(v, "vs")?,
                degree: decode::required(v, "degree")?,
                epsilon: decode::required(v, "epsilon")?,
                scheme: decode::required(v, "scheme")?,
                ledger: decode::required(v, "ledger")?,
            }),
            "levelset" => Ok(StageRecord::LevelSet {
                level: decode::required(v, "level")?,
                ai_polys: decode::required(v, "ai_polys")?,
                probes: decode::required(v, "probes")?,
                ledger: decode::required(v, "ledger")?,
            }),
            "advection-step" => Ok(StageRecord::AdvectionStep {
                iter: decode::required(v, "iter")?,
                pieces: decode::required(v, "pieces")?,
                taylor_error: decode::required(v, "taylor_error")?,
                guard_mismatch: decode::required(v, "guard_mismatch")?,
                included: decode::required(v, "included")?,
                warm: decode::required(v, "warm")?,
                ledger: decode::required(v, "ledger")?,
            }),
            "escape" => Ok(StageRecord::Escape {
                mode: decode::required(v, "mode")?,
                included: decode::required(v, "included")?,
                certificate: decode::required(v, "certificate")?,
                ledger: decode::required(v, "ledger")?,
            }),
            other => Err(DecodeError::new(format!(
                "unknown journal record type '{other}'"
            ))),
        }
    }
}

// ---- fingerprint --------------------------------------------------------

/// FNV-1a 64-bit hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hex rendering of a fingerprint, as stored in journal headers.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Fingerprint of a verification problem: the hybrid system, the boundary
/// and initial set, and every *math-relevant* pipeline option (degrees,
/// margins, step sizes). Resilience knobs — retries, timeouts, thread
/// counts, fault plans — and the checkpoint config itself are deliberately
/// excluded: they change how a run executes, not what it computes.
pub fn fingerprint(
    system: &cppll_hybrid::HybridSystem,
    boundary: &[Polynomial],
    initial: &Region,
    opt: &PipelineOptions,
) -> u64 {
    let modes: Vec<Value> = system
        .modes()
        .iter()
        .map(|m| {
            ObjectBuilder::new()
                .field("flow", m.flow())
                .field("flow_set", m.flow_set())
                .build()
        })
        .collect();
    let jumps: Vec<Value> = system
        .jumps()
        .iter()
        .map(|j| {
            ObjectBuilder::new()
                .field("from", j.from)
                .field("to", j.to)
                .field("guard", &j.guard)
                .field("guard_eq", &j.guard_eq)
                .field("reset", &j.reset)
                .build()
        })
        .collect();
    let robust = match opt.lyapunov.robust {
        crate::lyapunov::RobustEncoding::Vertices => "vertices",
        crate::lyapunov::RobustEncoding::SProcedure => "s-procedure",
    };
    let doc = ObjectBuilder::new()
        .field("version", JOURNAL_VERSION)
        .field("nstates", system.nstates())
        .field("modes", modes)
        .field("jumps", jumps)
        .field("param_lo", system.params().lo())
        .field("param_hi", system.params().hi())
        .field("boundary", boundary)
        .field("initial_level", initial.level())
        .field("initial_side", initial.side())
        .field(
            "lyapunov",
            ObjectBuilder::new()
                .field("degree", opt.lyapunov.degree)
                .field("epsilon", opt.lyapunov.epsilon)
                .field(
                    "multiplier_half_degree",
                    opt.lyapunov.multiplier_half_degree,
                )
                .field("scheme", opt.lyapunov.scheme)
                .field("robust", robust)
                .build(),
        )
        .field(
            "level",
            ObjectBuilder::new()
                .field("tolerance", opt.level.tolerance)
                .field("hi", opt.level.hi)
                .field("mult_half_degree", opt.level.mult_half_degree)
                .build(),
        )
        .field(
            "advection",
            ObjectBuilder::new()
                .field("h", opt.advection.h)
                .field("taylor_order", opt.advection.taylor_order)
                .field("degree", opt.advection.degree)
                .field("gamma_tol", opt.advection.gamma_tol)
                .field("gamma_max", opt.advection.gamma_max)
                .field("mult_half_degree", opt.advection.mult_half_degree)
                .field("error_box", &opt.advection.error_box)
                .field("bounding", &opt.advection.bounding)
                .build(),
        )
        .field(
            "escape",
            ObjectBuilder::new()
                .field("degree", opt.escape.degree)
                .field("epsilon", opt.escape.epsilon)
                .field("mult_half_degree", opt.escape.mult_half_degree)
                .build(),
        )
        .field("max_advection_iters", opt.max_advection_iters)
        .field(
            "reduction",
            ObjectBuilder::new()
                .field("newton", opt.reduction.newton)
                .field("symmetry", opt.reduction.symmetry)
                .build(),
        )
        .field("inclusion_margin", opt.inclusion_margin)
        .field("inclusion_mult_half_degree", opt.inclusion_mult_half_degree)
        .build();
    fnv1a(doc.to_compact_string().as_bytes())
}

// ---- the journal --------------------------------------------------------

/// The on-disk journal of one run: a header line plus one line per
/// completed stage record. Appends rewrite the whole file atomically
/// (write temp, rename), which a few dozen kilobyte-scale records make
/// cheap and which keeps every intermediate state a valid journal.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    lines: Vec<String>,
}

impl RunJournal {
    fn header_line(run_id: &str, fp: u64) -> String {
        ObjectBuilder::new()
            .field("record", "header")
            .field("version", JOURNAL_VERSION)
            .field("run_id", run_id)
            .field("fingerprint", fingerprint_hex(fp))
            .build()
            .to_compact_string()
    }

    /// Opens the journal per the config: resuming parses and returns any
    /// journaled records (after validating header and fingerprint); not
    /// resuming truncates to a fresh header.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failures,
    /// [`CheckpointError::Corrupt`] on unparseable journals, and
    /// [`CheckpointError::Stale`] when the journaled fingerprint differs.
    pub fn open(
        config: &CheckpointConfig,
        fp: u64,
    ) -> Result<(RunJournal, Vec<StageRecord>), CheckpointError> {
        let dir = config.run_dir();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let path = config.journal_path();
        if config.resume && path.exists() {
            let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
            let mut lines = Vec::new();
            let mut records = Vec::new();
            for (i, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
                let v = cppll_json::parse(line).map_err(|e| CheckpointError::Corrupt {
                    line: i + 1,
                    message: e.to_string(),
                })?;
                if i == 0 {
                    let tag = v.get("record").and_then(Value::as_str).unwrap_or("");
                    if tag != "header" {
                        return Err(CheckpointError::Corrupt {
                            line: 1,
                            message: format!("expected header record, found '{tag}'"),
                        });
                    }
                    let found = v
                        .get("fingerprint")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string();
                    let expected = fingerprint_hex(fp);
                    if found != expected {
                        return Err(CheckpointError::Stale { expected, found });
                    }
                } else {
                    let rec = cppll_json::FromJson::from_json(&v).map_err(|e| {
                        CheckpointError::Corrupt {
                            line: i + 1,
                            message: e.to_string(),
                        }
                    })?;
                    records.push(rec);
                }
                lines.push(line.to_string());
            }
            if lines.is_empty() {
                // Empty file: treat as a fresh run.
                let mut j = RunJournal {
                    path,
                    lines: vec![Self::header_line(&config.run_id, fp)],
                };
                j.write_atomic()?;
                return Ok((j, Vec::new()));
            }
            Ok((RunJournal { path, lines }, records))
        } else {
            let mut j = RunJournal {
                path,
                lines: vec![Self::header_line(&config.run_id, fp)],
            };
            j.write_atomic()?;
            Ok((j, Vec::new()))
        }
    }

    /// Appends a stage record and atomically rewrites the file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failures.
    pub fn append(&mut self, record: &StageRecord) -> Result<(), CheckpointError> {
        self.lines.push(record.to_json().to_compact_string());
        self.write_atomic()
    }

    fn write_atomic(&mut self) -> Result<(), CheckpointError> {
        let tmp = self.path.with_extension("jsonl.tmp");
        let mut body = self.lines.join("\n");
        body.push('\n');
        std::fs::write(&tmp, body).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, e))
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---- pipeline-facing cursor ---------------------------------------------

/// How a checkpointed run went: replayed vs freshly computed stages and the
/// warm-started solve count. Attached to the verification report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResumeSummary {
    /// The run id, when checkpointing was enabled.
    pub run_id: Option<String>,
    /// Stage records replayed from the journal instead of recomputed.
    pub stages_replayed: usize,
    /// Stage records computed (and journaled) in this process.
    pub stages_fresh: usize,
    /// SDP solves that accepted a warm-start seed during this process.
    pub warm_started_solves: usize,
}

/// Replay cursor plus journal writer threaded through a checkpointed
/// pipeline run.
pub(crate) struct Checkpointer {
    journal: RunJournal,
    replay: VecDeque<StageRecord>,
    run_id: String,
    pub stages_replayed: usize,
    pub stages_fresh: usize,
    pub warm_started_solves: usize,
}

impl Checkpointer {
    /// Opens (or resumes) the journal for a run.
    pub fn open(config: &CheckpointConfig, fp: u64) -> Result<Self, CheckpointError> {
        let (journal, records) = RunJournal::open(config, fp)?;
        Ok(Checkpointer {
            journal,
            replay: records.into(),
            run_id: config.run_id.clone(),
            stages_replayed: 0,
            stages_fresh: 0,
            warm_started_solves: 0,
        })
    }

    /// The cumulative ledger snapshot of the last journaled record — the
    /// prior work a resumed ledger must absorb. `None` on a fresh journal.
    pub fn prior_snapshot(&self) -> Option<LedgerSnapshot> {
        self.replay.back().map(|r| *r.ledger())
    }

    /// Peeks at the next record to replay.
    pub fn peek(&self) -> Option<&StageRecord> {
        self.replay.front()
    }

    /// Consumes the next replayed record.
    pub fn take(&mut self) -> Option<StageRecord> {
        let r = self.replay.pop_front();
        if r.is_some() {
            self.stages_replayed += 1;
        }
        r
    }

    /// Journals a freshly computed record.
    pub fn record(&mut self, rec: StageRecord) -> Result<(), CheckpointError> {
        self.stages_fresh += 1;
        self.journal.append(&rec)
    }

    /// The summary attached to the final report.
    pub fn summary(&self) -> ResumeSummary {
        ResumeSummary {
            run_id: Some(self.run_id.clone()),
            stages_replayed: self.stages_replayed,
            stages_fresh: self.stages_fresh,
            warm_started_solves: self.warm_started_solves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_config(name: &str, resume: bool) -> CheckpointConfig {
        let dir = std::env::temp_dir().join("cppll-checkpoint-tests");
        CheckpointConfig {
            run_id: name.to_string(),
            dir,
            resume,
        }
    }

    fn sample_record() -> StageRecord {
        StageRecord::LevelSet {
            level: 0.125,
            ai_polys: vec![Polynomial::from_terms(
                2,
                &[(&[2, 0], 1.0), (&[0, 2], 1.0), (&[0, 0], -0.125)],
            )],
            probes: 17,
            ledger: LedgerSnapshot {
                stats: LedgerStats {
                    solves: 3,
                    attempts: 4,
                    retries: 1,
                    failures: 0,
                },
                timings: SolveTimings {
                    total: 1.5,
                    ..Default::default()
                },
                reduction: ReductionStats {
                    grams: 2,
                    basis_before: 12,
                    basis_after: 9,
                    blocks: 4,
                    max_block: 5,
                },
            },
        }
    }

    #[test]
    fn journal_round_trips_records() {
        let cfg = tmp_config("round-trip", false);
        let (mut j, replayed) = RunJournal::open(&cfg, 0xabcd).unwrap();
        assert!(replayed.is_empty());
        j.append(&sample_record()).unwrap();

        let cfg = tmp_config("round-trip", true);
        let (_, replayed) = RunJournal::open(&cfg, 0xabcd).unwrap();
        assert_eq!(replayed.len(), 1);
        match &replayed[0] {
            StageRecord::LevelSet {
                level,
                ai_polys,
                probes,
                ledger,
            } => {
                assert_eq!(level.to_bits(), 0.125f64.to_bits());
                assert_eq!(ai_polys.len(), 1);
                assert_eq!(*probes, 17);
                assert_eq!(ledger.stats.attempts, 4);
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn stale_fingerprint_is_rejected() {
        let cfg = tmp_config("stale", false);
        let (mut j, _) = RunJournal::open(&cfg, 1).unwrap();
        j.append(&sample_record()).unwrap();
        let cfg = tmp_config("stale", true);
        match RunJournal::open(&cfg, 2) {
            Err(CheckpointError::Stale { expected, found }) => {
                assert_eq!(expected, fingerprint_hex(2));
                assert_eq!(found, fingerprint_hex(1));
            }
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn non_resume_open_truncates() {
        let cfg = tmp_config("truncate", false);
        let (mut j, _) = RunJournal::open(&cfg, 7).unwrap();
        j.append(&sample_record()).unwrap();
        let (_, replayed) = RunJournal::open(&cfg, 7).unwrap();
        assert!(replayed.is_empty(), "resume=false must start over");
    }

    #[test]
    fn corrupt_journal_is_reported_with_line() {
        let cfg = tmp_config("corrupt", false);
        let (j, _) = RunJournal::open(&cfg, 7).unwrap();
        let path = j.path().to_path_buf();
        std::fs::write(
            &path,
            format!(
                "{}\n{{\"record\":\"advection-step\",\"iter\":0}}\n",
                RunJournal::header_line("corrupt", 7)
            ),
        )
        .unwrap();
        let cfg = tmp_config("corrupt", true);
        match RunJournal::open(&cfg, 7) {
            Err(CheckpointError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn escape_and_advection_records_round_trip_bit_exactly() {
        let warm = Some(SdpSolution {
            status: cppll_sdp::SdpStatus::Optimal,
            x: vec![cppll_linalg::Matrix::identity(2)],
            free: vec![-0.0, 1.0e-300],
            y: vec![2.5],
            s: vec![cppll_linalg::Matrix::identity(2).scale(3.0)],
            primal_objective: 1.0,
            dual_objective: 1.0 - 1e-9,
            primal_infeasibility: 5e-324,
            dual_infeasibility: 0.0,
            gap: 1e-9,
            iterations: 12,
            timings: SolveTimings::default(),
            warm_started: true,
        });
        let rec = StageRecord::AdvectionStep {
            iter: 3,
            pieces: vec![Polynomial::from_terms(1, &[(&[2], 1.0), (&[0], -0.5)])],
            taylor_error: 1.25e-7,
            guard_mismatch: -0.0,
            included: false,
            warm: vec![warm, None],
            ledger: LedgerSnapshot::default(),
        };
        let text = rec.to_json().to_compact_string();
        let back: StageRecord =
            cppll_json::FromJson::from_json(&cppll_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().to_compact_string(), text);
        match back {
            StageRecord::AdvectionStep {
                guard_mismatch,
                warm,
                ..
            } => {
                assert_eq!(guard_mismatch.to_bits(), (-0.0f64).to_bits());
                let w = warm[0].as_ref().unwrap();
                assert_eq!(w.free[0].to_bits(), (-0.0f64).to_bits());
                assert_eq!(w.primal_infeasibility.to_bits(), 5e-324f64.to_bits());
                assert!(warm[1].is_none());
            }
            other => panic!("wrong record: {other:?}"),
        }

        let esc = StageRecord::Escape {
            mode: 1,
            included: false,
            certificate: Some(EscapeCertificate {
                e: Polynomial::from_terms(2, &[(&[1, 0], -1.0)]),
                mode: 1,
                epsilon: 1e-3,
            }),
            ledger: LedgerSnapshot::default(),
        };
        let text = esc.to_json().to_compact_string();
        let back: StageRecord =
            cppll_json::FromJson::from_json(&cppll_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().to_compact_string(), text);
    }
}
