//! Crash-safe run journal and resume for the verification pipeline.
//!
//! A checkpointed run writes each *completed* pipeline stage — the Lyapunov
//! certificates, the maximised level set, every advection step's front, and
//! each escape-stage mode outcome — to an append-only JSONL journal under
//! `<runs-dir>/<run-id>/journal.jsonl`.
//!
//! Each record line is *framed*: `{"crc":"<8 hex>","prev":"<16 hex>",`
//! `"payload":<record>}`, where `crc` is the CRC32 of the previous-record
//! hash plus the payload bytes and `prev` chains each record to the FNV-1a
//! hash of its predecessor's payload (the first record chains to the
//! problem fingerprint). The framing is what makes true O(1) appends safe:
//! a torn final line — the only damage an append-mode crash can cause — is
//! detected on resume and recovered by truncating back to the last valid
//! record ([`JournalRecovery`]), while damage *inside* the file (which no
//! crash of ours can produce) still fails loudly as
//! [`CheckpointError::Corrupt`]. The `--durability safe` knob additionally
//! fsyncs every append and the journal's directory, surviving power loss
//! and not just process death.
//!
//! The journal's header carries a fingerprint of the verification problem
//! (system, boundary, initial set, and the math-relevant pipeline options).
//! On resume the fingerprint must match — a journal from a different
//! problem or different options is rejected as [`CheckpointError::Stale`]
//! rather than silently replayed into a wrong report.
//!
//! Every stage record also snapshots the cumulative solve-ledger statistics
//! and timings at the instant it was written. Resume absorbs the last
//! snapshot into the fresh run's ledger, so a resumed report counts the
//! pre-crash work too and its totals equal an uninterrupted run's.
//!
//! Floating-point payloads round-trip bit-exactly through `cppll-json`
//! (shortest-round-trip formatting), which is what makes a resumed run's
//! certificates *bit-identical* to an uninterrupted run's: replay feeds the
//! exact same numbers into the exact same downstream arithmetic.

use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cppll_json::{decode, DecodeError, ObjectBuilder, ToJson, Value};
use cppll_poly::Polynomial;
use cppll_sdp::{FaultInjector, JournalFault, SdpSolution, SolveTimings};
use cppll_sos::{LedgerStats, ReductionStats};

use crate::escape::EscapeCertificate;
use crate::lyapunov::CertificateScheme;
use crate::pipeline::PipelineOptions;
use crate::region::Region;

/// Journal format version (bumped on incompatible record changes).
/// Version 2 introduced per-record CRC32 framing and the prev-hash chain.
const JOURNAL_VERSION: u64 = 2;

/// How hard the journal tries to survive failures beyond process death.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Durability {
    /// Appends are flushed to the OS but not fsynced. Survives any process
    /// crash (the kernel owns the bytes); a machine-level power loss may
    /// lose the last few records, which resume then recomputes.
    #[default]
    Fast,
    /// Every append is fsynced, and atomic rewrites fsync both the file and
    /// its parent directory around the rename. Survives power loss at the
    /// cost of one fsync per completed stage.
    Safe,
}

impl Durability {
    /// Parses the CLI spelling (`fast` / `safe`).
    pub fn parse(name: &str) -> Option<Durability> {
        match name {
            "fast" => Some(Durability::Fast),
            "safe" => Some(Durability::Safe),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Durability::Fast => "fast",
            Durability::Safe => "safe",
        }
    }
}

/// Where and how a pipeline run journals its progress.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Identifier of the run; the journal lives in `<dir>/<run_id>/`.
    pub run_id: String,
    /// Base directory for run journals.
    pub dir: PathBuf,
    /// Replay an existing journal for this run id instead of starting
    /// over. With `resume = false` an existing journal is truncated.
    pub resume: bool,
    /// Whether appends are fsynced (power-loss durability).
    pub durability: Durability,
}

impl CheckpointConfig {
    /// Checkpointing for a fresh run under the default `target/runs` dir.
    pub fn new(run_id: impl Into<String>) -> Self {
        CheckpointConfig {
            run_id: run_id.into(),
            dir: PathBuf::from("target/runs"),
            resume: false,
            durability: Durability::Fast,
        }
    }

    /// Overrides the base runs directory (builder style).
    #[must_use]
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = dir.into();
        self
    }

    /// Marks the run as a resume of an existing journal (builder style).
    #[must_use]
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Sets the durability level (builder style).
    #[must_use]
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Directory holding this run's artifacts.
    pub fn run_dir(&self) -> PathBuf {
        self.dir.join(&self.run_id)
    }

    /// Path of this run's journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.run_dir().join("journal.jsonl")
    }
}

/// Why a journal could not be written or replayed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing the journal.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The journal exists but cannot be parsed back into records.
    Corrupt {
        /// 1-based journal line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The journal belongs to a different problem or different options.
    Stale {
        /// Fingerprint of the current problem.
        expected: String,
        /// Fingerprint recorded in the journal header.
        found: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "journal I/O failed at {}: {source}", path.display())
            }
            CheckpointError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
            CheckpointError::Stale { expected, found } => write!(
                f,
                "journal is stale: problem fingerprint {expected} does not \
                 match journaled {found} (changed spec or options?)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(path: &Path, source: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Cumulative solve-ledger statistics at the instant a record was written.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LedgerSnapshot {
    /// Cumulative supervised-solve counts.
    pub stats: LedgerStats,
    /// Cumulative per-stage solver timings.
    pub timings: SolveTimings,
    /// Cumulative problem-reduction totals.
    pub reduction: ReductionStats,
}

impl ToJson for LedgerSnapshot {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("stats", self.stats)
            .field("timings", self.timings)
            .field("reduction", self.reduction)
            .build()
    }
}

impl cppll_json::FromJson for LedgerSnapshot {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        Ok(LedgerSnapshot {
            stats: decode::required(v, "stats")?,
            timings: decode::required(v, "timings")?,
            // Journals written before problem reduction existed cannot be
            // resumed anyway (the fingerprint now covers the reduction
            // options), but stay lenient for hand-edited journals.
            reduction: decode::optional(v, "reduction")?.unwrap_or_default(),
        })
    }
}

fn scheme_name(s: CertificateScheme) -> &'static str {
    match s {
        CertificateScheme::Common => "common",
        CertificateScheme::Multiple => "multiple",
    }
}

fn parse_scheme(name: &str) -> Option<CertificateScheme> {
    match name {
        "common" => Some(CertificateScheme::Common),
        "multiple" => Some(CertificateScheme::Multiple),
        _ => None,
    }
}

impl ToJson for CertificateScheme {
    fn to_json(&self) -> Value {
        Value::String(scheme_name(*self).to_string())
    }
}

impl cppll_json::FromJson for CertificateScheme {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        let name = decode::string(v)?;
        parse_scheme(name)
            .ok_or_else(|| DecodeError::new(format!("unknown certificate scheme '{name}'")))
    }
}

impl ToJson for EscapeCertificate {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("e", &self.e)
            .field("mode", self.mode)
            .field("epsilon", self.epsilon)
            .build()
    }
}

impl cppll_json::FromJson for EscapeCertificate {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        Ok(EscapeCertificate {
            e: decode::required(v, "e")?,
            mode: decode::required(v, "mode")?,
            epsilon: decode::required(v, "epsilon")?,
        })
    }
}

/// One completed pipeline stage, exactly as journaled.
#[derive(Debug, Clone)]
pub enum StageRecord {
    /// The synthesised Lyapunov certificates (stage "lyapunov").
    Lyapunov {
        /// Per-mode certificates.
        vs: Vec<Polynomial>,
        /// Certificate degree.
        degree: u32,
        /// Synthesis margin.
        epsilon: f64,
        /// Certificate scheme.
        scheme: CertificateScheme,
        /// Cumulative ledger snapshot.
        ledger: LedgerSnapshot,
    },
    /// The maximised level set (stage "levelset").
    LevelSet {
        /// Certified level value.
        level: f64,
        /// Per-mode attractive-invariant polynomials `Vᵢ − c`.
        ai_polys: Vec<Polynomial>,
        /// Bisection probes performed.
        probes: usize,
        /// Cumulative ledger snapshot.
        ledger: LedgerSnapshot,
    },
    /// One advection step (stage "advection").
    AdvectionStep {
        /// 0-based step index.
        iter: usize,
        /// Advected front pieces after this step.
        pieces: Vec<Polynomial>,
        /// Taylor truncation error estimate.
        taylor_error: f64,
        /// Guard-consistency mismatch.
        guard_mismatch: f64,
        /// Whether the front was certified inside the AI after this step.
        included: bool,
        /// Per-mode final SDP iterates of the inclusion probes — the
        /// warm-start seeds for the next step's structurally-identical
        /// probes. `None` for modes the short-circuiting check skipped.
        warm: Vec<Option<SdpSolution>>,
        /// Cumulative ledger snapshot.
        ledger: LedgerSnapshot,
    },
    /// One escape-stage mode outcome (stage "escape").
    Escape {
        /// Mode index.
        mode: usize,
        /// `true` when the mode's piece was already inside the AI (no
        /// escape certificate needed).
        included: bool,
        /// The escape certificate, when one was synthesised.
        certificate: Option<EscapeCertificate>,
        /// Cumulative ledger snapshot.
        ledger: LedgerSnapshot,
    },
    /// One solved parameter-sweep cell (stage "sweep-cell") — the unit of
    /// resume for `cppll sweep` atlases. A sweep journal holds only these.
    SweepCell {
        /// Linear cell index (`iy·nx + ix`) in the sweep's full grid.
        cell: usize,
        /// `true` when the cell's verdict was `Inevitable`.
        certified: bool,
        /// Canonical result digest of the cell's report, when one was
        /// produced (Lyapunov infeasibility yields a verdict but no report).
        digest: Option<String>,
        /// Why the cell failed, for uncertified cells.
        reason: Option<String>,
        /// Per-cell problem fingerprint (hex).
        fingerprint: String,
        /// Inclusion solves of the cell that accepted a warm-start seed.
        warm_hits: usize,
        /// Linear index of the certified neighbour whose final iterates
        /// seeded this cell's advection solves, if any.
        seed_from: Option<usize>,
        /// The cell's own final advection iterates — future neighbours'
        /// seeds, journaled so a resumed sweep seeds identically.
        warm: Vec<Option<SdpSolution>>,
        /// Wall-clock seconds spent solving the cell (informational; not
        /// part of the canonical atlas).
        seconds: f64,
        /// The cell's own ledger snapshot (not cumulative across cells).
        ledger: LedgerSnapshot,
    },
}

impl StageRecord {
    /// The cumulative ledger snapshot taken when the record was written.
    pub fn ledger(&self) -> &LedgerSnapshot {
        match self {
            StageRecord::Lyapunov { ledger, .. }
            | StageRecord::LevelSet { ledger, .. }
            | StageRecord::AdvectionStep { ledger, .. }
            | StageRecord::Escape { ledger, .. }
            | StageRecord::SweepCell { ledger, .. } => ledger,
        }
    }

    /// Stable record-type tag used in the journal.
    pub fn tag(&self) -> &'static str {
        match self {
            StageRecord::Lyapunov { .. } => "lyapunov",
            StageRecord::LevelSet { .. } => "levelset",
            StageRecord::AdvectionStep { .. } => "advection-step",
            StageRecord::Escape { .. } => "escape",
            StageRecord::SweepCell { .. } => "sweep-cell",
        }
    }
}

impl ToJson for StageRecord {
    fn to_json(&self) -> Value {
        let b = ObjectBuilder::new().field("record", self.tag());
        match self {
            StageRecord::Lyapunov {
                vs,
                degree,
                epsilon,
                scheme,
                ledger,
            } => b
                .field("vs", vs)
                .field("degree", *degree)
                .field("epsilon", *epsilon)
                .field("scheme", *scheme)
                .field("ledger", *ledger)
                .build(),
            StageRecord::LevelSet {
                level,
                ai_polys,
                probes,
                ledger,
            } => b
                .field("level", *level)
                .field("ai_polys", ai_polys)
                .field("probes", *probes)
                .field("ledger", *ledger)
                .build(),
            StageRecord::AdvectionStep {
                iter,
                pieces,
                taylor_error,
                guard_mismatch,
                included,
                warm,
                ledger,
            } => b
                .field("iter", *iter)
                .field("pieces", pieces)
                .field("taylor_error", *taylor_error)
                .field("guard_mismatch", *guard_mismatch)
                .field("included", *included)
                .field("warm", warm)
                .field("ledger", *ledger)
                .build(),
            StageRecord::Escape {
                mode,
                included,
                certificate,
                ledger,
            } => b
                .field("mode", *mode)
                .field("included", *included)
                .field("certificate", certificate)
                .field("ledger", *ledger)
                .build(),
            StageRecord::SweepCell {
                cell,
                certified,
                digest,
                reason,
                fingerprint,
                warm_hits,
                seed_from,
                warm,
                seconds,
                ledger,
            } => b
                .field("cell", *cell)
                .field("certified", *certified)
                .field("digest", digest)
                .field("reason", reason)
                .field("fingerprint", fingerprint.as_str())
                .field("warm_hits", *warm_hits)
                .field("seed_from", seed_from)
                .field("warm", warm)
                .field("seconds", *seconds)
                .field("ledger", *ledger)
                .build(),
        }
    }
}

impl cppll_json::FromJson for StageRecord {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        let tag: String = decode::required(v, "record")?;
        match tag.as_str() {
            "lyapunov" => Ok(StageRecord::Lyapunov {
                vs: decode::required(v, "vs")?,
                degree: decode::required(v, "degree")?,
                epsilon: decode::required(v, "epsilon")?,
                scheme: decode::required(v, "scheme")?,
                ledger: decode::required(v, "ledger")?,
            }),
            "levelset" => Ok(StageRecord::LevelSet {
                level: decode::required(v, "level")?,
                ai_polys: decode::required(v, "ai_polys")?,
                probes: decode::required(v, "probes")?,
                ledger: decode::required(v, "ledger")?,
            }),
            "advection-step" => Ok(StageRecord::AdvectionStep {
                iter: decode::required(v, "iter")?,
                pieces: decode::required(v, "pieces")?,
                taylor_error: decode::required(v, "taylor_error")?,
                guard_mismatch: decode::required(v, "guard_mismatch")?,
                included: decode::required(v, "included")?,
                warm: decode::required(v, "warm")?,
                ledger: decode::required(v, "ledger")?,
            }),
            "escape" => Ok(StageRecord::Escape {
                mode: decode::required(v, "mode")?,
                included: decode::required(v, "included")?,
                certificate: decode::required(v, "certificate")?,
                ledger: decode::required(v, "ledger")?,
            }),
            "sweep-cell" => Ok(StageRecord::SweepCell {
                cell: decode::required(v, "cell")?,
                certified: decode::required(v, "certified")?,
                digest: decode::required(v, "digest")?,
                reason: decode::required(v, "reason")?,
                fingerprint: decode::required(v, "fingerprint")?,
                warm_hits: decode::required(v, "warm_hits")?,
                seed_from: decode::required(v, "seed_from")?,
                warm: decode::required(v, "warm")?,
                seconds: decode::required(v, "seconds")?,
                ledger: decode::required(v, "ledger")?,
            }),
            other => Err(DecodeError::new(format!(
                "unknown journal record type '{other}'"
            ))),
        }
    }
}

// ---- fingerprint --------------------------------------------------------

/// FNV-1a 64-bit hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hex rendering of a fingerprint, as stored in journal headers.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Fingerprint of a verification problem: the hybrid system, the boundary
/// and initial set, and every *math-relevant* pipeline option (degrees,
/// margins, step sizes). Resilience knobs — retries, timeouts, thread
/// counts, fault plans — and the checkpoint config itself are deliberately
/// excluded: they change how a run executes, not what it computes.
pub fn fingerprint(
    system: &cppll_hybrid::HybridSystem,
    boundary: &[Polynomial],
    initial: &Region,
    opt: &PipelineOptions,
) -> u64 {
    let modes: Vec<Value> = system
        .modes()
        .iter()
        .map(|m| {
            ObjectBuilder::new()
                .field("flow", m.flow())
                .field("flow_set", m.flow_set())
                .build()
        })
        .collect();
    let jumps: Vec<Value> = system
        .jumps()
        .iter()
        .map(|j| {
            ObjectBuilder::new()
                .field("from", j.from)
                .field("to", j.to)
                .field("guard", &j.guard)
                .field("guard_eq", &j.guard_eq)
                .field("reset", &j.reset)
                .build()
        })
        .collect();
    let robust = match opt.lyapunov.robust {
        crate::lyapunov::RobustEncoding::Vertices => "vertices",
        crate::lyapunov::RobustEncoding::SProcedure => "s-procedure",
    };
    let doc = ObjectBuilder::new()
        .field("version", JOURNAL_VERSION)
        .field("nstates", system.nstates())
        .field("modes", modes)
        .field("jumps", jumps)
        .field("param_lo", system.params().lo())
        .field("param_hi", system.params().hi())
        .field("boundary", boundary)
        .field("initial_level", initial.level())
        .field("initial_side", initial.side())
        .field(
            "lyapunov",
            ObjectBuilder::new()
                .field("degree", opt.lyapunov.degree)
                .field("epsilon", opt.lyapunov.epsilon)
                .field(
                    "multiplier_half_degree",
                    opt.lyapunov.multiplier_half_degree,
                )
                .field("scheme", opt.lyapunov.scheme)
                .field("robust", robust)
                .build(),
        )
        .field(
            "level",
            ObjectBuilder::new()
                .field("tolerance", opt.level.tolerance)
                .field("hi", opt.level.hi)
                .field("mult_half_degree", opt.level.mult_half_degree)
                .build(),
        )
        .field(
            "advection",
            ObjectBuilder::new()
                .field("h", opt.advection.h)
                .field("taylor_order", opt.advection.taylor_order)
                .field("degree", opt.advection.degree)
                .field("gamma_tol", opt.advection.gamma_tol)
                .field("gamma_max", opt.advection.gamma_max)
                .field("mult_half_degree", opt.advection.mult_half_degree)
                .field("error_box", &opt.advection.error_box)
                .field("bounding", &opt.advection.bounding)
                .build(),
        )
        .field(
            "escape",
            ObjectBuilder::new()
                .field("degree", opt.escape.degree)
                .field("epsilon", opt.escape.epsilon)
                .field("mult_half_degree", opt.escape.mult_half_degree)
                .build(),
        )
        .field("max_advection_iters", opt.max_advection_iters)
        .field(
            "reduction",
            ObjectBuilder::new()
                .field("mode", opt.reduction.mode.to_string())
                .field("newton", opt.reduction.newton)
                .field("symmetry", opt.reduction.symmetry)
                .field("term_sparsity", opt.reduction.term_sparsity)
                .field("cone", opt.reduction.cone.to_string())
                .build(),
        )
        .field("inclusion_margin", opt.inclusion_margin)
        .field("inclusion_mult_half_degree", opt.inclusion_mult_half_degree)
        .build();
    fnv1a(doc.to_compact_string().as_bytes())
}

// ---- record framing -----------------------------------------------------

/// CRC32 (IEEE, reflected, polynomial 0xEDB88320), computed bitwise — the
/// journal writes one line per completed SDP stage, so table-driven speed
/// would buy nothing.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

const FRAME_CRC: &[u8] = b"{\"crc\":\"";
const FRAME_PREV: &[u8] = b"\",\"prev\":\"";
const FRAME_PAYLOAD: &[u8] = b"\",\"payload\":";

/// Builds one framed journal line (without the trailing newline): the CRC
/// covers the prev-hash hex plus the raw payload bytes, so any bit flip in
/// either is caught, and the prev hash chains this record to its
/// predecessor's payload.
fn frame_line(prev: u64, payload: &str) -> String {
    let prev_hex = fingerprint_hex(prev);
    let mut crc_input = Vec::with_capacity(prev_hex.len() + payload.len());
    crc_input.extend_from_slice(prev_hex.as_bytes());
    crc_input.extend_from_slice(payload.as_bytes());
    let crc = crc32(&crc_input);
    format!(
        "{}{crc:08x}{}{prev_hex}{}{payload}}}",
        std::str::from_utf8(FRAME_CRC).expect("ascii"),
        std::str::from_utf8(FRAME_PREV).expect("ascii"),
        std::str::from_utf8(FRAME_PAYLOAD).expect("ascii"),
    )
}

/// Splits a framed line into (prev-hash hex, raw payload bytes) after
/// verifying the CRC. The frame is parsed positionally — the writer
/// controls the exact byte layout — so the payload is recovered as the
/// exact byte range the CRC was computed over, with no JSON round-trip in
/// between.
fn parse_frame(line: &[u8]) -> Result<(Vec<u8>, Vec<u8>), String> {
    let rest = line
        .strip_prefix(FRAME_CRC)
        .ok_or_else(|| "missing crc frame".to_string())?;
    if rest.len() < 8 + FRAME_PREV.len() + 16 + FRAME_PAYLOAD.len() + 1 {
        return Err("framed record truncated".to_string());
    }
    let (crc_hex, rest) = rest.split_at(8);
    let rest = rest
        .strip_prefix(FRAME_PREV)
        .ok_or_else(|| "missing prev frame".to_string())?;
    let (prev_hex, rest) = rest.split_at(16);
    let rest = rest
        .strip_prefix(FRAME_PAYLOAD)
        .ok_or_else(|| "missing payload frame".to_string())?;
    let payload = rest
        .strip_suffix(b"}")
        .ok_or_else(|| "unterminated framed record".to_string())?;
    let stored = std::str::from_utf8(crc_hex)
        .ok()
        .and_then(|s| u32::from_str_radix(s, 16).ok())
        .ok_or_else(|| "unreadable crc".to_string())?;
    let mut crc_input = Vec::with_capacity(prev_hex.len() + payload.len());
    crc_input.extend_from_slice(prev_hex);
    crc_input.extend_from_slice(payload);
    let actual = crc32(&crc_input);
    if stored != actual {
        return Err(format!("crc mismatch: stored {stored:08x}, computed {actual:08x}"));
    }
    Ok((prev_hex.to_vec(), payload.to_vec()))
}

/// What resume found (and fixed) in a damaged journal tail.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalRecovery {
    /// Torn/corrupt trailing records dropped by truncate-and-continue.
    pub dropped_records: usize,
    /// Bytes truncated off the journal tail.
    pub dropped_bytes: u64,
}

impl JournalRecovery {
    /// Whether any recovery happened.
    pub fn recovered(&self) -> bool {
        self.dropped_records > 0 || self.dropped_bytes > 0
    }
}

// ---- the journal --------------------------------------------------------

/// The on-disk journal of one run: a header line plus one framed line per
/// completed stage record. Records are appended in place (O(1) per stage);
/// the CRC/chain framing plus resume-time tail recovery is what makes the
/// torn-write window of a plain append harmless. Header writes and
/// recovery truncations still go through an atomic temp-file rename.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    /// FNV-1a hash of the last record's payload (the problem fingerprint
    /// when no records exist yet) — the `prev` link of the next record.
    chain: u64,
    durability: Durability,
    fault: Option<Arc<FaultInjector>>,
}

impl RunJournal {
    fn header_line(run_id: &str, fp: u64) -> String {
        ObjectBuilder::new()
            .field("record", "header")
            .field("version", JOURNAL_VERSION)
            .field("run_id", run_id)
            .field("fingerprint", fingerprint_hex(fp))
            .build()
            .to_compact_string()
    }

    /// Attaches a fault injector whose journal-append faults this journal
    /// honours (chaos testing).
    pub fn set_fault(&mut self, fault: Option<Arc<FaultInjector>>) {
        self.fault = fault;
    }

    /// Atomic whole-file write: temp file + rename. With
    /// [`Durability::Safe`], the temp file is fsynced before the rename and
    /// the parent directory after it, so the rename itself survives power
    /// loss.
    fn write_atomic(path: &Path, contents: &[u8], durability: Durability) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(contents).map_err(|e| io_err(&tmp, e))?;
            if durability == Durability::Safe {
                f.sync_all().map_err(|e| io_err(&tmp, e))?;
            }
        }
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        if durability == Durability::Safe {
            if let Some(parent) = path.parent() {
                let d = std::fs::File::open(parent).map_err(|e| io_err(parent, e))?;
                d.sync_all().map_err(|e| io_err(parent, e))?;
            }
        }
        Ok(())
    }

    fn fresh(config: &CheckpointConfig, fp: u64) -> Result<RunJournal, CheckpointError> {
        let path = config.journal_path();
        let mut body = Self::header_line(&config.run_id, fp);
        body.push('\n');
        Self::write_atomic(&path, body.as_bytes(), config.durability)?;
        Ok(RunJournal {
            path,
            chain: fp,
            durability: config.durability,
            fault: None,
        })
    }

    /// Opens the journal per the config: resuming parses and returns any
    /// journaled records (after validating header, fingerprint, CRCs, and
    /// the hash chain); not resuming truncates to a fresh header.
    ///
    /// A damaged *final* line — the only damage a crashed append can leave
    /// — is recovered by truncating back to the last valid record, reported
    /// in the returned [`JournalRecovery`]. Damage anywhere else is
    /// [`CheckpointError::Corrupt`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failures,
    /// [`CheckpointError::Corrupt`] on unrecoverable damage, and
    /// [`CheckpointError::Stale`] when the journaled fingerprint differs.
    pub fn open(
        config: &CheckpointConfig,
        fp: u64,
    ) -> Result<(RunJournal, Vec<StageRecord>, JournalRecovery), CheckpointError> {
        let dir = config.run_dir();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let path = config.journal_path();
        if !(config.resume && path.exists()) {
            return Ok((Self::fresh(config, fp)?, Vec::new(), JournalRecovery::default()));
        }

        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
        // Non-blank lines with their byte ranges, so tail recovery can
        // truncate at an exact offset.
        let mut lines: Vec<(usize, &[u8])> = Vec::new();
        let mut start = 0usize;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                if bytes[start..i].iter().any(|&c| !c.is_ascii_whitespace()) {
                    lines.push((start, &bytes[start..i]));
                }
                start = i + 1;
            }
        }
        if start < bytes.len() && bytes[start..].iter().any(|&c| !c.is_ascii_whitespace()) {
            lines.push((start, &bytes[start..]));
        }
        if lines.is_empty() {
            // Empty file: treat as a fresh run.
            return Ok((Self::fresh(config, fp)?, Vec::new(), JournalRecovery::default()));
        }

        // Header line: corrupt headers are unrecoverable (there is nothing
        // valid to truncate back to).
        let header = std::str::from_utf8(lines[0].1)
            .ok()
            .and_then(|s| cppll_json::parse(s).ok())
            .ok_or_else(|| CheckpointError::Corrupt {
                line: 1,
                message: "unparseable header line".to_string(),
            })?;
        let tag = header.get("record").and_then(Value::as_str).unwrap_or("");
        if tag != "header" {
            return Err(CheckpointError::Corrupt {
                line: 1,
                message: format!("expected header record, found '{tag}'"),
            });
        }
        let found = header
            .get("fingerprint")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let expected = fingerprint_hex(fp);
        if found != expected {
            return Err(CheckpointError::Stale { expected, found });
        }

        // Framed records: walk the chain, stopping at the first bad line.
        let mut records = Vec::new();
        let mut chain = fp;
        let mut bad: Option<(usize, usize, String)> = None; // (line idx, offset, why)
        for (idx, &(offset, line)) in lines.iter().enumerate().skip(1) {
            let outcome = parse_frame(line).and_then(|(prev_hex, payload)| {
                if prev_hex != fingerprint_hex(chain).as_bytes() {
                    return Err(format!(
                        "hash chain broken: expected prev {}, found {}",
                        fingerprint_hex(chain),
                        String::from_utf8_lossy(&prev_hex)
                    ));
                }
                let text = std::str::from_utf8(&payload)
                    .map_err(|e| format!("payload not utf-8: {e}"))?;
                let v = cppll_json::parse(text).map_err(|e| e.to_string())?;
                let rec: StageRecord =
                    cppll_json::FromJson::from_json(&v).map_err(|e| e.to_string())?;
                Ok((rec, fnv1a(&payload)))
            });
            match outcome {
                Ok((rec, next_chain)) => {
                    records.push(rec);
                    chain = next_chain;
                }
                Err(message) => {
                    bad = Some((idx, offset, message));
                    break;
                }
            }
        }

        let mut recovery = JournalRecovery::default();
        if let Some((idx, offset, message)) = bad {
            if idx + 1 < lines.len() {
                // Damage followed by more records: not a torn tail, and
                // silently dropping the suffix would replay a journal that
                // disagrees with what the dead run computed.
                return Err(CheckpointError::Corrupt {
                    line: idx + 1,
                    message,
                });
            }
            // Torn final line: truncate back to the valid prefix and carry
            // on — the dropped stage is simply recomputed.
            recovery.dropped_records = 1;
            recovery.dropped_bytes = (bytes.len() - offset) as u64;
            Self::write_atomic(&path, &bytes[..offset], config.durability)?;
        } else if bytes.last() != Some(&b'\n') {
            // All records valid but the trailing newline was torn off; add
            // it back so the next append starts a fresh line.
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .map_err(|e| io_err(&path, e))?;
            f.write_all(b"\n").map_err(|e| io_err(&path, e))?;
        }

        Ok((
            RunJournal {
                path,
                chain,
                durability: config.durability,
                fault: None,
            },
            records,
            recovery,
        ))
    }

    /// Appends a framed stage record in place.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failures (including an
    /// injected `ENOSPC`).
    pub fn append(&mut self, record: &StageRecord) -> Result<(), CheckpointError> {
        let payload = record.to_json().to_compact_string();
        let mut line = frame_line(self.chain, &payload);
        line.push('\n');

        let fault = self.fault.as_ref().and_then(|f| f.poll_journal_append());
        if let Some(JournalFault::Enospc) = fault {
            return Err(io_err(&self.path, std::io::Error::from_raw_os_error(28)));
        }

        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        if let Some(JournalFault::TornWrite { keep_bytes, then }) = fault {
            // Simulated power loss mid-append: persist only a prefix of the
            // framed line, make sure it is really on disk, then die.
            let keep = keep_bytes.min(line.len());
            f.write_all(&line.as_bytes()[..keep])
                .and_then(|_| f.sync_all())
                .map_err(|e| io_err(&self.path, e))?;
            drop(f);
            FaultInjector::die(then, "torn journal append");
        }
        f.write_all(line.as_bytes()).map_err(|e| io_err(&self.path, e))?;
        if self.durability == Durability::Safe {
            f.sync_data().map_err(|e| io_err(&self.path, e))?;
        }
        self.chain = fnv1a(payload.as_bytes());
        Ok(())
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---- certificate cache ---------------------------------------------------

/// One cached verification result, keyed by the problem fingerprint.
///
/// Stores only the *result summary* (digest, verdict), not certificates: a
/// cache hit answers "this exact problem was already verified, here is the
/// canonical digest" without replaying anything. The full journal remains in
/// the run directory named by `run_id` for audits and replays.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Problem fingerprint (16 hex digits), duplicated into the entry body
    /// so a misfiled entry is detected on lookup.
    pub fingerprint: String,
    /// Canonical result digest ([`VerificationReport::result_digest`]).
    ///
    /// [`VerificationReport::result_digest`]: crate::VerificationReport::result_digest
    pub digest: String,
    /// Whether the verdict certifies inevitability.
    pub verified: bool,
    /// Short verdict rendering (e.g. `"inevitable"`).
    pub verdict: String,
    /// Run id whose journal produced this result.
    pub run_id: String,
    /// Wall-clock seconds the producing run spent.
    pub elapsed_secs: f64,
}

impl ToJson for CacheEntry {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("record", "certificate-cache")
            .field("version", 1u64)
            .field("fingerprint", &self.fingerprint)
            .field("digest", &self.digest)
            .field("verified", self.verified)
            .field("verdict", &self.verdict)
            .field("run_id", &self.run_id)
            .field("elapsed_secs", self.elapsed_secs)
            .build()
    }
}

impl cppll_json::FromJson for CacheEntry {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        let tag: String = decode::required(v, "record")?;
        if tag != "certificate-cache" {
            return Err(DecodeError::new(format!(
                "expected certificate-cache record, found '{tag}'"
            )));
        }
        Ok(CacheEntry {
            fingerprint: decode::required(v, "fingerprint")?,
            digest: decode::required(v, "digest")?,
            verified: decode::required(v, "verified")?,
            verdict: decode::required(v, "verdict")?,
            run_id: decode::required(v, "run_id")?,
            elapsed_secs: decode::required(v, "elapsed_secs")?,
        })
    }
}

/// Monotonic discriminator for cache temp-file names, so two publishers in
/// the same process never share a temp path.
static CACHE_TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Filesystem-backed cache of verification results keyed by problem
/// fingerprint — one JSON file per fingerprint under a cache directory
/// (conventionally `<runs-dir>/cache/`).
///
/// Concurrency model: publishers write a *uniquely named* temp file and
/// `rename(2)` it over the entry. Renames are atomic, and two publishers of
/// the same fingerprint are writing byte-identical result summaries (the
/// digest is canonical), so last-write-wins leaves the entry bit-identical
/// no matter how the race resolves. Readers either see a complete old entry,
/// a complete new entry, or no entry — never a torn one.
#[derive(Debug, Clone)]
pub struct CertificateCache {
    dir: PathBuf,
    durability: Durability,
}

impl CertificateCache {
    /// A cache rooted at `dir` (created lazily on first publish).
    pub fn new(dir: impl Into<PathBuf>, durability: Durability) -> Self {
        CertificateCache {
            dir: dir.into(),
            durability,
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry file a fingerprint maps to.
    pub fn entry_path(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{}.json", fingerprint_hex(fp)))
    }

    /// Looks up a fingerprint. Unreadable, unparseable, or misfiled entries
    /// are treated as misses — the cache is advisory; the journals stay the
    /// source of truth.
    pub fn lookup(&self, fp: u64) -> Option<CacheEntry> {
        let text = std::fs::read_to_string(self.entry_path(fp)).ok()?;
        let v = cppll_json::parse(&text).ok()?;
        let entry: CacheEntry = cppll_json::FromJson::from_json(&v).ok()?;
        (entry.fingerprint == fingerprint_hex(fp)).then_some(entry)
    }

    /// Publishes an entry atomically (unique temp file + rename; with
    /// [`Durability::Safe`] the temp file is fsynced before the rename and
    /// the directory after it). An injected [`JournalFault::Enospc`] aborts
    /// the publish before any byte reaches the entry path, leaving prior
    /// entries untouched.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failures (including the
    /// injected `ENOSPC`).
    pub fn publish(
        &self,
        fp: u64,
        entry: &CacheEntry,
        fault: Option<&FaultInjector>,
    ) -> Result<(), CheckpointError> {
        let path = self.entry_path(fp);
        if let Some(JournalFault::Enospc) = fault.and_then(|f| f.poll_journal_append()) {
            return Err(io_err(&path, std::io::Error::from_raw_os_error(28)));
        }
        std::fs::create_dir_all(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        let seq = CACHE_TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".{}.{}-{}.tmp",
            fingerprint_hex(fp),
            std::process::id(),
            seq
        ));
        let mut body = entry.to_json().to_compact_string();
        body.push('\n');
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(body.as_bytes()).map_err(|e| io_err(&tmp, e))?;
            if self.durability == Durability::Safe {
                f.sync_all().map_err(|e| io_err(&tmp, e))?;
            }
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        if self.durability == Durability::Safe {
            let d = std::fs::File::open(&self.dir).map_err(|e| io_err(&self.dir, e))?;
            d.sync_all().map_err(|e| io_err(&self.dir, e))?;
        }
        Ok(())
    }
}

// ---- pipeline-facing cursor ---------------------------------------------

/// How a checkpointed run went: replayed vs freshly computed stages and the
/// warm-started solve count. Attached to the verification report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResumeSummary {
    /// The run id, when checkpointing was enabled.
    pub run_id: Option<String>,
    /// Stage records replayed from the journal instead of recomputed.
    pub stages_replayed: usize,
    /// Stage records computed (and journaled) in this process.
    pub stages_fresh: usize,
    /// SDP solves that accepted a warm-start seed during this process.
    pub warm_started_solves: usize,
    /// Torn trailing journal records dropped by self-healing on resume.
    pub journal_recovered_records: usize,
}

/// Replay cursor plus journal writer threaded through a checkpointed
/// pipeline run.
pub(crate) struct Checkpointer {
    journal: RunJournal,
    replay: VecDeque<StageRecord>,
    run_id: String,
    pub stages_replayed: usize,
    pub stages_fresh: usize,
    pub warm_started_solves: usize,
    /// What tail recovery dropped when the journal was opened.
    pub recovery: JournalRecovery,
}

impl Checkpointer {
    /// Opens (or resumes) the journal for a run, wiring the run's fault
    /// injector (if any) into journal appends.
    pub fn open(
        config: &CheckpointConfig,
        fp: u64,
        fault: Option<Arc<FaultInjector>>,
    ) -> Result<Self, CheckpointError> {
        let (mut journal, records, recovery) = RunJournal::open(config, fp)?;
        journal.set_fault(fault);
        Ok(Checkpointer {
            journal,
            replay: records.into(),
            run_id: config.run_id.clone(),
            stages_replayed: 0,
            stages_fresh: 0,
            warm_started_solves: 0,
            recovery,
        })
    }

    /// The cumulative ledger snapshot of the last journaled record — the
    /// prior work a resumed ledger must absorb. `None` on a fresh journal.
    pub fn prior_snapshot(&self) -> Option<LedgerSnapshot> {
        self.replay.back().map(|r| *r.ledger())
    }

    /// Peeks at the next record to replay.
    pub fn peek(&self) -> Option<&StageRecord> {
        self.replay.front()
    }

    /// Consumes the next replayed record.
    pub fn take(&mut self) -> Option<StageRecord> {
        let r = self.replay.pop_front();
        if r.is_some() {
            self.stages_replayed += 1;
        }
        r
    }

    /// Journals a freshly computed record.
    pub fn record(&mut self, rec: StageRecord) -> Result<(), CheckpointError> {
        self.stages_fresh += 1;
        self.journal.append(&rec)
    }

    /// The summary attached to the final report.
    pub fn summary(&self) -> ResumeSummary {
        ResumeSummary {
            run_id: Some(self.run_id.clone()),
            stages_replayed: self.stages_replayed,
            stages_fresh: self.stages_fresh,
            warm_started_solves: self.warm_started_solves,
            journal_recovered_records: self.recovery.dropped_records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_config(name: &str, resume: bool) -> CheckpointConfig {
        let dir = std::env::temp_dir().join("cppll-checkpoint-tests");
        CheckpointConfig {
            run_id: name.to_string(),
            dir,
            resume,
            durability: Durability::Fast,
        }
    }

    fn sample_record() -> StageRecord {
        StageRecord::LevelSet {
            level: 0.125,
            ai_polys: vec![Polynomial::from_terms(
                2,
                &[(&[2, 0], 1.0), (&[0, 2], 1.0), (&[0, 0], -0.125)],
            )],
            probes: 17,
            ledger: LedgerSnapshot {
                stats: LedgerStats {
                    solves: 3,
                    attempts: 4,
                    retries: 1,
                    failures: 0,
                },
                timings: SolveTimings {
                    total: 1.5,
                    ..Default::default()
                },
                reduction: ReductionStats {
                    grams: 2,
                    basis_before: 12,
                    basis_after: 9,
                    blocks: 4,
                    max_block: 5,
                    ..Default::default()
                },
            },
        }
    }

    #[test]
    fn journal_round_trips_records() {
        let cfg = tmp_config("round-trip", false);
        let (mut j, replayed, _) = RunJournal::open(&cfg, 0xabcd).unwrap();
        assert!(replayed.is_empty());
        j.append(&sample_record()).unwrap();

        let cfg = tmp_config("round-trip", true);
        let (_, replayed, recovery) = RunJournal::open(&cfg, 0xabcd).unwrap();
        assert!(!recovery.recovered());
        assert_eq!(replayed.len(), 1);
        match &replayed[0] {
            StageRecord::LevelSet {
                level,
                ai_polys,
                probes,
                ledger,
            } => {
                assert_eq!(level.to_bits(), 0.125f64.to_bits());
                assert_eq!(ai_polys.len(), 1);
                assert_eq!(*probes, 17);
                assert_eq!(ledger.stats.attempts, 4);
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn stale_fingerprint_is_rejected() {
        let cfg = tmp_config("stale", false);
        let (mut j, _, _) = RunJournal::open(&cfg, 1).unwrap();
        j.append(&sample_record()).unwrap();
        let cfg = tmp_config("stale", true);
        match RunJournal::open(&cfg, 2) {
            Err(CheckpointError::Stale { expected, found }) => {
                assert_eq!(expected, fingerprint_hex(2));
                assert_eq!(found, fingerprint_hex(1));
            }
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn non_resume_open_truncates() {
        let cfg = tmp_config("truncate", false);
        let (mut j, _, _) = RunJournal::open(&cfg, 7).unwrap();
        j.append(&sample_record()).unwrap();
        let (_, replayed, _) = RunJournal::open(&cfg, 7).unwrap();
        assert!(replayed.is_empty(), "resume=false must start over");
    }

    #[test]
    fn mid_file_corruption_is_reported_with_line() {
        let cfg = tmp_config("corrupt", false);
        let (mut j, _, _) = RunJournal::open(&cfg, 7).unwrap();
        let path = j.path().to_path_buf();
        j.append(&sample_record()).unwrap();
        j.append(&sample_record()).unwrap();
        // Flip one payload byte of the FIRST record: the damage is followed
        // by a further record, so this is not a torn tail and must fail.
        let mut bytes = std::fs::read(&path).unwrap();
        let line2_start = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let target = line2_start + 80;
        bytes[target] = bytes[target].wrapping_add(1);
        std::fs::write(&path, bytes).unwrap();
        let cfg = tmp_config("corrupt", true);
        match RunJournal::open(&cfg, 7) {
            Err(CheckpointError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn torn_final_line_is_recovered_by_truncation() {
        let cfg = tmp_config("torn-tail", false);
        let (mut j, _, _) = RunJournal::open(&cfg, 9).unwrap();
        let path = j.path().to_path_buf();
        j.append(&sample_record()).unwrap();
        j.append(&sample_record()).unwrap();
        // Tear the final record: chop the last 11 bytes, as a crash mid-
        // append would.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 11).unwrap();
        drop(f);

        let cfg = tmp_config("torn-tail", true);
        let (mut j, replayed, recovery) = RunJournal::open(&cfg, 9).unwrap();
        assert_eq!(replayed.len(), 1, "the intact first record survives");
        assert_eq!(recovery.dropped_records, 1);
        assert!(recovery.dropped_bytes > 0);

        // The healed journal accepts appends and round-trips again.
        j.append(&sample_record()).unwrap();
        let cfg = tmp_config("torn-tail", true);
        let (_, replayed, recovery) = RunJournal::open(&cfg, 9).unwrap();
        assert_eq!(replayed.len(), 2);
        assert!(!recovery.recovered());
    }

    #[test]
    fn chain_tampering_on_the_tail_is_recovered() {
        // A valid-CRC record whose prev hash does not chain to its
        // predecessor (e.g. a record spliced in from another run) is
        // rejected; on the tail that means truncate-and-continue.
        let cfg = tmp_config("chain-tamper", false);
        let (mut j, _, _) = RunJournal::open(&cfg, 11).unwrap();
        let path = j.path().to_path_buf();
        j.append(&sample_record()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Re-frame the same payload with a wrong prev link (CRC still
        // valid for that wrong prev).
        let payload = sample_record().to_json().to_compact_string();
        let forged = frame_line(0xdeadbeef, &payload);
        let mut out = bytes.clone();
        out.extend_from_slice(forged.as_bytes());
        out.push(b'\n');
        std::fs::write(&path, out).unwrap();

        let cfg = tmp_config("chain-tamper", true);
        let (_, replayed, recovery) = RunJournal::open(&cfg, 11).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(recovery.dropped_records, 1);
    }

    #[test]
    fn injected_enospc_fails_the_append_but_leaves_the_journal_valid() {
        let cfg = tmp_config("enospc", false);
        let (mut j, _, _) = RunJournal::open(&cfg, 13).unwrap();
        j.set_fault(Some(Arc::new(FaultInjector::new(
            cppll_sdp::FaultPlan::new().fault_journal_append(1, JournalFault::Enospc),
        ))));
        j.append(&sample_record()).unwrap();
        match j.append(&sample_record()) {
            Err(CheckpointError::Io { source, .. }) => {
                assert_eq!(source.raw_os_error(), Some(28), "ENOSPC");
            }
            other => panic!("expected injected ENOSPC, got {other:?}"),
        }
        // The journal on disk is untouched by the failed append.
        let cfg = tmp_config("enospc", true);
        let (_, replayed, recovery) = RunJournal::open(&cfg, 13).unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(!recovery.recovered());
    }

    #[test]
    fn injected_torn_write_dies_and_recovers_on_resume() {
        let cfg = tmp_config("torn-inject", false);
        let (mut j, _, _) = RunJournal::open(&cfg, 17).unwrap();
        j.append(&sample_record()).unwrap();
        j.set_fault(Some(Arc::new(FaultInjector::new(
            cppll_sdp::FaultPlan::new().fault_journal_append(
                0,
                JournalFault::TornWrite {
                    keep_bytes: 23,
                    then: cppll_sdp::CrashMode::Panic,
                },
            ),
        ))));
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = j.append(&sample_record());
        }));
        assert!(died.is_err(), "torn write must kill the process");

        let cfg = tmp_config("torn-inject", true);
        let (_, replayed, recovery) = RunJournal::open(&cfg, 17).unwrap();
        assert_eq!(replayed.len(), 1, "only the intact record replays");
        assert_eq!(recovery.dropped_records, 1);
        assert_eq!(recovery.dropped_bytes, 23);
    }

    #[test]
    fn safe_durability_round_trips() {
        let mut cfg = tmp_config("safe", false);
        cfg.durability = Durability::Safe;
        let (mut j, _, _) = RunJournal::open(&cfg, 19).unwrap();
        j.append(&sample_record()).unwrap();
        let mut cfg = tmp_config("safe", true);
        cfg.durability = Durability::Safe;
        let (_, replayed, _) = RunJournal::open(&cfg, 19).unwrap();
        assert_eq!(replayed.len(), 1);
    }

    #[test]
    fn durability_parses_cli_spellings() {
        assert_eq!(Durability::parse("fast"), Some(Durability::Fast));
        assert_eq!(Durability::parse("safe"), Some(Durability::Safe));
        assert_eq!(Durability::parse("paranoid"), None);
        assert_eq!(Durability::Safe.name(), "safe");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn escape_and_advection_records_round_trip_bit_exactly() {
        let warm = Some(SdpSolution {
            status: cppll_sdp::SdpStatus::Optimal,
            x: vec![cppll_linalg::Matrix::identity(2)],
            free: vec![-0.0, 1.0e-300],
            y: vec![2.5],
            s: vec![cppll_linalg::Matrix::identity(2).scale(3.0)],
            primal_objective: 1.0,
            dual_objective: 1.0 - 1e-9,
            primal_infeasibility: 5e-324,
            dual_infeasibility: 0.0,
            gap: 1e-9,
            iterations: 12,
            timings: SolveTimings::default(),
            warm_started: true,
        });
        let rec = StageRecord::AdvectionStep {
            iter: 3,
            pieces: vec![Polynomial::from_terms(1, &[(&[2], 1.0), (&[0], -0.5)])],
            taylor_error: 1.25e-7,
            guard_mismatch: -0.0,
            included: false,
            warm: vec![warm, None],
            ledger: LedgerSnapshot::default(),
        };
        let text = rec.to_json().to_compact_string();
        let back: StageRecord =
            cppll_json::FromJson::from_json(&cppll_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().to_compact_string(), text);
        match back {
            StageRecord::AdvectionStep {
                guard_mismatch,
                warm,
                ..
            } => {
                assert_eq!(guard_mismatch.to_bits(), (-0.0f64).to_bits());
                let w = warm[0].as_ref().unwrap();
                assert_eq!(w.free[0].to_bits(), (-0.0f64).to_bits());
                assert_eq!(w.primal_infeasibility.to_bits(), 5e-324f64.to_bits());
                assert!(warm[1].is_none());
            }
            other => panic!("wrong record: {other:?}"),
        }

        let esc = StageRecord::Escape {
            mode: 1,
            included: false,
            certificate: Some(EscapeCertificate {
                e: Polynomial::from_terms(2, &[(&[1, 0], -1.0)]),
                mode: 1,
                epsilon: 1e-3,
            }),
            ledger: LedgerSnapshot::default(),
        };
        let text = esc.to_json().to_compact_string();
        let back: StageRecord =
            cppll_json::FromJson::from_json(&cppll_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().to_compact_string(), text);
    }

    // ---- certificate cache ----------------------------------------------

    fn cache_scratch(test: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cppll-cache-tests").join(test);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cache_entry(fp: u64, run_id: &str) -> CacheEntry {
        CacheEntry {
            fingerprint: fingerprint_hex(fp),
            digest: "c31e1167d4a9bf69".into(),
            verified: true,
            verdict: "inevitable".into(),
            run_id: run_id.into(),
            elapsed_secs: 1.25,
        }
    }

    #[test]
    fn cache_round_trips_and_misses_on_misfiled_entries() {
        let cache = CertificateCache::new(cache_scratch("roundtrip"), Durability::Fast);
        let fp = 0x1234_5678_9abc_def0u64;
        assert!(cache.lookup(fp).is_none());
        cache.publish(fp, &cache_entry(fp, "job-1"), None).unwrap();
        let entry = cache.lookup(fp).unwrap();
        assert_eq!(entry.digest, "c31e1167d4a9bf69");
        assert!(entry.verified);
        assert_eq!(entry.run_id, "job-1");

        // An entry filed under the wrong fingerprint is a miss, not a lie.
        let other = fp + 1;
        std::fs::copy(cache.entry_path(fp), cache.entry_path(other)).unwrap();
        assert!(cache.lookup(other).is_none());

        // Corrupt JSON is a miss too.
        std::fs::write(cache.entry_path(fp), "{broken").unwrap();
        assert!(cache.lookup(fp).is_none());
    }

    #[test]
    fn racing_publishes_of_the_same_fingerprint_end_bit_identical() {
        for durability in [Durability::Fast, Durability::Safe] {
            let cache = std::sync::Arc::new(CertificateCache::new(
                cache_scratch(&format!("race-{}", durability.name())),
                durability,
            ));
            let fp = 0xfeed_beef_0000_0001u64;
            let workers: Vec<_> = (0..8)
                .map(|i| {
                    let cache = std::sync::Arc::clone(&cache);
                    std::thread::spawn(move || {
                        // Same fingerprint, same payload, different writers:
                        // exactly the shape of two workers finishing the same
                        // spec concurrently.
                        for _ in 0..25 {
                            cache
                                .publish(fp, &cache_entry(fp, "job-racer"), None)
                                .unwrap();
                        }
                        i
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            let entry = cache.lookup(fp).expect("entry must survive the race");
            assert_eq!(
                entry.to_json().to_compact_string(),
                cache_entry(fp, "job-racer").to_json().to_compact_string(),
                "last-write-wins of byte-identical entries must be bit-identical"
            );
            // No temp-file litter left behind.
            let stray: Vec<_> = std::fs::read_dir(cache.dir())
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
                .collect();
            assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        }
    }

    #[test]
    fn enospc_mid_publish_leaves_prior_entry_intact() {
        let cache = CertificateCache::new(cache_scratch("enospc"), Durability::Safe);
        let fp = 0xdead_0000_0000_0002u64;
        cache.publish(fp, &cache_entry(fp, "job-first"), None).unwrap();

        let fault = FaultInjector::new(
            cppll_sdp::FaultPlan::new().fault_journal_append(0, JournalFault::Enospc),
        );
        let second = cache_entry(fp, "job-second");
        match cache.publish(fp, &second, Some(&fault)) {
            Err(CheckpointError::Io { source, .. }) => {
                assert_eq!(source.raw_os_error(), Some(28), "ENOSPC");
            }
            other => panic!("expected injected ENOSPC, got {other:?}"),
        }

        // The injected failure must not have touched the published entry.
        let entry = cache.lookup(fp).unwrap();
        assert_eq!(entry.run_id, "job-first");

        // Once the fault clears, publishing works again.
        cache.publish(fp, &second, Some(&fault)).unwrap();
        assert_eq!(cache.lookup(fp).unwrap().run_id, "job-second");
    }
}
