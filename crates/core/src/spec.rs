//! JSON system specification and pipeline execution.

use cppll_hybrid::{HybridSystem, Jump, Mode, ParamBox};
use cppll_json::{ObjectBuilder, ToJson, Value};
use cppll_poly::Polynomial;
use crate::{InevitabilityVerifier, PipelineOptions, Region, VerificationReport};

use crate::parse::{parse_polynomial, ParsePolynomialError};

/// One mode of the system.
#[derive(Debug, Clone)]
pub struct ModeSpec {
    /// Mode name.
    pub name: String,
    /// Flow components `ẋᵢ` as polynomial strings over states (+ params).
    pub flow: Vec<String>,
    /// Flow-set inequalities `g(x) ≥ 0` over the states (default empty).
    pub flow_set: Vec<String>,
}

/// One jump of the system.
#[derive(Debug, Clone)]
pub struct JumpSpec {
    /// Source mode index.
    pub from: usize,
    /// Target mode index.
    pub to: usize,
    /// Guard inequalities `g(x) ≥ 0` (default empty).
    pub guard: Vec<String>,
    /// Guard equalities `h(x) = 0` (default empty).
    pub guard_eq: Vec<String>,
    /// Reset map components (identity when omitted).
    pub reset: Vec<String>,
}

/// Uncertain-parameter box.
#[derive(Debug, Clone, Default)]
pub struct ParamSpec {
    /// Lower bounds.
    pub lo: Vec<f64>,
    /// Upper bounds.
    pub hi: Vec<f64>,
}

/// A polynomial hybrid system plus the inevitability query.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// Number of state variables (`x0 … x{n−1}`).
    pub states: usize,
    /// Modes.
    pub modes: Vec<ModeSpec>,
    /// Jumps (default empty).
    pub jumps: Vec<JumpSpec>,
    /// Uncertain parameters (appended as `x{n} …` in flow strings).
    pub params: ParamSpec,
    /// Verified-region boundary inequalities `g(x) ≥ 0`.
    pub boundary: Vec<String>,
    /// Semi-axes of the ellipsoidal initial set.
    pub initial_radii: Vec<f64>,
    /// Lyapunov certificate degree (even, default 2).
    pub degree: u32,
}

fn default_degree() -> u32 {
    2
}

// ---------------------------------------------------------------------------
// JSON decoding (hand-rolled: the build has no registry access, so serde is
// unavailable; cppll-json supplies the Value tree).
// ---------------------------------------------------------------------------

fn invalid(message: impl Into<String>) -> SpecError {
    SpecError::Invalid {
        message: message.into(),
    }
}

fn field<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, SpecError> {
    v.get(key)
        .ok_or_else(|| invalid(format!("{ctx}: missing field '{key}'")))
}

fn decode_usize(v: &Value, ctx: &str) -> Result<usize, SpecError> {
    v.as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| invalid(format!("{ctx}: expected a nonnegative integer")))
}

fn decode_strings(v: &Value, ctx: &str) -> Result<Vec<String>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| invalid(format!("{ctx}: expected an array of strings")))?;
    items
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| invalid(format!("{ctx}: expected a string")))
        })
        .collect()
}

fn decode_numbers(v: &Value, ctx: &str) -> Result<Vec<f64>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| invalid(format!("{ctx}: expected an array of numbers")))?;
    items
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| invalid(format!("{ctx}: expected a number")))
        })
        .collect()
}

/// Decodes an optional array-of-strings field (absent → empty).
fn opt_strings(v: &Value, key: &str, ctx: &str) -> Result<Vec<String>, SpecError> {
    match v.get(key) {
        Some(inner) => decode_strings(inner, &format!("{ctx}.{key}")),
        None => Ok(Vec::new()),
    }
}

impl ModeSpec {
    fn from_json(v: &Value, ctx: &str) -> Result<Self, SpecError> {
        Ok(ModeSpec {
            name: field(v, "name", ctx)?
                .as_str()
                .ok_or_else(|| invalid(format!("{ctx}.name: expected a string")))?
                .to_string(),
            flow: decode_strings(field(v, "flow", ctx)?, &format!("{ctx}.flow"))?,
            flow_set: opt_strings(v, "flow_set", ctx)?,
        })
    }
}

impl ToJson for ModeSpec {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("name", &self.name)
            .field("flow", &self.flow)
            .field("flow_set", &self.flow_set)
            .build()
    }
}

impl JumpSpec {
    fn from_json(v: &Value, ctx: &str) -> Result<Self, SpecError> {
        Ok(JumpSpec {
            from: decode_usize(field(v, "from", ctx)?, &format!("{ctx}.from"))?,
            to: decode_usize(field(v, "to", ctx)?, &format!("{ctx}.to"))?,
            guard: opt_strings(v, "guard", ctx)?,
            guard_eq: opt_strings(v, "guard_eq", ctx)?,
            reset: opt_strings(v, "reset", ctx)?,
        })
    }
}

impl ToJson for JumpSpec {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("from", self.from)
            .field("to", self.to)
            .field("guard", &self.guard)
            .field("guard_eq", &self.guard_eq)
            .field("reset", &self.reset)
            .build()
    }
}

impl ToJson for ParamSpec {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("lo", &self.lo)
            .field("hi", &self.hi)
            .build()
    }
}

impl SystemSpec {
    /// Decodes a spec from already-parsed JSON.
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] when required fields are missing or mistyped.
    pub fn from_json(v: &Value) -> Result<Self, SpecError> {
        let modes = field(v, "modes", "spec")?
            .as_array()
            .ok_or_else(|| invalid("spec.modes: expected an array"))?
            .iter()
            .enumerate()
            .map(|(i, m)| ModeSpec::from_json(m, &format!("modes[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let jumps = match v.get("jumps") {
            Some(js) => js
                .as_array()
                .ok_or_else(|| invalid("spec.jumps: expected an array"))?
                .iter()
                .enumerate()
                .map(|(i, j)| JumpSpec::from_json(j, &format!("jumps[{i}]")))
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        let params = match v.get("params") {
            Some(p) => ParamSpec {
                lo: match p.get("lo") {
                    Some(lo) => decode_numbers(lo, "params.lo")?,
                    None => Vec::new(),
                },
                hi: match p.get("hi") {
                    Some(hi) => decode_numbers(hi, "params.hi")?,
                    None => Vec::new(),
                },
            },
            None => ParamSpec::default(),
        };
        let degree = match v.get("degree") {
            Some(d) => u32::try_from(decode_usize(d, "spec.degree")?)
                .map_err(|_| invalid("spec.degree: out of range"))?,
            None => default_degree(),
        };
        Ok(SystemSpec {
            states: decode_usize(field(v, "states", "spec")?, "spec.states")?,
            modes,
            jumps,
            params,
            boundary: decode_strings(field(v, "boundary", "spec")?, "spec.boundary")?,
            initial_radii: decode_numbers(
                field(v, "initial_radii", "spec")?,
                "spec.initial_radii",
            )?,
            degree,
        })
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] on malformed JSON or a mistyped document.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        let v = cppll_json::parse(text).map_err(|e| invalid(format!("json: {e}")))?;
        Self::from_json(&v)
    }

    /// Renders an in-memory verification problem back into a spec, so a
    /// locally built system (e.g. one cell of a parameter sweep, PLL models
    /// included) can be shipped to a `cppll-serve` daemon as JSON.
    ///
    /// Polynomials are printed with shortest-round-trip coefficient
    /// formatting and re-parse to bit-identical term maps, so
    /// [`spec_fingerprint`] of the result equals the fingerprint of the
    /// original problem at the same degree.
    pub fn from_parts(
        system: &HybridSystem,
        boundary: &[Polynomial],
        initial_radii: &[f64],
        degree: u32,
    ) -> Self {
        let render = |ps: &[Polynomial]| ps.iter().map(|p| p.to_string()).collect::<Vec<_>>();
        SystemSpec {
            states: system.nstates(),
            modes: system
                .modes()
                .iter()
                .map(|m| ModeSpec {
                    name: m.name().to_string(),
                    flow: render(m.flow()),
                    flow_set: render(m.flow_set()),
                })
                .collect(),
            jumps: system
                .jumps()
                .iter()
                .map(|j| JumpSpec {
                    from: j.from,
                    to: j.to,
                    guard: render(&j.guard),
                    guard_eq: render(&j.guard_eq),
                    reset: render(&j.reset),
                })
                .collect(),
            params: ParamSpec {
                lo: system.params().lo().to_vec(),
                hi: system.params().hi().to_vec(),
            },
            boundary: render(boundary),
            initial_radii: initial_radii.to_vec(),
            degree,
        }
    }
}

impl ToJson for SystemSpec {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("states", self.states)
            .field("modes", &self.modes)
            .field("jumps", &self.jumps)
            .field("params", &self.params)
            .field("boundary", &self.boundary)
            .field("initial_radii", &self.initial_radii)
            .field("degree", self.degree)
            .build()
    }
}

/// Errors surfaced while interpreting a [`SystemSpec`].
#[derive(Debug)]
pub enum SpecError {
    /// A polynomial string failed to parse (`context` says which field).
    Parse {
        /// Field the string came from.
        context: String,
        /// Underlying parse error.
        source: ParsePolynomialError,
    },
    /// The specification is structurally inconsistent.
    Invalid {
        /// What is wrong.
        message: String,
    },
    /// The verification pipeline failed.
    Verify(crate::VerifyError),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse { context, source } => write!(f, "in {context}: {source}"),
            SpecError::Invalid { message } => write!(f, "invalid spec: {message}"),
            SpecError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl SystemSpec {
    /// Builds the [`HybridSystem`] the spec describes.
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] / [`SpecError::Invalid`] on malformed input.
    pub fn build_system(&self) -> Result<HybridSystem, SpecError> {
        let n = self.states;
        if self.params.lo.len() != self.params.hi.len() {
            return Err(SpecError::Invalid {
                message: "params.lo and params.hi must have equal length".into(),
            });
        }
        let ring = n + self.params.lo.len();
        let parse = |s: &str, nv: usize, ctx: &str| {
            parse_polynomial(s, nv).map_err(|source| SpecError::Parse {
                context: ctx.to_string(),
                source,
            })
        };
        let mut modes = Vec::with_capacity(self.modes.len());
        for (mi, m) in self.modes.iter().enumerate() {
            if m.flow.len() != n {
                return Err(SpecError::Invalid {
                    message: format!(
                        "mode {mi} has {} flow components; system has {n} states",
                        m.flow.len()
                    ),
                });
            }
            let flow: Vec<Polynomial> = m
                .flow
                .iter()
                .map(|s| parse(s, ring, &format!("modes[{mi}].flow")))
                .collect::<Result<_, _>>()?;
            let flow_set: Vec<Polynomial> = m
                .flow_set
                .iter()
                .map(|s| parse(s, n, &format!("modes[{mi}].flow_set")))
                .collect::<Result<_, _>>()?;
            modes.push(Mode::new(m.name.clone(), flow).with_flow_set(flow_set));
        }
        let mut jumps = Vec::with_capacity(self.jumps.len());
        for (ji, j) in self.jumps.iter().enumerate() {
            if j.from >= self.modes.len() || j.to >= self.modes.len() {
                return Err(SpecError::Invalid {
                    message: format!("jump {ji} references an unknown mode"),
                });
            }
            let mut jump = Jump::identity(j.from, j.to)
                .with_guard(
                    j.guard
                        .iter()
                        .map(|s| parse(s, n, &format!("jumps[{ji}].guard")))
                        .collect::<Result<_, _>>()?,
                )
                .with_guard_eq(
                    j.guard_eq
                        .iter()
                        .map(|s| parse(s, n, &format!("jumps[{ji}].guard_eq")))
                        .collect::<Result<_, _>>()?,
                );
            if !j.reset.is_empty() {
                if j.reset.len() != n {
                    return Err(SpecError::Invalid {
                        message: format!("jump {ji} reset must have {n} components"),
                    });
                }
                jump = jump.with_reset(
                    j.reset
                        .iter()
                        .map(|s| parse(s, n, &format!("jumps[{ji}].reset")))
                        .collect::<Result<_, _>>()?,
                );
            }
            jumps.push(jump);
        }
        Ok(HybridSystem::with_params(
            n,
            modes,
            jumps,
            ParamBox::new(self.params.lo.clone(), self.params.hi.clone()),
        ))
    }

    /// Parses the boundary inequalities.
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] on malformed polynomials.
    pub fn build_boundary(&self) -> Result<Vec<Polynomial>, SpecError> {
        self.boundary
            .iter()
            .map(|s| {
                parse_polynomial(s, self.states).map_err(|source| SpecError::Parse {
                    context: "boundary".into(),
                    source,
                })
            })
            .collect()
    }
}

/// Runs the inevitability pipeline for a JSON spec.
///
/// # Errors
///
/// [`SpecError`] on malformed input or pipeline failure.
pub fn run_inevitability(spec: &SystemSpec) -> Result<VerificationReport, SpecError> {
    run_inevitability_with(spec, crate::ResilienceConfig::default())
}

/// Like [`run_inevitability`], with an explicit resilience configuration
/// (retries, per-solve timeout, pipeline deadline).
///
/// # Errors
///
/// [`SpecError`] on malformed input or pipeline failure.
pub fn run_inevitability_with(
    spec: &SystemSpec,
    resilience: crate::ResilienceConfig,
) -> Result<VerificationReport, SpecError> {
    run_inevitability_checkpointed(spec, resilience, None)
}

/// Like [`run_inevitability_with`], optionally journaling every completed
/// stage to a crash-safe run directory (and resuming from one when the
/// config says so).
///
/// # Errors
///
/// [`SpecError`] on malformed input or pipeline failure, including journal
/// I/O failures and stale/corrupt journals on resume.
pub fn run_inevitability_checkpointed(
    spec: &SystemSpec,
    resilience: crate::ResilienceConfig,
    checkpoint: Option<crate::CheckpointConfig>,
) -> Result<VerificationReport, SpecError> {
    run_inevitability_tuned(
        spec,
        resilience,
        checkpoint,
        crate::ReductionOptions::default(),
    )
}

/// Like [`run_inevitability_checkpointed`], with explicit problem-size
/// reduction options (the CLI's `--no-reduce` passes
/// [`crate::ReductionOptions::none`] to reproduce the unreduced
/// SDPs exactly).
///
/// # Errors
///
/// Exactly as [`run_inevitability_checkpointed`].
pub fn run_inevitability_tuned(
    spec: &SystemSpec,
    resilience: crate::ResilienceConfig,
    checkpoint: Option<crate::CheckpointConfig>,
    reduction: crate::ReductionOptions,
) -> Result<VerificationReport, SpecError> {
    run_inevitability_traced(spec, resilience, checkpoint, reduction, None)
}

/// Like [`run_inevitability_tuned`], with an optional trace sink recording
/// stage spans, supervisor attempts, and solver telemetry for the run (the
/// CLI's `--trace-level` / `--trace-out`).
///
/// # Errors
///
/// Exactly as [`run_inevitability_checkpointed`].
pub fn run_inevitability_traced(
    spec: &SystemSpec,
    resilience: crate::ResilienceConfig,
    checkpoint: Option<crate::CheckpointConfig>,
    reduction: crate::ReductionOptions,
    trace: Option<crate::Tracer>,
) -> Result<VerificationReport, SpecError> {
    run_inevitability_validated(spec, resilience, checkpoint, reduction, trace, None)
        .map(|(report, _)| report)
}

/// Like [`run_inevitability_traced`], optionally following the pipeline
/// with a Monte-Carlo validation pass of `(trials, seed)` sampled
/// trajectories against the certified claims (the CLI's `--validate`).
/// The validation report is `None` when validation was not requested or
/// the run produced no certificates to validate.
///
/// # Errors
///
/// Exactly as [`run_inevitability_checkpointed`].
pub fn run_inevitability_validated(
    spec: &SystemSpec,
    resilience: crate::ResilienceConfig,
    checkpoint: Option<crate::CheckpointConfig>,
    reduction: crate::ReductionOptions,
    trace: Option<crate::Tracer>,
    validate: Option<(usize, u64)>,
) -> Result<(VerificationReport, Option<crate::ValidationReport>), SpecError> {
    if spec.initial_radii.len() != spec.states {
        return Err(SpecError::Invalid {
            message: "initial_radii must have one entry per state".into(),
        });
    }
    let system = spec.build_system()?;
    let boundary = spec.build_boundary()?;
    let initial = Region::ellipsoid(&spec.initial_radii);
    let verifier = InevitabilityVerifier::new(&system, boundary, initial);
    let mut opt = PipelineOptions::degree(spec.degree);
    opt.resilience = resilience;
    opt.checkpoint = checkpoint;
    opt.reduction = reduction;
    opt.trace = trace;
    let report = verifier.verify(&opt).map_err(SpecError::Verify)?;
    let validation =
        validate.and_then(|(trials, seed)| verifier.validate(&report, trials, seed));
    Ok((report, validation))
}

/// Computes the problem fingerprint a checkpointed run of `spec` would be
/// keyed by, without solving anything. Identical specs (and math-relevant
/// options) always map to the same fingerprint, which is what the
/// `cppll-serve` certificate cache and the run journals key on.
///
/// # Errors
///
/// [`SpecError`] on malformed input.
pub fn spec_fingerprint(spec: &SystemSpec) -> Result<u64, SpecError> {
    if spec.initial_radii.len() != spec.states {
        return Err(SpecError::Invalid {
            message: "initial_radii must have one entry per state".into(),
        });
    }
    let system = spec.build_system()?;
    let boundary = spec.build_boundary()?;
    let initial = Region::ellipsoid(&spec.initial_radii);
    let verifier = InevitabilityVerifier::new(&system, boundary, initial);
    Ok(verifier.problem_fingerprint(&PipelineOptions::degree(spec.degree)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec() -> SystemSpec {
        SystemSpec::from_json_str(
            r#"{
              "states": 2,
              "modes": [
                {"name": "right", "flow": ["-1 x0 + 1 x1", "-1 x0 - 1 x1"], "flow_set": ["x0"]},
                {"name": "left",  "flow": ["-1 x0 + 0.5 x1", "-0.5 x0 - 1 x1"], "flow_set": ["-1 x0"]}
              ],
              "jumps": [
                {"from": 0, "to": 1, "guard_eq": ["x0"]},
                {"from": 1, "to": 0, "guard_eq": ["x0"]}
              ],
              "boundary": ["3 - 1 x0", "3 + 1 x0", "3 - 1 x1", "3 + 1 x1"],
              "initial_radii": [2.0, 2.0],
              "degree": 2
            }"#,
        )
        .expect("valid json")
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = toy_spec();
        let json = spec.to_json().to_compact_string();
        let back = SystemSpec::from_json_str(&json).unwrap();
        assert_eq!(back.states, 2);
        assert_eq!(back.modes.len(), 2);
        assert_eq!(back.jumps.len(), 2);
        assert_eq!(back.degree, spec.degree);
    }

    #[test]
    fn defaults_apply_for_omitted_fields() {
        let spec = SystemSpec::from_json_str(
            r#"{
              "states": 1,
              "modes": [{"name": "only", "flow": ["-1 x0"]}],
              "boundary": ["2 - 1 x0", "2 + 1 x0"],
              "initial_radii": [1.0]
            }"#,
        )
        .expect("valid json");
        assert_eq!(spec.degree, 2);
        assert!(spec.jumps.is_empty());
        assert!(spec.params.lo.is_empty());
        assert!(spec.modes[0].flow_set.is_empty());
    }

    #[test]
    fn decode_errors_name_the_field() {
        let missing = SystemSpec::from_json_str(r#"{"states": 1}"#).unwrap_err();
        assert!(missing.to_string().contains("modes"), "{missing}");
        let mistyped = SystemSpec::from_json_str(
            r#"{"states": 1, "modes": [{"name": 3, "flow": []}],
                "boundary": [], "initial_radii": []}"#,
        )
        .unwrap_err();
        assert!(mistyped.to_string().contains("modes[0].name"), "{mistyped}");
    }

    #[test]
    fn builds_hybrid_system() {
        let sys = toy_spec().build_system().expect("valid spec");
        assert_eq!(sys.nstates(), 2);
        assert_eq!(sys.modes().len(), 2);
        assert_eq!(sys.jumps().len(), 2);
        // Flow evaluates as written.
        let f = sys.eval_flow(0, &[1.0, 2.0], &[]);
        assert_eq!(f, vec![1.0, -3.0]);
    }

    #[test]
    fn from_parts_round_trips_the_fingerprint() {
        let spec = toy_spec();
        let sys = spec.build_system().unwrap();
        let boundary = spec.build_boundary().unwrap();
        let back = SystemSpec::from_parts(&sys, &boundary, &spec.initial_radii, spec.degree);
        assert_eq!(
            spec_fingerprint(&spec).unwrap(),
            spec_fingerprint(&back).unwrap(),
            "Display → parse must reproduce the exact problem"
        );
    }

    #[test]
    fn end_to_end_verification_from_json() {
        let report = run_inevitability(&toy_spec()).expect("toy verifies");
        assert!(report.verdict.is_verified());
    }

    #[test]
    fn uncertain_parameters_flow_through_json() {
        // ẋ = −u·x with u ∈ [1, 2]: parameters are extra ring variables in
        // flow strings (x1 here), and the pipeline must verify robustly
        // over the box vertices.
        let spec = SystemSpec::from_json_str(
            r#"{
              "states": 1,
              "modes": [{"name": "decay", "flow": ["-1 x0 x1"]}],
              "params": {"lo": [1.0], "hi": [2.0]},
              "boundary": ["3 - 1 x0", "3 + 1 x0"],
              "initial_radii": [2.0],
              "degree": 2
            }"#,
        )
        .expect("valid json");
        let sys = spec.build_system().expect("valid spec");
        assert_eq!(sys.params().len(), 1);
        assert_eq!(sys.eval_flow(0, &[2.0], &[1.5]), vec![-3.0]);
        let report = run_inevitability(&spec).expect("verifies");
        assert!(report.verdict.is_verified());
    }

    #[test]
    fn structural_errors_are_reported() {
        let mut spec = toy_spec();
        spec.modes[0].flow.pop();
        assert!(matches!(
            spec.build_system(),
            Err(SpecError::Invalid { .. })
        ));
        let mut spec2 = toy_spec();
        spec2.jumps[0].from = 9;
        assert!(matches!(
            spec2.build_system(),
            Err(SpecError::Invalid { .. })
        ));
        let mut spec3 = toy_spec();
        spec3.modes[0].flow[0] = "x7".into();
        assert!(matches!(spec3.build_system(), Err(SpecError::Parse { .. })));
    }
}
