//! Bounded advection of polynomial level sets (Section 2.5 / Eq. 6 of the
//! paper, extended to hybrid systems as in Section 3).
//!
//! One advection step maps the front `S(p) = {p ≤ 0}` forward by time `h`
//! under the flow. For each mode the backward Taylor flow map
//! `Φ₋ₕ(x) ≈ x − h·fᵢ(x) (+ h²/2·(∂fᵢ/∂x)fᵢ(x))` is *composed* with `p`,
//! giving the exactly-advected piece `Tᵢ = p ∘ Φ₋ₕ` on `Cᵢ` (for the CP
//! PLL's affine modes the composition is exact in degree). The pieces are
//! then merged into a single polynomial `q` of fixed degree by the SOS
//! sandwich
//!
//! ```text
//! Tᵢ − γ ≤ q ≤ Tᵢ   on Cᵢ   (all modes i)
//! ```
//!
//! with the tightness `γ` minimised by bisection — `S(q)` is then an
//! **over-approximation** of the advected union with certified slack `γ`,
//! which is the conservative direction Algorithm 1 needs. The first-order
//! Taylor truncation error (the `‖∇²p‖h²/2` terms of Eq. 6) is estimated on
//! a sample grid and reported per step so the inclusion check can inflate
//! its margin.

use cppll_hybrid::HybridSystem;
use cppll_poly::{monomials_up_to, Polynomial};
use cppll_sos::{maximize_bisect, PolyExpr, SosOptions, SosProgram};

/// Options for [`Advection`].
#[derive(Debug, Clone)]
pub struct AdvectionOptions {
    /// Advection time step `h`.
    pub h: f64,
    /// Taylor order of the flow map (1 or 2).
    pub taylor_order: u32,
    /// Degree of the merged front polynomial.
    pub degree: u32,
    /// Bisection resolution on the merge tightness γ.
    pub gamma_tol: f64,
    /// Upper bound for the γ bisection.
    pub gamma_max: f64,
    /// Half-degree of the S-procedure multipliers in the merge program.
    pub mult_half_degree: u32,
    /// Half-widths of the coordinate box used when sampling error
    /// estimates (Taylor truncation, guard mismatch).
    pub error_box: Vec<f64>,
    /// Extra inequalities `g(x) ≥ 0` bounding the region of interest during
    /// the piece merge. The mode flow sets of the CP PLL are slabs —
    /// unbounded in the voltage coordinates — and no fixed-degree polynomial
    /// can wedge between the advected pieces over an unbounded slab; the
    /// bounding box (anything containing the reachable tube of the initial
    /// set) restores feasibility. Conservatism note: `S(q)` over-approximates
    /// the advected union *within* this box.
    pub bounding: Vec<cppll_poly::Polynomial>,
    /// SOS options for the merge probes.
    pub sos: SosOptions,
}

impl Default for AdvectionOptions {
    fn default() -> Self {
        AdvectionOptions {
            h: 0.1,
            taylor_order: 1,
            degree: 2,
            gamma_tol: 1e-3,
            gamma_max: 10.0,
            mult_half_degree: 1,
            error_box: Vec::new(),
            bounding: Vec::new(),
            sos: SosOptions::default(),
        }
    }
}

/// One advection step's outcome.
#[derive(Debug, Clone)]
pub struct AdvectionStep {
    /// The merged advected front polynomial.
    pub front: Polynomial,
    /// Certified merge slack γ (0 for single-mode exact advection).
    pub gamma: f64,
    /// Grid-estimated Taylor truncation error of this step.
    pub taylor_error: f64,
}

/// Advects polynomial level sets under a hybrid system's (nominal) flow.
pub struct Advection<'s> {
    system: &'s HybridSystem,
    /// Per-mode state-ring flow maps at nominal parameters.
    flows: Vec<Vec<Polynomial>>,
}

impl<'s> Advection<'s> {
    /// Creates an advection operator using nominal parameters.
    pub fn new(system: &'s HybridSystem) -> Self {
        let nominal = system.params().nominal();
        let flows = (0..system.modes().len())
            .map(|mi| system.flow_with_params(mi, &nominal))
            .collect();
        Advection { system, flows }
    }

    /// The backward Taylor flow map `Φ₋ₕ` of `mode` as a substitution.
    fn backward_map(&self, mode: usize, opt: &AdvectionOptions) -> Vec<Polynomial> {
        let n = self.system.nstates();
        let f = &self.flows[mode];
        let mut subs: Vec<Polynomial> = (0..n)
            .map(|i| {
                let xi = Polynomial::var(n, i);
                &xi - &f[i].scale(opt.h)
            })
            .collect();
        if opt.taylor_order >= 2 {
            // + h²/2 · (∂f/∂x) f per component.
            for (i, s) in subs.iter_mut().enumerate() {
                let mut acc = Polynomial::zero(n);
                for j in 0..n {
                    acc = &acc + &(&f[i].partial_derivative(j) * &f[j]);
                }
                *s = &*s + &acc.scale(0.5 * opt.h * opt.h);
            }
        }
        subs
    }

    /// Exactly advected piece `p ∘ Φ₋ₕ` for one mode.
    pub fn advect_mode(&self, p: &Polynomial, mode: usize, opt: &AdvectionOptions) -> Polynomial {
        p.compose(&self.backward_map(mode, opt))
    }

    /// One advection step of a **piecewise** front: piece `i` (valid on flow
    /// set `Cᵢ`) is advected by its own mode field. This is the hybrid
    /// extension the paper sketches in Section 3: with identity jumps there
    /// are no reset constraints on the level sets (Remark 2), and for fields
    /// continuous across the guards the per-piece backward images agree on
    /// the switching surfaces up to the Taylor truncation order (tracked by
    /// [`Advection::guard_mismatch`]).
    ///
    /// No SDP is involved — for the CP PLL's affine mode fields the
    /// composition is exact and degree-preserving.
    ///
    /// # Panics
    ///
    /// Panics if `pieces.len()` differs from the number of modes.
    pub fn step_pieces(&self, pieces: &[Polynomial], opt: &AdvectionOptions) -> Vec<Polynomial> {
        assert_eq!(
            pieces.len(),
            self.system.modes().len(),
            "one piece per mode required"
        );
        pieces
            .iter()
            .enumerate()
            .map(|(mi, p)| self.advect_mode(p, mi, opt))
            .collect()
    }

    /// Maximum disagreement `|pᵢ − pⱼ|` between adjacent pieces on the jump
    /// guards (sampled within `opt.error_box`) — the consistency diagnostic
    /// of the piecewise front representation.
    pub fn guard_mismatch(&self, pieces: &[Polynomial], opt: &AdvectionOptions) -> f64 {
        let n = self.system.nstates();
        let ebox = self.error_box(opt);
        let mut worst = 0.0f64;
        for jump in self.system.jumps() {
            let d = &pieces[jump.from] - &pieces[jump.to];
            if d.is_zero() {
                continue;
            }
            for h in &jump.guard_eq {
                // Affine guards: solve h(x) = 0 for its dominating
                // coordinate at grid points of the remaining coordinates.
                let origin = vec![0.0; n];
                let grad = h.gradient();
                let (pin, slope) = match grad
                    .iter()
                    .enumerate()
                    .map(|(i, g)| (i, g.eval(&origin)))
                    .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                {
                    Some((i, v)) if v.abs() > 1e-12 => (i, v),
                    _ => continue,
                };
                let steps = 5usize;
                let mut idx = vec![0usize; n];
                'grid: loop {
                    let mut x: Vec<f64> = idx
                        .iter()
                        .zip(&ebox)
                        .map(|(&i, &b)| -b + 2.0 * b * (i as f64) / ((steps - 1) as f64))
                        .collect();
                    x[pin] = 0.0;
                    x[pin] = -(h.eval(&x)) / slope;
                    if x[pin].abs() <= ebox[pin] {
                        worst = worst.max(d.eval(&x).abs());
                    }
                    let mut k = 0;
                    loop {
                        if k == n {
                            break 'grid;
                        }
                        idx[k] += 1;
                        if idx[k] < steps {
                            break;
                        }
                        idx[k] = 0;
                        k += 1;
                    }
                }
            }
        }
        worst
    }

    /// Effective error-sampling box (defaults to half-width 2 per axis).
    fn error_box(&self, opt: &AdvectionOptions) -> Vec<f64> {
        let n = self.system.nstates();
        if opt.error_box.len() == n {
            opt.error_box.clone()
        } else {
            vec![2.0; n]
        }
    }

    /// One full advection step of the front across all modes, merged back
    /// to a degree-`opt.degree` polynomial.
    ///
    /// Returns `None` when the merge program is infeasible even at
    /// `gamma_max` (which indicates the degree is too low for the front).
    pub fn step(&self, p: &Polynomial, opt: &AdvectionOptions) -> Option<AdvectionStep> {
        let pieces: Vec<Polynomial> = (0..self.system.modes().len())
            .map(|mi| self.advect_mode(p, mi, opt))
            .collect();
        let taylor_error = self.estimate_taylor_error(p, opt);
        if pieces.len() == 1 {
            return Some(AdvectionStep {
                front: pieces.into_iter().next().expect("one piece"),
                gamma: 0.0,
                taylor_error,
            });
        }
        // Bisect γ; per probe, search q with Tᵢ − γ ≤ q ≤ Tᵢ on Cᵢ.
        let feasible = |gamma: f64| self.merge(&pieces, gamma, opt).is_some();
        let r = maximize_bisect(0.0, opt.gamma_max, opt.gamma_tol, |g| {
            // maximize_bisect maximises a *feasible-below* threshold; merge
            // feasibility is monotone increasing in γ, so search on −γ.
            feasible(opt.gamma_max - g)
        });
        let best_gamma = opt.gamma_max - r.best?;
        let front = self.merge(&pieces, best_gamma, opt)?;
        Some(AdvectionStep {
            front,
            gamma: best_gamma,
            taylor_error,
        })
    }

    /// Merge program at fixed γ.
    fn merge(
        &self,
        pieces: &[Polynomial],
        gamma: f64,
        opt: &AdvectionOptions,
    ) -> Option<Polynomial> {
        let n = self.system.nstates();
        let mut prog = SosProgram::new(n);
        let basis = monomials_up_to(n, opt.degree);
        let q = prog.new_poly(basis);
        for (mi, t) in pieces.iter().enumerate() {
            let mut domain = self.system.modes()[mi].flow_set().to_vec();
            domain.extend(opt.bounding.iter().cloned());
            // T − q ≥ 0 on Cᵢ  (over-approximation: q ≤ T ⇒ S(q) ⊇ S(T))
            let over = PolyExpr::from(t.clone()).sub(&prog.poly(q));
            prog.require_nonneg_on(over, &domain, opt.mult_half_degree);
            // q − T + γ ≥ 0 on Cᵢ  (tightness)
            let tight = prog
                .poly(q)
                .sub(&t.clone().into())
                .add(&Polynomial::constant(n, gamma).into());
            prog.require_nonneg_on(tight, &domain, opt.mult_half_degree);
        }
        let sol = prog.solve(&opt.sos).ok()?;
        Some(sol.poly_value(q).prune(1e-12))
    }

    /// Grid estimate of the Taylor truncation error of one advection step:
    /// compares the configured Taylor order with the next-higher order on
    /// sample points of the error box (a cheap, honest surrogate for
    /// Eq. 6's Hessian bound).
    pub fn estimate_taylor_error(&self, p: &Polynomial, opt: &AdvectionOptions) -> f64 {
        let n = self.system.nstates();
        let ebox = self.error_box(opt);
        // Surrogate: difference between Taylor orders 1 and 2; when the
        // configured order is already 2 the next-order term is approximated
        // by scaling this difference with h (the map error is O(h^{k+1})).
        let mut opt1 = opt.clone();
        opt1.taylor_order = 1;
        let mut opt2 = opt.clone();
        opt2.taylor_order = 2;
        let scale = if opt.taylor_order >= 2 { opt.h } else { 1.0 };
        let mut err = 0.0f64;
        for mi in 0..self.system.modes().len() {
            let t1 = p.compose(&self.backward_map(mi, &opt1));
            let t2 = p.compose(&self.backward_map(mi, &opt2));
            let d = &t1 - &t2;
            // Sample on a small grid of the error box.
            let steps = 5usize;
            let mut idx = vec![0usize; n];
            loop {
                let x: Vec<f64> = idx
                    .iter()
                    .zip(&ebox)
                    .map(|(&i, &b)| -b + 2.0 * b * (i as f64) / ((steps - 1) as f64))
                    .collect();
                err = err.max(scale * d.eval(&x).abs());
                let mut k = 0;
                loop {
                    if k == n {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < steps {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
            }
        }
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppll_hybrid::{HybridSystem, Mode};

    /// Single-mode contraction ẋ = −x (2-D).
    fn contraction() -> HybridSystem {
        let f = vec![
            Polynomial::var(2, 0).scale(-1.0),
            Polynomial::var(2, 1).scale(-1.0),
        ];
        HybridSystem::new(2, vec![Mode::new("m", f)], vec![])
    }

    #[test]
    fn ball_shrinks_under_contraction() {
        let sys = contraction();
        let adv = Advection::new(&sys);
        let opt = AdvectionOptions {
            h: 0.1,
            ..Default::default()
        };
        // p = ‖x‖² − 1 (unit ball).
        let p = &Polynomial::norm_squared(2) - &Polynomial::constant(2, 1.0);
        let step = adv.step(&p, &opt).expect("single mode");
        assert_eq!(step.gamma, 0.0);
        // Advected ball: {‖x − h(−x)… ‖} — backward map x ↦ x + h x = (1+h)x
        // wait: backward is x − h·f(x) = x + h·x = (1.1)x ⇒ front
        // p((1.1)x) = 1.21‖x‖² − 1 ⇒ radius shrinks to 1/1.1.
        let r_new = (1.0f64 / 1.21).sqrt();
        assert!((step.front.eval(&[r_new, 0.0])).abs() < 1e-12);
        // Origin stays inside.
        assert!(step.front.eval(&[0.0, 0.0]) < 0.0);
    }

    #[test]
    fn taylor_order_two_is_closer_to_exact() {
        let sys = contraction();
        let adv = Advection::new(&sys);
        let p = &Polynomial::norm_squared(2) - &Polynomial::constant(2, 1.0);
        let h: f64 = 0.2;
        // Exact flow: x(t+h) = e^{-h} x ⇒ advected radius e^{-h}.
        let exact_radius = (-h).exp();
        for (order, tol) in [(1u32, 0.03), (2u32, 0.005)] {
            let opt = AdvectionOptions {
                h,
                taylor_order: order,
                ..Default::default()
            };
            let front = adv.advect_mode(&p, 0, &opt);
            // Find the front's zero radius along the x-axis by bisection.
            let mut lo = 0.0;
            let mut hi = 1.0;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if front.eval(&[mid, 0.0]) < 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let err = (lo - exact_radius).abs();
            assert!(err < tol, "order {order}: radius err {err}");
        }
    }

    /// Two-mode system with identical flows: merge must be (near-)exact.
    #[test]
    fn merge_of_identical_pieces_is_tight() {
        let f = || {
            vec![
                Polynomial::var(2, 0).scale(-1.0),
                Polynomial::var(2, 1).scale(-1.0),
            ]
        };
        let x = Polynomial::var(2, 0);
        let m0 = Mode::new("r", f()).with_flow_set(vec![x.clone()]);
        let m1 = Mode::new("l", f()).with_flow_set(vec![x.scale(-1.0)]);
        let sys = HybridSystem::new(2, vec![m0, m1], vec![]);
        let adv = Advection::new(&sys);
        let p = &Polynomial::norm_squared(2) - &Polynomial::constant(2, 1.0);
        let opt = AdvectionOptions {
            h: 0.1,
            ..Default::default()
        };
        let step = adv.step(&p, &opt).expect("merge feasible");
        assert!(step.gamma < 0.05, "gamma = {}", step.gamma);
        // Merged front still contains the origin and excludes far points.
        assert!(step.front.eval(&[0.0, 0.0]) < 0.0);
        assert!(step.front.eval(&[3.0, 0.0]) > 0.0);
    }
}
