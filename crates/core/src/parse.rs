//! A small parser for human-readable polynomial strings.
//!
//! Grammar (whitespace-separated factors inside terms):
//!
//! ```text
//! poly   := term (('+'|'-') term)*
//! term   := [coeff] (var)*          e.g. "2.5 x0^2 x1", "x2", "-0.5"
//! var    := 'x' index ['^' exponent]
//! ```

use cppll_poly::{Monomial, Polynomial};

/// Error produced when a polynomial string cannot be parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsePolynomialError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParsePolynomialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid polynomial: {}", self.message)
    }
}

impl std::error::Error for ParsePolynomialError {}

fn err(message: impl Into<String>) -> ParsePolynomialError {
    ParsePolynomialError {
        message: message.into(),
    }
}

/// Parses a polynomial over `nvars` variables from a term-sum string.
///
/// # Errors
///
/// Returns [`ParsePolynomialError`] on malformed input or out-of-range
/// variable indices.
///
/// # Examples
///
/// ```
/// use cppll_verify::parse_polynomial;
///
/// let p = parse_polynomial("-1 x0 + 2 x0^2 x1 - 0.5", 2).unwrap();
/// assert_eq!(p.eval(&[1.0, 1.0]), 0.5);
/// ```
pub fn parse_polynomial(input: &str, nvars: usize) -> Result<Polynomial, ParsePolynomialError> {
    let mut poly = Polynomial::zero(nvars);
    // Normalize: ensure '+'/'-' separate terms; keep exponent carets intact.
    let cleaned = input.replace('*', " ");
    let mut terms: Vec<(f64, String)> = Vec::new();
    let mut current = String::new();
    let mut sign = 1.0;
    let chars = cleaned.chars();
    // Split on top-level + and - (a '-' directly after 'e'/'E' inside a
    // number would be scientific notation; keep the parser simple and
    // require explicit spacing for exponents instead).
    for c in chars {
        match c {
            '+' => {
                if !current.trim().is_empty() {
                    terms.push((sign, current.clone()));
                }
                current.clear();
                sign = 1.0;
            }
            '-' => {
                if !current.trim().is_empty() {
                    terms.push((sign, current.clone()));
                    current.clear();
                    sign = 1.0;
                }
                sign = -sign;
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        terms.push((sign, current));
    }
    if terms.is_empty() {
        return Ok(poly); // "0" by omission
    }
    for (sign, body) in terms {
        let mut coeff = sign;
        let mut exps = vec![0u32; nvars];
        let mut saw_anything = false;
        for factor in body.split_whitespace() {
            saw_anything = true;
            if let Some(rest) = factor.strip_prefix('x') {
                let (idx_str, exp) = match rest.split_once('^') {
                    Some((i, e)) => (
                        i,
                        e.parse::<u32>()
                            .map_err(|_| err(format!("bad exponent in '{factor}'")))?,
                    ),
                    None => (rest, 1),
                };
                let idx: usize = idx_str
                    .parse()
                    .map_err(|_| err(format!("bad variable in '{factor}'")))?;
                if idx >= nvars {
                    return Err(err(format!(
                        "variable x{idx} out of range (system has {nvars} states)"
                    )));
                }
                exps[idx] += exp;
            } else {
                let v: f64 = factor
                    .parse()
                    .map_err(|_| err(format!("bad coefficient '{factor}'")))?;
                coeff *= v;
            }
        }
        if !saw_anything {
            return Err(err("empty term"));
        }
        poly.add_term(Monomial::new(exps), coeff);
    }
    Ok(poly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_signs() {
        let p = parse_polynomial("1.5", 2).unwrap();
        assert_eq!(p.eval(&[9.0, 9.0]), 1.5);
        let q = parse_polynomial("-2", 1).unwrap();
        assert_eq!(q.eval(&[0.0]), -2.0);
        let r = parse_polynomial("- 2 + 3", 1).unwrap();
        assert_eq!(r.eval(&[0.0]), 1.0);
    }

    #[test]
    fn variables_and_exponents() {
        let p = parse_polynomial("x0^2 x1 - 1 x1", 2).unwrap();
        assert_eq!(p.eval(&[2.0, 3.0]), 12.0 - 3.0);
        let q = parse_polynomial("2 x1", 2).unwrap();
        assert_eq!(q.eval(&[0.0, 4.0]), 8.0);
    }

    #[test]
    fn star_separator_is_accepted() {
        let p = parse_polynomial("2*x0*x1", 2).unwrap();
        assert_eq!(p.eval(&[3.0, 4.0]), 24.0);
    }

    #[test]
    fn round_trips_display_output() {
        // Our Display prints e.g. "x0^2 - 2*x1 + 1"; parse it back.
        let orig = cppll_poly::Polynomial::from_terms(
            2,
            &[(&[2, 0], 1.0), (&[0, 1], -2.0), (&[0, 0], 1.0)],
        );
        let reparsed = parse_polynomial(&orig.to_string(), 2).unwrap();
        assert!((&reparsed - &orig).max_abs_coefficient() < 1e-12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_polynomial("x9", 2).is_err());
        assert!(parse_polynomial("x0^z", 2).is_err());
        assert!(parse_polynomial("foo", 2).is_err());
    }

    #[test]
    fn empty_is_zero() {
        let p = parse_polynomial("", 3).unwrap();
        assert!(p.is_zero());
    }
}
