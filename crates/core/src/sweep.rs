//! Parameter-space certification atlases (`cppll sweep`).
//!
//! The paper certifies inevitability at the single Table-1 parameter point;
//! the engineering object is the *region* of circuit-parameter space where
//! lock is guaranteed (Kuznetsov et al.'s hold-in/pull-in analyses). This
//! module turns the single-point pipeline into a gridded sweep:
//!
//! * a [`SweepSpec`] names 1–2 axes over either [`TableOneParams`] fields
//!   (`{"kind":"pll"}`) or `$name` placeholders inside a [`SystemSpec`]
//!   template (`{"kind":"spec"}`);
//! * cells fan out across `cppll-par` workers, each cell a full
//!   [`InevitabilityVerifier::verify`] run;
//! * instead of solving the full grid, an adaptive bisection solves a
//!   coarse lattice and recursively splits only the rectangles whose corner
//!   verdicts disagree, down to a requested resolution — cells it never
//!   solves are *labeled* (`interior`/`unresolved`), never given a verdict;
//! * each cell's advection SDP solves are warm-started from the nearest
//!   already-certified neighbour's final iterates
//!   ([`PipelineOptions::advection_seed`]); a failed seeded solve falls
//!   back cold, so seeding can never change a verdict or digest;
//! * completed cells are journaled through the v2 machinery
//!   ([`StageRecord::SweepCell`]), making a killed sweep resumable
//!   cell-by-cell with a bit-identical final atlas.
//!
//! Everything that reaches the canonical atlas JSON is a deterministic
//! function of the sweep spec alone — independent of thread count, crash
//! schedule, and wall-clock — which is what the determinism acceptance
//! tests pin.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use cppll_hybrid::HybridSystem;
use cppll_json::{ObjectBuilder, ToJson, Value};
use cppll_pll::{PllModelBuilder, PllOrder, TableOneParams};
use cppll_poly::{Monomial, Polynomial};
use cppll_sdp::SdpSolution;
use cppll_trace::Tracer;

use crate::checkpoint::{
    self, CheckpointConfig, CheckpointError, LedgerSnapshot, RunJournal, StageRecord,
};
use crate::parse::parse_polynomial;
use crate::pipeline::{InevitabilityVerifier, PipelineOptions, Verdict};
use crate::region::Region;
use crate::resilience::ResilienceConfig;
use crate::spec::{SpecError, SystemSpec};
use crate::VerifyError;
use cppll_sos::ReductionOptions;

// ---------------------------------------------------------------------------
// Sweep specification
// ---------------------------------------------------------------------------

/// One sweep axis: `cells` evenly spaced values from `min` to `max`
/// (inclusive endpoints; a single-cell axis sits at `min`).
#[derive(Debug, Clone)]
pub struct SweepAxis {
    /// Parameter name: a [`TableOneParams`] field for PLL targets, a
    /// `$name` placeholder for spec templates.
    pub name: String,
    /// First grid value.
    pub min: f64,
    /// Last grid value.
    pub max: f64,
    /// Number of grid cells along this axis (≥ 1).
    pub cells: usize,
}

impl SweepAxis {
    /// The axis value at grid index `i`.
    pub fn value(&self, i: usize) -> f64 {
        if self.cells <= 1 {
            self.min
        } else {
            self.min + (self.max - self.min) * (i as f64) / ((self.cells - 1) as f64)
        }
    }

    /// All grid values, in index order.
    pub fn values(&self) -> Vec<f64> {
        (0..self.cells).map(|i| self.value(i)).collect()
    }
}

impl ToJson for SweepAxis {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("name", &self.name)
            .field("min", self.min)
            .field("max", self.max)
            .field("cells", self.cells)
            .build()
    }
}

/// What each sweep cell verifies.
#[derive(Debug, Clone)]
pub enum SweepTarget {
    /// A CP PLL model: Table-1 parameters with axes applied via
    /// [`TableOneParams::with_axis`], then the standard PLL inevitability
    /// query ([`InevitabilityVerifier::for_pll`]'s boundary and initial
    /// set).
    Pll {
        /// Loop-filter order (3 or 4).
        order: u32,
        /// Lyapunov certificate degree.
        degree: u32,
    },
    /// A generic [`SystemSpec`] template whose polynomial strings may
    /// contain `$name` placeholders for the sweep axes.
    Spec {
        /// The template spec.
        template: SystemSpec,
    },
}

/// A full sweep specification: target, axes, and bisection knobs.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// What each cell verifies.
    pub target: SweepTarget,
    /// 1 or 2 sweep axes.
    pub axes: Vec<SweepAxis>,
    /// Adaptive boundary bisection: solve a coarse lattice and refine only
    /// across verdict changes (`true`, the default) or solve every cell.
    pub bisect: bool,
    /// Initial lattice stride in cells (`0` = automatic: the largest power
    /// of two ≤ `(cells − 1) / 4` per axis).
    pub coarse: usize,
    /// Stop splitting a disagreeing rectangle once its largest side is at
    /// most this many cells (default 1 = refine the boundary to single-cell
    /// resolution). Cells inside stopped rectangles are `unresolved`.
    pub resolution: usize,
}

impl ToJson for SweepSpec {
    fn to_json(&self) -> Value {
        let target = match &self.target {
            SweepTarget::Pll { order, degree } => ObjectBuilder::new()
                .field("kind", "pll")
                .field("order", *order)
                .field("degree", *degree)
                .build(),
            SweepTarget::Spec { template } => ObjectBuilder::new()
                .field("kind", "spec")
                .field("spec", template.to_json())
                .build(),
        };
        ObjectBuilder::new()
            .field("target", target)
            .field("axes", &self.axes)
            .field("bisect", self.bisect)
            .field("coarse", self.coarse)
            .field("resolution", self.resolution)
            .build()
    }
}

fn invalid(message: impl Into<String>) -> SweepError {
    SweepError::Invalid {
        message: message.into(),
    }
}

impl SweepSpec {
    /// Decodes a sweep spec from already-parsed JSON.
    ///
    /// # Errors
    ///
    /// [`SweepError::Invalid`] on missing/mistyped fields or an
    /// out-of-range axis count.
    pub fn from_json(v: &Value) -> Result<Self, SweepError> {
        let target_v = v
            .get("target")
            .ok_or_else(|| invalid("sweep: missing field 'target'"))?;
        let kind = target_v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid("sweep.target: missing string field 'kind'"))?;
        let target = match kind {
            "pll" => SweepTarget::Pll {
                order: target_v
                    .get("order")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| invalid("sweep.target: missing integer field 'order'"))?
                    as u32,
                degree: target_v.get("degree").and_then(Value::as_u64).unwrap_or(4) as u32,
            },
            "spec" => SweepTarget::Spec {
                template: SystemSpec::from_json(
                    target_v
                        .get("spec")
                        .ok_or_else(|| invalid("sweep.target: missing field 'spec'"))?,
                )
                .map_err(SweepError::Spec)?,
            },
            other => return Err(invalid(format!("sweep.target.kind: unknown kind '{other}'"))),
        };
        let axes_v = v
            .get("axes")
            .and_then(Value::as_array)
            .ok_or_else(|| invalid("sweep: missing array field 'axes'"))?;
        let mut axes = Vec::with_capacity(axes_v.len());
        for (i, a) in axes_v.iter().enumerate() {
            let ctx = format!("sweep.axes[{i}]");
            axes.push(SweepAxis {
                name: a
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| invalid(format!("{ctx}: missing string field 'name'")))?
                    .to_string(),
                min: a
                    .get("min")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| invalid(format!("{ctx}: missing number field 'min'")))?,
                max: a
                    .get("max")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| invalid(format!("{ctx}: missing number field 'max'")))?,
                cells: a
                    .get("cells")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| invalid(format!("{ctx}: missing integer field 'cells'")))?
                    as usize,
            });
        }
        let spec = SweepSpec {
            target,
            axes,
            bisect: v.get("bisect").and_then(Value::as_bool).unwrap_or(true),
            coarse: v.get("coarse").and_then(Value::as_u64).unwrap_or(0) as usize,
            resolution: v.get("resolution").and_then(Value::as_u64).unwrap_or(1) as usize,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a sweep spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`SweepError::Invalid`] on malformed JSON or a mistyped document.
    pub fn from_json_str(text: &str) -> Result<Self, SweepError> {
        let v = cppll_json::parse(text).map_err(|e| invalid(format!("json: {e}")))?;
        Self::from_json(&v)
    }

    /// Structural validation shared by every entry point.
    ///
    /// # Errors
    ///
    /// [`SweepError::Invalid`] when the axes or target are unusable.
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.axes.is_empty() || self.axes.len() > 2 {
            return Err(invalid(format!(
                "sweep.axes: expected 1 or 2 axes, found {}",
                self.axes.len()
            )));
        }
        for a in &self.axes {
            if a.cells == 0 {
                return Err(invalid(format!("axis '{}': cells must be ≥ 1", a.name)));
            }
            if !(a.min.is_finite() && a.max.is_finite()) || a.min > a.max {
                return Err(invalid(format!(
                    "axis '{}': expected finite min ≤ max",
                    a.name
                )));
            }
        }
        if self.axes.len() == 2 && self.axes[0].name == self.axes[1].name {
            return Err(invalid(format!(
                "sweep.axes: axis '{}' used twice",
                self.axes[0].name
            )));
        }
        if self.resolution == 0 {
            return Err(invalid("sweep.resolution: must be ≥ 1"));
        }
        if let SweepTarget::Pll { order, .. } = &self.target {
            if *order != 3 && *order != 4 {
                return Err(invalid(format!(
                    "sweep.target.order: expected 3 or 4, found {order}"
                )));
            }
        }
        Ok(())
    }

    /// Stable fingerprint of the sweep — the journal key a resumed sweep
    /// must match, analogous to the per-problem fingerprint of single runs.
    pub fn fingerprint(&self) -> u64 {
        checkpoint::fnv1a(self.to_json().to_compact_string().as_bytes())
    }

    /// A small runnable example: a two-state toy whose first coordinate is
    /// stable exactly when the `$a` axis is negative, so the certified
    /// region is the left half-plane of the grid and the bisection has a
    /// clean vertical boundary to chase.
    pub fn example() -> Self {
        SweepSpec {
            target: SweepTarget::Spec {
                template: SystemSpec::from_json_str(
                    r#"{
                      "states": 2,
                      "modes": [
                        {"name": "flow", "flow": ["$a x0", "-1 x1 + $b x1"]}
                      ],
                      "boundary": ["3 - 1 x0", "3 + 1 x0", "3 - 1 x1", "3 + 1 x1"],
                      "initial_radii": [2.0, 2.0],
                      "degree": 2
                    }"#,
                )
                .expect("example template is valid"),
            },
            axes: vec![
                SweepAxis {
                    name: "a".into(),
                    min: -1.0,
                    max: 1.0,
                    cells: 21,
                },
                SweepAxis {
                    name: "b".into(),
                    min: -1.5,
                    max: -0.5,
                    cells: 21,
                },
            ],
            bisect: true,
            coarse: 0,
            resolution: 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors surfaced while interpreting or running a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// The sweep specification is structurally inconsistent.
    Invalid {
        /// What is wrong.
        message: String,
    },
    /// The embedded system spec template is malformed.
    Spec(SpecError),
    /// The sweep journal could not be written or replayed.
    Checkpoint(CheckpointError),
    /// A cell's solver failed in a way that is not a verdict (e.g. the
    /// serve daemon became unreachable). Journaled cells remain resumable.
    Solver {
        /// Linear index of the failing cell.
        cell: usize,
        /// What failed.
        message: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Invalid { message } => write!(f, "invalid sweep: {message}"),
            SweepError::Spec(e) => write!(f, "sweep template: {e}"),
            SweepError::Checkpoint(e) => write!(f, "sweep journal: {e}"),
            SweepError::Solver { cell, message } => {
                write!(f, "sweep cell {cell}: {message}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl From<CheckpointError> for SweepError {
    fn from(e: CheckpointError) -> Self {
        SweepError::Checkpoint(e)
    }
}

// ---------------------------------------------------------------------------
// Cell problems: template instantiation
// ---------------------------------------------------------------------------

/// One cell's fully instantiated verification problem.
#[derive(Debug, Clone)]
pub struct CellProblem {
    /// The hybrid system at this cell's parameter values.
    pub system: HybridSystem,
    /// Boundary inequalities `g ≥ 0`.
    pub boundary: Vec<Polynomial>,
    /// Semi-axes of the ellipsoidal initial set.
    pub initial_radii: Vec<f64>,
    /// Lyapunov certificate degree.
    pub degree: u32,
}

impl CellProblem {
    /// Renders the problem as a concrete [`SystemSpec`] (no placeholders),
    /// e.g. to submit the cell to a `cppll-serve` daemon. The rendering
    /// round-trips bit-exactly, so the remote fingerprint matches the local
    /// one.
    pub fn to_spec(&self) -> SystemSpec {
        SystemSpec::from_parts(&self.system, &self.boundary, &self.initial_radii, self.degree)
    }
}

/// Replaces every `$name` placeholder with the extended-ring variable
/// `x{base + axis_index}`, so the string can be parsed once and then
/// partially evaluated per cell. Substituting *variables* rather than
/// numbers sidesteps the polynomial grammar entirely: negative values and
/// scientific-notation magnitudes never enter a string.
fn splice_placeholders(src: &str, base: usize, axes: &[SweepAxis]) -> Result<String, SweepError> {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '$' {
            out.push(c);
            continue;
        }
        let mut name = String::new();
        while let Some(&d) = chars.peek() {
            if d.is_ascii_alphanumeric() || d == '_' {
                name.push(d);
                chars.next();
            } else {
                break;
            }
        }
        let k = axes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| invalid(format!("placeholder '${name}' names no sweep axis")))?;
        out.push_str(&format!("x{}", base + k));
    }
    Ok(out)
}

/// Partially evaluates the trailing `values.len()` ring variables of `p`
/// (the spliced placeholders) at `values`, returning a polynomial over the
/// first `base` variables. Exact per term: the coefficient is multiplied by
/// `vᵉ` and the axis exponents dropped.
fn project_axes(p: &Polynomial, base: usize, values: &[f64]) -> Polynomial {
    let mut out = Polynomial::zero(base);
    for (m, c) in p.terms() {
        let mut coeff = c;
        for (k, &v) in values.iter().enumerate() {
            let e = m.exp(base + k);
            if e > 0 {
                coeff *= v.powi(e as i32);
            }
        }
        let exps: Vec<u32> = (0..base).map(|i| m.exp(i)).collect();
        out.add_term(Monomial::new(exps), coeff);
    }
    out
}

/// A jump pre-parsed in the axis-extended ring:
/// `(from, to, guard, guard_eq, reset)`.
type JumpTemplate = (usize, usize, Vec<Polynomial>, Vec<Polynomial>, Vec<Polynomial>);

/// A spec template pre-parsed into extended-ring polynomials (state/param
/// variables first, one extra variable per sweep axis), instantiated per
/// cell by exact partial evaluation.
#[derive(Debug, Clone)]
struct CompiledTemplate {
    states: usize,
    /// Flow ring size *without* axis variables (`states + nparams`).
    flow_ring: usize,
    mode_names: Vec<String>,
    /// Per mode: flows over `flow_ring + naxes`, flow-set over
    /// `states + naxes`.
    flows: Vec<Vec<Polynomial>>,
    flow_sets: Vec<Vec<Polynomial>>,
    /// `(from, to, guard, guard_eq, reset)`, all in `states + naxes` vars.
    jumps: Vec<JumpTemplate>,
    boundary: Vec<Polynomial>,
    param_lo: Vec<f64>,
    param_hi: Vec<f64>,
    initial_radii: Vec<f64>,
    degree: u32,
}

impl CompiledTemplate {
    fn compile(template: &SystemSpec, axes: &[SweepAxis]) -> Result<Self, SweepError> {
        let n = template.states;
        if template.params.lo.len() != template.params.hi.len() {
            return Err(invalid("params.lo and params.hi must have equal length"));
        }
        if template.initial_radii.len() != n {
            return Err(invalid("initial_radii must have one entry per state"));
        }
        let flow_ring = n + template.params.lo.len();
        let naxes = axes.len();
        let parse = |s: &str, base: usize, ctx: &str| -> Result<Polynomial, SweepError> {
            let spliced = splice_placeholders(s, base, axes)?;
            parse_polynomial(&spliced, base + naxes)
                .map_err(|e| invalid(format!("{ctx}: '{s}': {e}")))
        };
        let parse_all = |ss: &[String], base: usize, ctx: &str| -> Result<Vec<Polynomial>, SweepError> {
            ss.iter().map(|s| parse(s, base, ctx)).collect()
        };
        let mut mode_names = Vec::new();
        let mut flows = Vec::new();
        let mut flow_sets = Vec::new();
        for (mi, m) in template.modes.iter().enumerate() {
            if m.flow.len() != n {
                return Err(invalid(format!(
                    "mode {mi} has {} flow components; system has {n} states",
                    m.flow.len()
                )));
            }
            mode_names.push(m.name.clone());
            flows.push(parse_all(&m.flow, flow_ring, &format!("modes[{mi}].flow"))?);
            flow_sets.push(parse_all(&m.flow_set, n, &format!("modes[{mi}].flow_set"))?);
        }
        let mut jumps = Vec::new();
        for (ji, j) in template.jumps.iter().enumerate() {
            if j.from >= template.modes.len() || j.to >= template.modes.len() {
                return Err(invalid(format!("jump {ji} references an unknown mode")));
            }
            if !j.reset.is_empty() && j.reset.len() != n {
                return Err(invalid(format!("jump {ji} reset must have {n} components")));
            }
            jumps.push((
                j.from,
                j.to,
                parse_all(&j.guard, n, &format!("jumps[{ji}].guard"))?,
                parse_all(&j.guard_eq, n, &format!("jumps[{ji}].guard_eq"))?,
                parse_all(&j.reset, n, &format!("jumps[{ji}].reset"))?,
            ));
        }
        Ok(CompiledTemplate {
            states: n,
            flow_ring,
            mode_names,
            flows,
            flow_sets,
            jumps,
            boundary: parse_all(&template.boundary, n, "boundary")?,
            param_lo: template.params.lo.clone(),
            param_hi: template.params.hi.clone(),
            initial_radii: template.initial_radii.clone(),
            degree: template.degree,
        })
    }

    fn build(&self, values: &[f64]) -> CellProblem {
        let modes: Vec<cppll_hybrid::Mode> = self
            .mode_names
            .iter()
            .zip(self.flows.iter().zip(&self.flow_sets))
            .map(|(name, (flow, flow_set))| {
                cppll_hybrid::Mode::new(
                    name.clone(),
                    flow.iter().map(|p| project_axes(p, self.flow_ring, values)).collect(),
                )
                .with_flow_set(
                    flow_set.iter().map(|p| project_axes(p, self.states, values)).collect(),
                )
            })
            .collect();
        let jumps: Vec<cppll_hybrid::Jump> = self
            .jumps
            .iter()
            .map(|(from, to, guard, guard_eq, reset)| {
                let proj =
                    |ps: &[Polynomial]| ps.iter().map(|p| project_axes(p, self.states, values)).collect();
                let mut j = cppll_hybrid::Jump::identity(*from, *to)
                    .with_guard(proj(guard))
                    .with_guard_eq(proj(guard_eq));
                if !reset.is_empty() {
                    j = j.with_reset(proj(reset));
                }
                j
            })
            .collect();
        CellProblem {
            system: cppll_hybrid::HybridSystem::with_params(
                self.states,
                modes,
                jumps,
                cppll_hybrid::ParamBox::new(self.param_lo.clone(), self.param_hi.clone()),
            ),
            boundary: self
                .boundary
                .iter()
                .map(|p| project_axes(p, self.states, values))
                .collect(),
            initial_radii: self.initial_radii.clone(),
            degree: self.degree,
        }
    }
}

/// Per-cell problem builder for either target kind.
enum CellBuilder {
    Pll {
        base: TableOneParams,
        order: PllOrder,
        degree: u32,
        axis_names: Vec<String>,
    },
    Spec(CompiledTemplate),
}

impl CellBuilder {
    fn compile(spec: &SweepSpec) -> Result<Self, SweepError> {
        match &spec.target {
            SweepTarget::Pll { order, degree } => {
                let (order, base) = match order {
                    3 => (PllOrder::Third, TableOneParams::third_order()),
                    4 => (PllOrder::Fourth, TableOneParams::fourth_order()),
                    o => return Err(invalid(format!("pll order {o} is not 3 or 4"))),
                };
                // Validate the axis names once, up front.
                for a in &spec.axes {
                    base.clone().with_axis(&a.name, a.min).map_err(invalid)?;
                }
                Ok(CellBuilder::Pll {
                    base,
                    order,
                    degree: *degree,
                    axis_names: spec.axes.iter().map(|a| a.name.clone()).collect(),
                })
            }
            SweepTarget::Spec { template } => {
                Ok(CellBuilder::Spec(CompiledTemplate::compile(template, &spec.axes)?))
            }
        }
    }

    fn build(&self, values: &[f64]) -> Result<CellProblem, SweepError> {
        match self {
            CellBuilder::Pll {
                base,
                order,
                degree,
                axis_names,
            } => {
                let mut params = base.clone();
                for (name, &v) in axis_names.iter().zip(values) {
                    params = params.with_axis(name, v).map_err(invalid)?;
                }
                let model = PllModelBuilder::new(*order).with_params(params).build();
                // The standard PLL query, exactly as `for_pll` poses it:
                // boundary |e| ≤ θ_max, ellipsoidal initial set with the
                // phase-error semi-axis at 0.95·θ_max.
                let n = model.nstates();
                let e_idx = model.phase_error_index();
                let theta = model.theta_max();
                let e = Polynomial::var(n, e_idx);
                let boundary = vec![
                    &Polynomial::constant(n, theta) - &e,
                    &Polynomial::constant(n, theta) + &e,
                ];
                let mut radii = vec![1.5; n];
                radii[e_idx] = 0.95 * theta;
                Ok(CellProblem {
                    system: model.system().clone(),
                    boundary,
                    initial_radii: radii,
                    degree: *degree,
                })
            }
            CellBuilder::Spec(t) => Ok(t.build(values)),
        }
    }
}

// ---------------------------------------------------------------------------
// Grid, outcomes, options
// ---------------------------------------------------------------------------

/// The logical grid: axis 0 is `x` (fast index), optional axis 1 is `y`.
#[derive(Debug, Clone)]
struct Grid {
    nx: usize,
    ny: usize,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Grid {
    fn new(axes: &[SweepAxis]) -> Grid {
        let nx = axes[0].cells;
        let (ny, ys) = match axes.get(1) {
            Some(a) => (a.cells, a.values()),
            None => (1, Vec::new()),
        };
        Grid {
            nx,
            ny,
            xs: axes[0].values(),
            ys,
        }
    }

    fn len(&self) -> usize {
        self.nx * self.ny
    }

    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.nx + x
    }

    fn coords(&self, cell: usize) -> (usize, usize) {
        (cell % self.nx, cell / self.nx)
    }

    fn values(&self, cell: usize) -> Vec<f64> {
        let (x, y) = self.coords(cell);
        if self.ys.is_empty() {
            vec![self.xs[x]]
        } else {
            vec![self.xs[x], self.ys[y]]
        }
    }
}

/// What solving one cell produced — returned by the pluggable cell solver
/// (local pipeline or serve submission).
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Verdict: `true` iff inevitability was certified.
    pub certified: bool,
    /// Canonical result digest, when a report was produced.
    pub digest: Option<String>,
    /// Failure reason for uncertified cells.
    pub reason: Option<String>,
    /// Per-cell problem fingerprint (hex).
    pub fingerprint: String,
    /// Inclusion solves that accepted a warm-start seed.
    pub warm_hits: usize,
    /// Final advection iterates — seeds for this cell's neighbours. Empty
    /// when unavailable (failed cells, remote solves).
    pub warm: Vec<Option<SdpSolution>>,
    /// Wall-clock seconds spent on the cell.
    pub seconds: f64,
    /// The cell's solve ledger snapshot.
    pub ledger: LedgerSnapshot,
}

/// A cell solver: `(linear cell index, problem, warm seed) → outcome`.
/// `Err` means infrastructure failure (not a verdict) and aborts the sweep;
/// journaled cells stay resumable.
pub type CellSolver<'a> = dyn Fn(usize, &CellProblem, Option<Vec<Option<SdpSolution>>>) -> Result<CellOutcome, String>
    + Sync
    + 'a;

/// Execution options of a sweep run (nothing here may influence results —
/// only how they are computed).
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads for each wave (`0` = process default).
    pub threads: usize,
    /// Per-solve supervision of every cell's pipeline run.
    pub resilience: ResilienceConfig,
    /// Problem-size reduction applied inside each cell.
    pub reduction: ReductionOptions,
    /// Optional trace sink (sweep counters + per-cell markers).
    pub trace: Option<Tracer>,
    /// Journal completed cells under this config; with `resume`, replay
    /// them instead of re-solving.
    pub checkpoint: Option<CheckpointConfig>,
    /// Test hook: exit the process (status 3) immediately after journaling
    /// this many *fresh* cells, simulating a mid-sweep kill.
    pub crash_after_cells: Option<usize>,
}

/// Status of one atlas cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Solved; inevitability certified.
    Certified,
    /// Solved; not certified (infeasible, inconclusive, or degraded).
    Failed,
    /// Not solved; every bounding solved rectangle agrees, so the verdict
    /// is implied (carried in [`CellRecord::implied`]).
    Interior,
    /// Not solved; inside a rectangle whose corners disagree but whose size
    /// reached the requested resolution.
    Unresolved,
}

impl CellStatus {
    /// Stable lowercase name used in atlas JSON.
    pub fn name(&self) -> &'static str {
        match self {
            CellStatus::Certified => "certified",
            CellStatus::Failed => "failed",
            CellStatus::Interior => "interior",
            CellStatus::Unresolved => "unresolved",
        }
    }
}

/// One atlas cell.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// Axis-0 index.
    pub ix: usize,
    /// Axis-1 index (0 for 1D sweeps).
    pub iy: usize,
    /// Axis values at this cell.
    pub values: Vec<f64>,
    /// Cell status.
    pub status: CellStatus,
    /// For `interior` cells: the verdict the bounding rectangle implies.
    pub implied: Option<bool>,
    /// Canonical result digest (solved cells with a report).
    pub digest: Option<String>,
    /// Failure reason (solved, uncertified cells).
    pub reason: Option<String>,
    /// Problem fingerprint (solved cells).
    pub fingerprint: Option<String>,
    /// Warm-started solves inside this cell.
    pub warm_hits: usize,
    /// Linear index of the certified neighbour that seeded this cell.
    pub seed_from: Option<usize>,
    /// Wall-clock seconds (0 for unsolved cells; excluded from the
    /// canonical atlas).
    pub seconds: f64,
    /// Whether the cell was replayed from the journal rather than solved in
    /// this process (excluded from the canonical atlas).
    pub replayed: bool,
}

/// Aggregate sweep counters (also emitted as trace counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepCounters {
    /// Solved cells whose verdict certified inevitability.
    pub cells_certified: usize,
    /// Solved cells whose verdict did not.
    pub cells_failed: usize,
    /// Cells the bisection never solved (`interior` + `unresolved`).
    pub cells_skipped_by_bisection: usize,
    /// Warm-started SDP solves across all cells.
    pub warm_start_hits: usize,
    /// Cells replayed from the journal.
    pub cells_replayed: usize,
}

/// The durable result of a sweep: every cell labeled, plus counters.
#[derive(Debug, Clone)]
pub struct Atlas {
    /// The sweep spec, echoed canonically.
    pub sweep: SweepSpec,
    /// Axis-0 cell count.
    pub nx: usize,
    /// Axis-1 cell count (1 for 1D sweeps).
    pub ny: usize,
    /// Axis-0 values by index.
    pub xs: Vec<f64>,
    /// Axis-1 values by index (empty for 1D sweeps).
    pub ys: Vec<f64>,
    /// Row-major cells (`iy·nx + ix`).
    pub cells: Vec<CellRecord>,
    /// Aggregate counters.
    pub counters: SweepCounters,
    /// Refinement waves executed (wave 0 = coarse lattice).
    pub waves: usize,
    /// Total wall-clock seconds of the sweep.
    pub total_seconds: f64,
    /// Run id, when journaling was on.
    pub run_id: Option<String>,
}

impl Atlas {
    /// Canonical atlas JSON: everything the sweep *decided* — spec echo,
    /// grid, per-cell statuses/digests/provenance, counters. Wall-clock
    /// timings, thread counts and replay bookkeeping are excluded, so two
    /// atlases are byte-identical exactly when the sweep results are —
    /// across thread counts and kill/resume cycles.
    pub fn canonical_json(&self) -> String {
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|c| {
                ObjectBuilder::new()
                    .field("ix", c.ix)
                    .field("iy", c.iy)
                    .field("values", &c.values)
                    .field("status", c.status.name())
                    .field("implied", c.implied)
                    .field("digest", &c.digest)
                    .field("reason", &c.reason)
                    .field("fingerprint", &c.fingerprint)
                    .field("warm_hits", c.warm_hits)
                    .field("seed_from", c.seed_from)
                    .build()
            })
            .collect();
        ObjectBuilder::new()
            .field("sweep", self.sweep.to_json())
            .field(
                "grid",
                ObjectBuilder::new()
                    .field("nx", self.nx)
                    .field("ny", self.ny)
                    .field("xs", &self.xs)
                    .field("ys", &self.ys)
                    .build(),
            )
            .field("cells", cells)
            .field(
                "counters",
                ObjectBuilder::new()
                    .field("cells_certified", self.counters.cells_certified)
                    .field("cells_failed", self.counters.cells_failed)
                    .field(
                        "cells_skipped_by_bisection",
                        self.counters.cells_skipped_by_bisection,
                    )
                    .field("warm_start_hits", self.counters.warm_start_hits)
                    .build(),
            )
            .build()
            .to_compact_string()
    }

    /// FNV-1a digest of [`Self::canonical_json`].
    pub fn digest(&self) -> String {
        checkpoint::fingerprint_hex(checkpoint::fnv1a(self.canonical_json().as_bytes()))
    }

    /// Full atlas JSON: the canonical document plus wall-clock timings and
    /// resume bookkeeping (informational; varies run to run).
    pub fn full_json(&self) -> Value {
        let canonical = cppll_json::parse(&self.canonical_json()).expect("canonical JSON parses");
        let seconds: Vec<f64> = self.cells.iter().map(|c| c.seconds).collect();
        let replayed: Vec<usize> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.replayed)
            .map(|(i, _)| i)
            .collect();
        let mut b = ObjectBuilder::new();
        if let Value::Object(fields) = canonical {
            for (k, v) in fields {
                b = b.field(&k, v);
            }
        }
        b.field("digest", self.digest())
            .field("waves", self.waves)
            .field("total_seconds", self.total_seconds)
            .field("cell_seconds", seconds)
            .field("run_id", &self.run_id)
            .field("cells_replayed", replayed)
            .build()
    }

    /// `true` per cell iff the cell is certified or interior-to-certified —
    /// the mask the contour tracer draws.
    pub fn certified_mask(&self) -> Vec<bool> {
        self.cells
            .iter()
            .map(|c| match c.status {
                CellStatus::Certified => true,
                CellStatus::Interior => c.implied == Some(true),
                _ => false,
            })
            .collect()
    }

    /// ASCII preview: `#` certified, `-` failed, `+`/`.` interior
    /// (certified/failed), `?` unresolved. Row `iy = ny−1` prints first so
    /// the y axis points up.
    pub fn ascii(&self) -> String {
        let mut out = String::new();
        for iy in (0..self.ny).rev() {
            for ix in 0..self.nx {
                let c = &self.cells[iy * self.nx + ix];
                out.push(match (c.status, c.implied) {
                    (CellStatus::Certified, _) => '#',
                    (CellStatus::Failed, _) => '-',
                    (CellStatus::Interior, Some(true)) => '+',
                    (CellStatus::Interior, _) => '.',
                    (CellStatus::Unresolved, _) => '?',
                });
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The bisection engine
// ---------------------------------------------------------------------------

/// A closed lattice rectangle with solved corners (degenerate in y for 1D
/// sweeps: `y0 == y1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Rect {
    x0: usize,
    x1: usize,
    y0: usize,
    y1: usize,
}

impl Rect {
    fn corners(&self) -> Vec<(usize, usize)> {
        let mut c = vec![(self.x0, self.y0)];
        if self.x1 > self.x0 {
            c.push((self.x1, self.y0));
        }
        if self.y1 > self.y0 {
            c.push((self.x0, self.y1));
            if self.x1 > self.x0 {
                c.push((self.x1, self.y1));
            }
        }
        c
    }

    fn max_side(&self) -> usize {
        (self.x1 - self.x0).max(self.y1 - self.y0)
    }

    fn splittable(&self) -> bool {
        self.x1 - self.x0 > 1 || self.y1 - self.y0 > 1
    }

    /// Splits along every side longer than one cell; children cover the
    /// rectangle exactly and share the midline corners.
    fn split(&self) -> Vec<Rect> {
        let xs: Vec<(usize, usize)> = if self.x1 - self.x0 > 1 {
            let m = self.x0 + (self.x1 - self.x0) / 2;
            vec![(self.x0, m), (m, self.x1)]
        } else {
            vec![(self.x0, self.x1)]
        };
        let ys: Vec<(usize, usize)> = if self.y1 - self.y0 > 1 {
            let m = self.y0 + (self.y1 - self.y0) / 2;
            vec![(self.y0, m), (m, self.y1)]
        } else {
            vec![(self.y0, self.y1)]
        };
        let mut out = Vec::new();
        for &(y0, y1) in &ys {
            for &(x0, x1) in &xs {
                out.push(Rect { x0, x1, y0, y1 });
            }
        }
        out
    }
}

/// Lattice coordinates of the coarse wave along one axis: multiples of
/// `stride` plus the final index.
fn lattice_coords(cells: usize, stride: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..cells).step_by(stride.max(1)).collect();
    if *v.last().expect("cells ≥ 1") != cells - 1 {
        v.push(cells - 1);
    }
    v
}

/// Automatic coarse stride: the largest power of two ≤ `(cells − 1) / 4`
/// (at least 1), so the initial lattice has roughly five nodes per axis.
fn auto_stride(cells: usize) -> usize {
    let target = cells.saturating_sub(1) / 4;
    let mut s = 1;
    while s * 2 <= target {
        s *= 2;
    }
    s
}

#[derive(Debug, Clone)]
struct SolvedCell {
    certified: bool,
    digest: Option<String>,
    reason: Option<String>,
    fingerprint: String,
    warm_hits: usize,
    seed_from: Option<usize>,
    warm: Vec<Option<SdpSolution>>,
    seconds: f64,
    replayed: bool,
}

/// The certified neighbour nearest to `cell` in grid L1 distance (ties:
/// smallest linear index — [`BTreeMap`] iteration order makes this exact).
fn nearest_certified(grid: &Grid, solved: &BTreeMap<usize, SolvedCell>, cell: usize) -> Option<usize> {
    let (cx, cy) = grid.coords(cell);
    let mut best: Option<(usize, usize)> = None;
    for (&i, s) in solved {
        if !s.certified {
            continue;
        }
        let (x, y) = grid.coords(i);
        let d = cx.abs_diff(x) + cy.abs_diff(y);
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, i));
        }
    }
    best.map(|(_, i)| i)
}

/// Runs a sweep with the local in-process pipeline as the cell solver.
///
/// # Errors
///
/// [`SweepError`] on malformed specs, journal failures, or infrastructure
/// failures inside a cell solver.
pub fn run_sweep(spec: &SweepSpec, opt: &SweepOptions) -> Result<Atlas, SweepError> {
    let solver = local_cell_solver(opt);
    run_sweep_with(spec, opt, &solver)
}

/// The in-process cell solver: a full pipeline run per cell, with the warm
/// seed injected via [`PipelineOptions::advection_seed`]. Lyapunov
/// infeasibility is a *verdict* (`failed`), not an error.
pub fn local_cell_solver(
    opt: &SweepOptions,
) -> impl Fn(usize, &CellProblem, Option<Vec<Option<SdpSolution>>>) -> Result<CellOutcome, String>
       + Sync
       + '_ {
    move |_cell, problem, seed| {
        let t0 = Instant::now();
        let verifier = InevitabilityVerifier::new(
            &problem.system,
            problem.boundary.clone(),
            Region::ellipsoid(&problem.initial_radii),
        );
        let mut popt = PipelineOptions::degree(problem.degree);
        popt.resilience = opt.resilience.clone();
        popt.reduction = opt.reduction;
        let fp = checkpoint::fingerprint_hex(verifier.problem_fingerprint(&popt));
        popt.advection_seed = seed;
        match verifier.verify(&popt) {
            Ok(report) => {
                let reason = match &report.verdict {
                    Verdict::Inevitable { .. } => None,
                    Verdict::Inconclusive { reason } => Some(reason.clone()),
                    Verdict::Degraded { stage, reason } => {
                        Some(format!("{}: {reason}", stage.name()))
                    }
                };
                Ok(CellOutcome {
                    certified: report.verdict.is_verified(),
                    digest: Some(report.result_digest()),
                    reason,
                    fingerprint: fp,
                    warm_hits: report.advection_warm_hits,
                    warm: report.advection_warm,
                    seconds: t0.elapsed().as_secs_f64(),
                    ledger: LedgerSnapshot {
                        stats: report.solve_stats,
                        timings: report.solve_timings,
                        reduction: report.reduction,
                    },
                })
            }
            // Infeasibility at this degree is an answer about the cell, not
            // an infrastructure fault: the cell fails, the sweep continues.
            Err(e @ VerifyError::Infeasible { .. }) => Ok(CellOutcome {
                certified: false,
                digest: None,
                reason: Some(e.to_string()),
                fingerprint: fp,
                warm_hits: 0,
                warm: Vec::new(),
                seconds: t0.elapsed().as_secs_f64(),
                ledger: LedgerSnapshot::default(),
            }),
            Err(e) => Err(e.to_string()),
        }
    }
}

/// Runs a sweep with a pluggable cell solver (the CLI's `--via` mode routes
/// cells to a `cppll-serve` daemon through this).
///
/// The wave schedule, warm-seed assignment, and journal order are
/// deterministic functions of the spec and the verdicts alone, so the
/// canonical atlas is bit-identical across thread counts and kill/resume
/// cycles.
///
/// # Errors
///
/// [`SweepError`] on malformed specs, journal failures, or solver
/// infrastructure failures.
pub fn run_sweep_with(
    spec: &SweepSpec,
    opt: &SweepOptions,
    solver: &CellSolver<'_>,
) -> Result<Atlas, SweepError> {
    spec.validate()?;
    let builder = CellBuilder::compile(spec)?;
    let grid = Grid::new(&spec.axes);
    let t_start = Instant::now();

    // Journal: replayed cells are consulted at solve time so the wave
    // structure (and therefore the journal append order) is identical to
    // the uninterrupted run.
    let mut journal: Option<RunJournal> = None;
    let mut replayed: BTreeMap<usize, SolvedCell> = BTreeMap::new();
    let mut run_id = None;
    if let Some(cfg) = &opt.checkpoint {
        let (j, records, recovery) = RunJournal::open(cfg, spec.fingerprint())?;
        for rec in records {
            if let StageRecord::SweepCell {
                cell,
                certified,
                digest,
                reason,
                fingerprint,
                warm_hits,
                seed_from,
                warm,
                seconds,
                ..
            } = rec
            {
                replayed.insert(
                    cell,
                    SolvedCell {
                        certified,
                        digest,
                        reason,
                        fingerprint,
                        warm_hits,
                        seed_from,
                        warm,
                        seconds,
                        replayed: true,
                    },
                );
            }
        }
        if recovery.recovered() {
            if let Some(t) = &opt.trace {
                t.counter("journal_recovered", 1);
            }
        }
        run_id = Some(cfg.run_id.clone());
        journal = Some(j);
    }

    // Coarse lattice: wave 0 solves every lattice node; the rectangles
    // between them are the bisection's work list.
    let stride_x = if !spec.bisect {
        1
    } else if spec.coarse > 0 {
        spec.coarse
    } else {
        auto_stride(grid.nx)
    };
    let stride_y = if !spec.bisect {
        1
    } else if spec.coarse > 0 {
        spec.coarse
    } else {
        auto_stride(grid.ny)
    };
    let lx = lattice_coords(grid.nx, stride_x);
    let ly = lattice_coords(grid.ny, stride_y);
    let mut pending: Vec<usize> = {
        let mut s = BTreeSet::new();
        for &y in &ly {
            for &x in &lx {
                s.insert(grid.idx(x, y));
            }
        }
        s.into_iter().collect()
    };
    let mut rects: Vec<Rect> = Vec::new();
    for yw in ly.windows(2) {
        for xw in lx.windows(2) {
            rects.push(Rect {
                x0: xw[0],
                x1: xw[1],
                y0: yw[0],
                y1: yw[1],
            });
        }
    }
    if grid.ny == 1 || ly.len() == 1 {
        // Degenerate y: intervals along x only.
        if rects.is_empty() {
            for xw in lx.windows(2) {
                rects.push(Rect {
                    x0: xw[0],
                    x1: xw[1],
                    y0: 0,
                    y1: 0,
                });
            }
        }
    }

    let mut solved: BTreeMap<usize, SolvedCell> = BTreeMap::new();
    let mut leaves: Vec<(Rect, Option<bool>)> = Vec::new();
    let mut fresh_cells = 0usize;
    let mut waves = 0usize;

    loop {
        if !pending.is_empty() {
            waves += 1;
            // Seeds are assigned before the wave solves, so a cell can only
            // be seeded from a strictly earlier wave — deterministic under
            // any thread count.
            let jobs: Vec<(usize, Option<usize>)> = pending
                .iter()
                .map(|&c| (c, nearest_certified(&grid, &solved, c)))
                .collect();
            let outcomes: Vec<Result<SolvedCell, SweepError>> =
                cppll_par::parallel_map(jobs.len(), opt.threads, |i| {
                    let (cell, neighbour) = jobs[i];
                    if let Some(r) = replayed.get(&cell) {
                        return Ok(r.clone());
                    }
                    let problem = builder.build(&grid.values(cell))?;
                    let seed = neighbour.and_then(|s| {
                        let w = &solved[&s].warm;
                        if w.iter().any(Option::is_some) {
                            Some(w.clone())
                        } else {
                            None
                        }
                    });
                    let seed_from = if seed.is_some() { neighbour } else { None };
                    let out = solver(cell, &problem, seed)
                        .map_err(|message| SweepError::Solver { cell, message })?;
                    Ok(SolvedCell {
                        certified: out.certified,
                        digest: out.digest,
                        reason: out.reason,
                        fingerprint: out.fingerprint,
                        warm_hits: out.warm_hits,
                        seed_from,
                        warm: out.warm,
                        seconds: out.seconds,
                        replayed: false,
                    })
                });
            for (&(cell, _), outcome) in jobs.iter().zip(outcomes) {
                let s = outcome?;
                if !s.replayed {
                    if let Some(j) = journal.as_mut() {
                        j.append(&StageRecord::SweepCell {
                            cell,
                            certified: s.certified,
                            digest: s.digest.clone(),
                            reason: s.reason.clone(),
                            fingerprint: s.fingerprint.clone(),
                            warm_hits: s.warm_hits,
                            seed_from: s.seed_from,
                            warm: s.warm.clone(),
                            seconds: s.seconds,
                            ledger: s.ledger_snapshot(),
                        })?;
                    }
                    fresh_cells += 1;
                    if let Some(t) = &opt.trace {
                        t.counter("sweep_cells_solved", 1);
                    }
                    if opt.crash_after_cells == Some(fresh_cells) {
                        // Simulated mid-sweep kill for the determinism
                        // acceptance tests: the journal holds everything
                        // solved so far.
                        std::process::exit(3);
                    }
                }
                solved.insert(cell, s);
            }
            pending.clear();
        }
        if rects.is_empty() {
            break;
        }
        let mut new_points: BTreeSet<usize> = BTreeSet::new();
        let mut next_rects = Vec::new();
        for r in rects {
            let verdicts: Vec<bool> = r
                .corners()
                .iter()
                .map(|&(x, y)| solved[&grid.idx(x, y)].certified)
                .collect();
            let agree = verdicts.iter().all(|&v| v == verdicts[0]);
            if agree {
                leaves.push((r, Some(verdicts[0])));
            } else if r.splittable() && r.max_side() > spec.resolution {
                for child in r.split() {
                    for (x, y) in child.corners() {
                        let c = grid.idx(x, y);
                        if !solved.contains_key(&c) {
                            new_points.insert(c);
                        }
                    }
                    next_rects.push(child);
                }
            } else {
                leaves.push((r, None));
            }
        }
        rects = next_rects;
        pending = new_points.into_iter().collect();
    }

    // Labeling: start from `unresolved`, then every agreeing leaf stamps
    // its unsolved cells `interior`. Two agreeing leaves sharing cells
    // share solved corners, so their implied verdicts can never conflict.
    leaves.sort_by_key(|(r, _)| *r);
    let mut status: Vec<(CellStatus, Option<bool>)> =
        vec![(CellStatus::Unresolved, None); grid.len()];
    for (r, verdict) in &leaves {
        let Some(v) = verdict else { continue };
        for y in r.y0..=r.y1 {
            for x in r.x0..=r.x1 {
                let c = grid.idx(x, y);
                if !solved.contains_key(&c) {
                    status[c] = (CellStatus::Interior, Some(*v));
                }
            }
        }
    }

    let mut counters = SweepCounters::default();
    let mut cells = Vec::with_capacity(grid.len());
    for (c, &cell_status) in status.iter().enumerate() {
        let (ix, iy) = grid.coords(c);
        let values = grid.values(c);
        let rec = match solved.get(&c) {
            Some(s) => {
                if s.certified {
                    counters.cells_certified += 1;
                } else {
                    counters.cells_failed += 1;
                }
                counters.warm_start_hits += s.warm_hits;
                if s.replayed {
                    counters.cells_replayed += 1;
                }
                CellRecord {
                    ix,
                    iy,
                    values,
                    status: if s.certified {
                        CellStatus::Certified
                    } else {
                        CellStatus::Failed
                    },
                    implied: None,
                    digest: s.digest.clone(),
                    reason: s.reason.clone(),
                    fingerprint: Some(s.fingerprint.clone()),
                    warm_hits: s.warm_hits,
                    seed_from: s.seed_from,
                    seconds: s.seconds,
                    replayed: s.replayed,
                }
            }
            None => {
                counters.cells_skipped_by_bisection += 1;
                let (st, implied) = cell_status;
                CellRecord {
                    ix,
                    iy,
                    values,
                    status: st,
                    implied,
                    digest: None,
                    reason: None,
                    fingerprint: None,
                    warm_hits: 0,
                    seed_from: None,
                    seconds: 0.0,
                    replayed: false,
                }
            }
        };
        cells.push(rec);
    }
    if let Some(t) = &opt.trace {
        t.counter("cells_certified", counters.cells_certified as u64);
        t.counter("cells_failed", counters.cells_failed as u64);
        t.counter(
            "cells_skipped_by_bisection",
            counters.cells_skipped_by_bisection as u64,
        );
        t.counter("warm_start_hits", counters.warm_start_hits as u64);
    }

    Ok(Atlas {
        sweep: spec.clone(),
        nx: grid.nx,
        ny: grid.ny,
        xs: grid.xs,
        ys: grid.ys,
        cells,
        counters,
        waves,
        total_seconds: t_start.elapsed().as_secs_f64(),
        run_id,
    })
}

impl SolvedCell {
    fn ledger_snapshot(&self) -> LedgerSnapshot {
        // The journal record's snapshot slot; per-cell ledgers are not
        // aggregated across the sweep, so the default (empty) snapshot is
        // recorded for cells whose solver did not supply one.
        LedgerSnapshot::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis(name: &str, min: f64, max: f64, cells: usize) -> SweepAxis {
        SweepAxis {
            name: name.into(),
            min,
            max,
            cells,
        }
    }

    #[test]
    fn axis_values_are_inclusive_linspace() {
        let a = axis("a", -1.0, 1.0, 5);
        assert_eq!(a.values(), vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
        assert_eq!(axis("a", 2.0, 9.0, 1).values(), vec![2.0]);
    }

    #[test]
    fn placeholder_splice_is_token_exact() {
        let axes = vec![axis("a", 0.0, 1.0, 2), axis("ab", 0.0, 1.0, 2)];
        let s = splice_placeholders("$a x0 + $ab x1", 2, &axes).unwrap();
        assert_eq!(s, "x2 x0 + x3 x1");
        assert!(splice_placeholders("$zzz x0", 2, &axes).is_err());
    }

    #[test]
    fn projection_is_exact_for_negative_values() {
        // p = a·x0 + a²·x1 over ring 2 + 1 axis var.
        let mut p = Polynomial::zero(3);
        p.add_term(Monomial::new(vec![1, 0, 1]), 1.0);
        p.add_term(Monomial::new(vec![0, 1, 2]), 1.0);
        let q = project_axes(&p, 2, &[-0.5]);
        assert_eq!(q.eval(&[1.0, 0.0]), -0.5);
        assert_eq!(q.eval(&[0.0, 1.0]), 0.25);
        assert_eq!(q.nvars(), 2);
    }

    #[test]
    fn spec_round_trips_and_fingerprint_is_stable() {
        let spec = SweepSpec::example();
        let json = spec.to_json().to_compact_string();
        let back = SweepSpec::from_json_str(&json).unwrap();
        assert_eq!(back.fingerprint(), spec.fingerprint());
        assert_eq!(back.axes.len(), 2);
        assert!(back.bisect);
    }

    #[test]
    fn validation_rejects_bad_axes() {
        let mut spec = SweepSpec::example();
        spec.axes.push(axis("c", 0.0, 1.0, 2));
        assert!(matches!(spec.validate(), Err(SweepError::Invalid { .. })));
        let mut spec = SweepSpec::example();
        spec.axes[1].name = "a".into();
        assert!(matches!(spec.validate(), Err(SweepError::Invalid { .. })));
        let mut spec = SweepSpec::example();
        spec.axes[0].min = 2.0;
        spec.axes[0].max = 1.0;
        assert!(matches!(spec.validate(), Err(SweepError::Invalid { .. })));
    }

    #[test]
    fn lattice_and_stride_cover_the_axis() {
        assert_eq!(lattice_coords(21, 4), vec![0, 4, 8, 12, 16, 20]);
        assert_eq!(lattice_coords(10, 4), vec![0, 4, 8, 9]);
        assert_eq!(lattice_coords(1, 1), vec![0]);
        assert_eq!(auto_stride(21), 4);
        assert_eq!(auto_stride(9), 2);
        assert_eq!(auto_stride(5), 1);
        assert_eq!(auto_stride(1), 1);
    }

    #[test]
    fn rect_split_shares_midline_corners() {
        let r = Rect {
            x0: 0,
            x1: 4,
            y0: 0,
            y1: 4,
        };
        let children = r.split();
        assert_eq!(children.len(), 4);
        assert!(children.iter().all(|c| c.max_side() == 2));
        // 1D interval splits into two.
        let i = Rect {
            x0: 0,
            x1: 5,
            y0: 0,
            y1: 0,
        };
        assert_eq!(i.split().len(), 2);
        assert!(!Rect {
            x0: 0,
            x1: 1,
            y0: 0,
            y1: 1
        }
        .splittable());
    }

    /// A synthetic solver (no SDPs) drives the full engine: left half
    /// certified, right half failed. The bisection must label every
    /// unsolved cell `interior`, never invent verdicts, and solve well
    /// under the full grid.
    #[test]
    fn engine_bisects_a_vertical_boundary() {
        let spec = SweepSpec {
            axes: vec![axis("a", -1.0, 1.0, 21), axis("b", -1.5, -0.5, 21)],
            ..SweepSpec::example()
        };
        let solver = |_cell: usize,
                      problem: &CellProblem,
                      _seed: Option<Vec<Option<SdpSolution>>>|
         -> Result<CellOutcome, String> {
            // The example template's first flow is $a·x0: certified iff the
            // projected coefficient is negative.
            let a = problem.system.modes()[0].flow()[0].eval(&[1.0, 0.0]);
            Ok(CellOutcome {
                certified: a < 0.0,
                digest: Some(format!("d{a}")),
                reason: None,
                fingerprint: "f".into(),
                warm_hits: 0,
                warm: Vec::new(),
                seconds: 0.0,
                ledger: LedgerSnapshot::default(),
            })
        };
        let atlas = run_sweep_with(&spec, &SweepOptions::default(), &solver).unwrap();
        assert_eq!(atlas.cells.len(), 21 * 21);
        let solved = atlas.counters.cells_certified + atlas.counters.cells_failed;
        assert!(
            solved * 100 < atlas.cells.len() * 40,
            "bisection should solve <40% of the grid, solved {solved}"
        );
        assert_eq!(
            atlas.counters.cells_skipped_by_bisection,
            atlas.cells.len() - solved
        );
        // Statuses are sound: every certified/failed cell has a digest and
        // fingerprint; every skipped cell has neither.
        for c in &atlas.cells {
            match c.status {
                CellStatus::Certified | CellStatus::Failed => {
                    assert!(c.fingerprint.is_some());
                }
                CellStatus::Interior => {
                    assert!(c.digest.is_none());
                    // The implied verdict matches the true half-plane.
                    let expect = atlas.xs[c.ix] < 0.0;
                    assert_eq!(c.implied, Some(expect), "cell ({}, {})", c.ix, c.iy);
                }
                CellStatus::Unresolved => panic!("full-resolution sweep left unresolved cells"),
            }
        }
        // The boundary column (a = 0 at ix = 10) is fully solved.
        for iy in 0..21 {
            let c = &atlas.cells[iy * 21 + 10];
            assert_eq!(c.status, CellStatus::Failed, "boundary cell iy={iy}");
        }
        // Determinism: a second run is byte-identical.
        let again = run_sweep_with(&spec, &SweepOptions::default(), &solver).unwrap();
        assert_eq!(again.canonical_json(), atlas.canonical_json());
    }

    /// Stopping refinement early (`resolution` > 1) leaves the disputed
    /// band `unresolved`, never mislabeled.
    #[test]
    fn coarse_resolution_leaves_unresolved_cells() {
        let spec = SweepSpec {
            axes: vec![axis("a", -1.0, 1.0, 17), axis("b", -1.5, -0.5, 17)],
            resolution: 4,
            ..SweepSpec::example()
        };
        let solver = |_cell: usize,
                      problem: &CellProblem,
                      _seed: Option<Vec<Option<SdpSolution>>>|
         -> Result<CellOutcome, String> {
            let a = problem.system.modes()[0].flow()[0].eval(&[1.0, 0.0]);
            Ok(CellOutcome {
                certified: a < 0.0,
                digest: None,
                reason: None,
                fingerprint: "f".into(),
                warm_hits: 0,
                warm: Vec::new(),
                seconds: 0.0,
                ledger: LedgerSnapshot::default(),
            })
        };
        let atlas = run_sweep_with(&spec, &SweepOptions::default(), &solver).unwrap();
        let unresolved = atlas
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Unresolved)
            .count();
        assert!(unresolved > 0, "resolution 4 must stop refinement early");
        for c in &atlas.cells {
            if c.status == CellStatus::Unresolved {
                assert!(c.digest.is_none() && c.fingerprint.is_none());
            }
        }
    }
}
