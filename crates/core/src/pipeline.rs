//! End-to-end inevitability verification (`P = P1 ∧ P2`, Algorithm 1).

use std::time::Instant;

use cppll_hybrid::HybridSystem;
use cppll_json::{ObjectBuilder, Value};
use cppll_poly::Polynomial;
use cppll_sdp::{SdpSolution, SolveTimings};
use cppll_sos::{
    check_inclusion, check_inclusion_seeded, InclusionOptions, LedgerStats, ReduceMode,
    ReductionOptions, ReductionStats, SolveLedger,
};
use cppll_trace::{TraceLevel, Tracer};

use crate::advection::{Advection, AdvectionOptions};
use crate::checkpoint::{
    self, CheckpointConfig, CheckpointError, Checkpointer, LedgerSnapshot, ResumeSummary,
    StageRecord,
};
use crate::escape::{EscapeCertificate, EscapeOptions, EscapeSynthesizer};
use crate::levelset::{LevelSetMaximizer, LevelSetOptions, LevelSetResult};
use crate::lyapunov::{LyapunovCertificates, LyapunovOptions, LyapunovSynthesizer};
use crate::region::Region;
use crate::resilience::{FailureReport, PipelineStage, ResilienceConfig};
use crate::VerifyError;

/// Options for the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Lyapunov synthesis options (step "Attractive Invariant" of Table 2).
    pub lyapunov: LyapunovOptions,
    /// Level maximisation options (step "Max. Level Curves").
    pub level: LevelSetOptions,
    /// Advection options (step "Advection").
    pub advection: AdvectionOptions,
    /// Escape-certificate options (step "Escape Certificate").
    pub escape: EscapeOptions,
    /// Bound on advection iterations (Algorithm 1's `K`).
    pub max_advection_iters: usize,
    /// Margin by which the attractive invariant is shrunk in inclusion
    /// checks, on top of the accumulated Taylor-error estimates.
    pub inclusion_margin: f64,
    /// Multiplier half-degree for the inclusion checks (step "Checking Set
    /// Inclusion").
    pub inclusion_mult_half_degree: u32,
    /// Problem-size reduction applied to every SOS compile of the run
    /// (Newton-polytope basis pruning + sign-symmetry blocking). On by
    /// default; [`ReductionOptions::none`] (CLI `--no-reduce`) reproduces
    /// the unreduced SDPs bit for bit.
    pub reduction: ReductionOptions,
    /// Resilience of the run: per-solve retries, budgets, deadline and the
    /// fault-injection hook. Inert by default.
    pub resilience: ResilienceConfig,
    /// Crash-safe journaling and resume. `None` (the default) journals
    /// nothing. With a config, every completed stage is journaled under
    /// `<dir>/<run_id>/journal.jsonl`; with [`CheckpointConfig::resume`]
    /// set, an existing journal is replayed — completed stages are skipped
    /// and the next SDP solves are warm-started from the journaled
    /// iterates.
    pub checkpoint: Option<CheckpointConfig>,
    /// Optional trace sink for the run. At [`TraceLevel::Stage`] the
    /// pipeline emits one span per stage (plus `advection_step` spans and
    /// `stage_replayed` markers on resume); deeper levels add supervisor
    /// and solver detail. Tracing never touches the numerics, so the
    /// result digest is identical at every level.
    pub trace: Option<Tracer>,
    /// Externally supplied per-mode warm-start seeds for the *first*
    /// advection inclusion solves — the parameter-step generalisation of
    /// the per-advection-step warm chain: a sweep seeds a cell's solves
    /// from the nearest already-certified neighbour's final iterates. A
    /// failed seeded solve silently falls back to a cold solve, so seeding
    /// can never change a verdict or a result digest; it is therefore
    /// deliberately excluded from the problem fingerprint. Ignored when a
    /// journal replay supplies its own iterates for a step.
    pub advection_seed: Option<Vec<Option<SdpSolution>>>,
}

impl PipelineOptions {
    /// Reasonable defaults for a certificate of the given degree.
    pub fn degree(lyapunov_degree: u32) -> Self {
        PipelineOptions {
            lyapunov: LyapunovOptions::degree(lyapunov_degree),
            level: LevelSetOptions::default(),
            advection: AdvectionOptions::default(),
            escape: EscapeOptions::degree(4),
            max_advection_iters: 40,
            inclusion_margin: 1e-3,
            // The Lemma-1 certificate needs σ·front to reach the degree of
            // the attractive-invariant polynomial: deg σ ≥ deg V − deg front.
            inclusion_mult_half_degree: (lyapunov_degree.saturating_sub(2) / 2).max(1),
            reduction: ReductionOptions::default(),
            resilience: ResilienceConfig::default(),
            checkpoint: None,
            trace: None,
            advection_seed: None,
        }
    }
}

/// Wall-clock timing of one pipeline step — the rows of the paper's Table 2.
#[derive(Debug, Clone)]
pub struct StepTiming {
    /// Step name (matches Table 2's row labels).
    pub name: &'static str,
    /// Elapsed seconds.
    pub seconds: f64,
}

/// Outcome of the verification.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Inevitability verified: `P1 ∧ P2` hold.
    Inevitable {
        /// `true` when bounded advection alone proved `P2`; `false` when
        /// escape certificates were needed for a leftover subset (as in the
        /// paper's fourth-order benchmark).
        advection_sufficed: bool,
    },
    /// The relaxations could not decide (sound but incomplete — a higher
    /// degree or finer advection may still succeed).
    Inconclusive {
        /// What failed.
        reason: String,
    },
    /// A stage's solves failed numerically even after the configured
    /// retries (or ran out of budget); the report is partial — everything
    /// proven before the failure is still in it, and the
    /// [`VerificationReport::failures`] carry the attempt logs.
    Degraded {
        /// The stage whose failure ended the run.
        stage: PipelineStage,
        /// What failed.
        reason: String,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Inevitable`].
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Inevitable { .. })
    }

    /// `true` for [`Verdict::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, Verdict::Degraded { .. })
    }
}

/// One entry of the advection trace.
#[derive(Debug, Clone)]
pub struct AdvectionTraceEntry {
    /// The piecewise front after this step (one polynomial per mode).
    pub pieces: Vec<Polynomial>,
    /// Taylor truncation error estimate of this step.
    pub taylor_error: f64,
    /// Guard-consistency mismatch of the piecewise front after this step.
    pub guard_mismatch: f64,
    /// Whether the front was certified inside the attractive invariant
    /// after this step.
    pub included: bool,
}

/// Everything the pipeline produced: certificates, levels, traces, timings
/// and the verdict.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// The multiple Lyapunov certificates (P1). `None` only on a
    /// [`Verdict::Degraded`] run whose Lyapunov stage failed.
    pub certificates: Option<LyapunovCertificates>,
    /// Maximised level sets / attractive invariant (P1).
    pub levels: LevelSetResult,
    /// Advection trace (P2).
    pub advection_trace: Vec<AdvectionTraceEntry>,
    /// Escape certificates for the leftover region, if any (P2).
    pub escape_certificates: Vec<EscapeCertificate>,
    /// Per-step wall-clock timings (Table 2 reproduction).
    pub timings: Vec<StepTiming>,
    /// Final verdict.
    pub verdict: Verdict,
    /// Stage failures the pipeline degraded through (empty on a clean run).
    pub failures: Vec<FailureReport>,
    /// Aggregate supervised-solve statistics of the whole run.
    pub solve_stats: LedgerStats,
    /// Per-stage SDP solver wall-clock totals, aggregated across every
    /// supervised solve of the run (Schur assembly, KKT factor/solve, …).
    pub solve_timings: SolveTimings,
    /// Problem-size reduction totals across every compiled solve of the run
    /// (Gram bases before/after pruning, emitted block counts and sizes).
    pub reduction: ReductionStats,
    /// Checkpoint/resume bookkeeping: replayed vs fresh stage counts and
    /// warm-started solves. All-zero (with no run id) when checkpointing
    /// was off.
    pub resume: ResumeSummary,
    /// Final per-mode advection inclusion iterates — the warm-start seeds
    /// a parameter-sweep neighbour can pass back in via
    /// [`PipelineOptions::advection_seed`]. Empty when advection never ran.
    /// Excluded from [`Self::canonical_result_json`]: iterates depend on
    /// the seeding history, results do not.
    pub advection_warm: Vec<Option<SdpSolution>>,
    /// Inclusion solves of this run that accepted a warm-start seed
    /// (journal-chained or parameter-seeded). Excluded from
    /// [`Self::canonical_result_json`].
    pub advection_warm_hits: usize,
}

impl VerificationReport {
    /// Number of advection iterations performed.
    pub fn advection_iterations(&self) -> usize {
        self.advection_trace.len()
    }

    /// Iteration after which the front was inside the attractive invariant,
    /// if advection sufficed.
    pub fn included_after(&self) -> Option<usize> {
        self.advection_trace
            .iter()
            .position(|e| e.included)
            .map(|i| i + 1)
    }

    /// Total wall-clock seconds across all steps.
    pub fn total_seconds(&self) -> f64 {
        self.timings.iter().map(|t| t.seconds).sum()
    }

    /// Canonical JSON of everything the pipeline *proved*: verdict,
    /// certificates, level set, advection trace, and escape certificates.
    /// Wall-clock timings, solve statistics and resume bookkeeping are
    /// excluded. `cppll-json` prints every `f64` with shortest-round-trip
    /// formatting (including the sign of `-0.0`), so two reports have equal
    /// canonical JSON exactly when their results are bit-identical — the
    /// property the crash/resume acceptance test asserts.
    pub fn canonical_result_json(&self) -> String {
        let verdict = match &self.verdict {
            Verdict::Inevitable { advection_sufficed } => ObjectBuilder::new()
                .field("kind", "inevitable")
                .field("advection_sufficed", *advection_sufficed)
                .build(),
            Verdict::Inconclusive { reason } => ObjectBuilder::new()
                .field("kind", "inconclusive")
                .field("reason", reason.as_str())
                .build(),
            Verdict::Degraded { stage, reason } => ObjectBuilder::new()
                .field("kind", "degraded")
                .field("stage", stage.name())
                .field("reason", reason.as_str())
                .build(),
        };
        let certificates = match &self.certificates {
            Some(c) => ObjectBuilder::new()
                .field("vs", c.all())
                .field("degree", c.degree())
                .field("epsilon", c.epsilon())
                .field("scheme", c.scheme())
                .build(),
            None => Value::Null,
        };
        let trace: Vec<Value> = self
            .advection_trace
            .iter()
            .map(|e| {
                ObjectBuilder::new()
                    .field("pieces", &e.pieces)
                    .field("taylor_error", e.taylor_error)
                    .field("guard_mismatch", e.guard_mismatch)
                    .field("included", e.included)
                    .build()
            })
            .collect();
        ObjectBuilder::new()
            .field("verdict", verdict)
            .field("certificates", certificates)
            .field(
                "levels",
                ObjectBuilder::new()
                    .field("level", self.levels.level)
                    .field("ai_polys", &self.levels.ai_polys)
                    .field("probes", self.levels.probes)
                    .build(),
            )
            .field("advection_trace", trace)
            .field("escape_certificates", &self.escape_certificates)
            .build()
            .to_compact_string()
    }

    /// FNV-1a digest of [`Self::canonical_result_json`] — a short stable
    /// token the CLI prints and CI diffs across kill/resume boundaries.
    pub fn result_digest(&self) -> String {
        checkpoint::fingerprint_hex(checkpoint::fnv1a(self.canonical_result_json().as_bytes()))
    }
}

/// The one-call verifier for inevitability of an origin equilibrium.
///
/// # Examples
///
/// ```no_run
/// use cppll_pll::{PllModelBuilder, PllOrder};
/// use cppll_verify::{InevitabilityVerifier, PipelineOptions, Region};
///
/// let model = PllModelBuilder::new(PllOrder::Third).build();
/// let verifier = InevitabilityVerifier::for_pll(&model);
/// let report = verifier.verify(&PipelineOptions::degree(4))?;
/// assert!(report.verdict.is_verified());
/// # Ok::<(), cppll_verify::VerifyError>(())
/// ```
pub struct InevitabilityVerifier<'s> {
    system: &'s HybridSystem,
    /// Verified-region boundary `{g ≥ 0}` (the modeled envelope).
    boundary: Vec<Polynomial>,
    /// Initial set whose inevitability is to be proven (`S1 ∪ S2`).
    initial: Region,
}

impl<'s> InevitabilityVerifier<'s> {
    /// Creates a verifier for a hybrid system with an origin equilibrium.
    ///
    /// `boundary` lists polynomials `g` with the modeled region
    /// `= {g ≥ 0}`; `initial` is the outer set from which inevitability is
    /// claimed (the solid outer curve of the paper's Figs. 4–5).
    pub fn new(system: &'s HybridSystem, boundary: Vec<Polynomial>, initial: Region) -> Self {
        InevitabilityVerifier {
            system,
            boundary,
            initial,
        }
    }

    /// Convenience constructor for a CP PLL verification model: the
    /// boundary is `|e| ≤ θ_max` and the initial set an ellipsoid spanning
    /// most of the modeled region.
    pub fn for_pll(model: &'s cppll_pll::VerificationModel) -> Self {
        let n = model.nstates();
        let e_idx = model.phase_error_index();
        let theta = model.theta_max();
        let e = Polynomial::var(n, e_idx);
        let boundary = vec![
            &Polynomial::constant(n, theta) - &e,
            &Polynomial::constant(n, theta) + &e,
        ];
        // Initial ellipsoid: voltages up to ±1.5 (well beyond the certified
        // level sets), phase error up to 0.95·θ — the large solid outer set
        // of the paper's Figs. 4–5.
        let mut radii = vec![1.5; n];
        radii[e_idx] = 0.95 * theta;
        InevitabilityVerifier {
            system: model.system(),
            boundary,
            initial: Region::ellipsoid(&radii),
        }
    }

    /// The initial region.
    pub fn initial(&self) -> &Region {
        &self.initial
    }

    /// The problem fingerprint a checkpointed run of this verifier would be
    /// keyed by — stable across processes for identical problems and
    /// math-relevant options, so callers (e.g. the `cppll-serve` certificate
    /// cache) can deduplicate work before spending a solve.
    pub fn problem_fingerprint(&self, opt: &PipelineOptions) -> u64 {
        checkpoint::fingerprint(self.system, &self.boundary, &self.initial, opt)
    }

    /// Runs the full pipeline.
    ///
    /// Every SOS/SDP solve is supervised per [`PipelineOptions::resilience`]
    /// (retries with escalated regularisation, per-solve timeouts, a
    /// pipeline deadline). When a stage still fails numerically after its
    /// retries, the run *degrades*: `verify` returns `Ok` with a partial
    /// report whose [`Verdict::Degraded`] names the stage and whose
    /// [`VerificationReport::failures`] carry the attempt logs — it never
    /// panics and never loses what earlier stages proved.
    ///
    /// # Errors
    ///
    /// Propagates Lyapunov-synthesis *infeasibility* ([`VerifyError`]) —
    /// that is an answer about the relaxation degree, not a transient
    /// fault. All other failures degrade into an [`Verdict::Inconclusive`]
    /// or [`Verdict::Degraded`] report, matching Algorithm 1's "No Answer"
    /// path.
    pub fn verify(&self, opt: &PipelineOptions) -> Result<VerificationReport, VerifyError> {
        let ledger = SolveLedger::new();
        let run_deadline = opt.resilience.deadline.map(|d| Instant::now() + d);
        let sos_res = opt
            .resilience
            .to_sos(run_deadline, &ledger, opt.trace.clone());
        let _pipeline_span = opt.trace.as_ref().map(|t| {
            t.span(
                TraceLevel::Stage,
                "pipeline",
                format!("modes={}", self.system.modes().len()),
            )
        });

        // Checkpointing: open (or resume) the run journal before anything
        // solves. Resume absorbs the last journaled ledger snapshot so the
        // final report counts the pre-crash work too.
        let mut ckpt: Option<Checkpointer> = match &opt.checkpoint {
            Some(cfg) => {
                let fp = checkpoint::fingerprint(self.system, &self.boundary, &self.initial, opt);
                let c = Checkpointer::open(cfg, fp, opt.resilience.fault.clone())?;
                if c.recovery.recovered() {
                    if let Some(t) = &opt.trace {
                        t.counter("journal_recovered", 1);
                        t.instant(
                            TraceLevel::Stage,
                            "journal_recovered",
                            vec![
                                ("dropped_records", c.recovery.dropped_records.into()),
                                ("dropped_bytes", c.recovery.dropped_bytes.into()),
                            ],
                        );
                    }
                }
                if let Some(snap) = c.prior_snapshot() {
                    ledger.absorb_prior(&snap.stats, &snap.timings, &snap.reduction);
                }
                Some(c)
            }
            None => None,
        };
        let snapshot = |ledger: &SolveLedger| LedgerSnapshot {
            stats: ledger.stats(),
            timings: ledger.timings(),
            reduction: ledger.reduction(),
        };
        let resume_of = |ckpt: &Option<Checkpointer>| {
            ckpt.as_ref().map(Checkpointer::summary).unwrap_or_default()
        };

        // Supervised copy of the stage options: every stage's solves run
        // under the same supervisor configuration and shared ledger.
        let mut opt = opt.clone();
        opt.lyapunov.sos.resilience = sos_res.clone();
        opt.level.sos.resilience = sos_res.clone();
        opt.advection.sos.resilience = sos_res.clone();
        opt.escape.sos.resilience = sos_res;
        opt.lyapunov.sos.reduction = opt.reduction;
        opt.level.sos.reduction = opt.reduction;
        opt.advection.sos.reduction = opt.reduction;
        opt.escape.sos.reduction = opt.reduction;
        let opt = &opt;

        // Trace helpers: a span per pipeline stage, and a marker per stage
        // replayed from the journal (the marker count mirrors
        // `ResumeSummary.stages_replayed` — one per successful `take()`).
        let stage_span = |name: &'static str| {
            opt.trace
                .as_ref()
                .map(|t| t.span(TraceLevel::Stage, name, String::new()))
        };
        let replay_mark = |stage: &'static str| {
            if let Some(t) = &opt.trace {
                t.counter("stage_replayed", 1);
                t.instant(
                    TraceLevel::Stage,
                    "stage_replayed",
                    vec![("stage", stage.into())],
                );
            }
        };

        let mut timings = Vec::new();
        let mut failures: Vec<FailureReport> = Vec::new();
        let empty_levels = || LevelSetResult {
            level: 0.0,
            ai_polys: Vec::new(),
            probes: 0,
        };

        // ---- P1: attractive invariant --------------------------------
        opt.resilience.announce_stage(PipelineStage::Lyapunov);
        let lyapunov_span = stage_span("lyapunov");
        let t0 = Instant::now();
        let mut replayed_certs: Option<LyapunovCertificates> = None;
        if let Some(c) = ckpt.as_mut() {
            if matches!(c.peek(), Some(StageRecord::Lyapunov { .. })) {
                if let Some(StageRecord::Lyapunov {
                    vs,
                    degree,
                    epsilon,
                    scheme,
                    ..
                }) = c.take()
                {
                    replay_mark("lyapunov");
                    replayed_certs = Some(LyapunovCertificates::from_parts(
                        vs, degree, epsilon, scheme,
                    ));
                }
            }
        }
        let certs = if let Some(c) = replayed_certs {
            c
        } else {
            let certs = match LyapunovSynthesizer::new(self.system).synthesize_auto(&opt.lyapunov) {
                Ok(c) => c,
                Err(e @ VerifyError::Infeasible { .. }) => return Err(e),
                Err(e @ VerifyError::Checkpoint { .. }) => return Err(e),
                Err(VerifyError::Numerical { step, source }) => {
                    timings.push(StepTiming {
                        name: "attractive invariant",
                        seconds: t0.elapsed().as_secs_f64(),
                    });
                    failures.push(FailureReport {
                        stage: PipelineStage::Lyapunov,
                        detail: format!("{step}: {source}"),
                        attempts: source.attempts().to_vec(),
                    });
                    return Ok(VerificationReport {
                        certificates: None,
                        levels: empty_levels(),
                        advection_trace: Vec::new(),
                        escape_certificates: Vec::new(),
                        timings,
                        verdict: Verdict::Degraded {
                            stage: PipelineStage::Lyapunov,
                            reason: "lyapunov synthesis failed numerically \
                                         after exhausting retries"
                                .into(),
                        },
                        failures,
                        solve_stats: ledger.stats(),
                        solve_timings: ledger.timings(),
                        reduction: ledger.reduction(),
                        resume: resume_of(&ckpt),
                        advection_warm: Vec::new(),
                        advection_warm_hits: 0,
                    });
                }
            };
            if let Some(c) = ckpt.as_mut() {
                c.record(StageRecord::Lyapunov {
                    vs: certs.all().to_vec(),
                    degree: certs.degree(),
                    epsilon: certs.epsilon(),
                    scheme: certs.scheme(),
                    ledger: snapshot(&ledger),
                })?;
            }
            certs
        };
        timings.push(StepTiming {
            name: "attractive invariant",
            seconds: t0.elapsed().as_secs_f64(),
        });
        drop(lyapunov_span);

        opt.resilience.announce_stage(PipelineStage::LevelSet);
        let levelset_span = stage_span("levelset");
        let failures_before_levels = ledger.stats().failures;
        let t0 = Instant::now();
        let mut replayed_levels: Option<LevelSetResult> = None;
        if let Some(c) = ckpt.as_mut() {
            if matches!(c.peek(), Some(StageRecord::LevelSet { .. })) {
                if let Some(StageRecord::LevelSet {
                    level,
                    ai_polys,
                    probes,
                    ..
                }) = c.take()
                {
                    replay_mark("levelset");
                    replayed_levels = Some(LevelSetResult {
                        level,
                        ai_polys,
                        probes,
                    });
                }
            }
        }
        let levels = match replayed_levels {
            Some(l) => Some(l),
            None => {
                let maximizer = LevelSetMaximizer::new(self.system, self.boundary.clone());
                let mut levels = maximizer.maximize(&certs, &opt.level);
                // Stage-level screen: the bisection probes trust the
                // support-reduced compile's rejections (conservative and
                // cheap). Only when the whole maximisation comes up empty is
                // the stage re-run under the legacy compile, so a
                // support-mode over-restriction can never degrade the
                // verdict relative to legacy mode.
                if levels.is_none() && opt.level.sos.reduction.mode == ReduceMode::Support {
                    if let Some(t) = &opt.trace {
                        t.counter("levelset_legacy_rerun", 1);
                    }
                    let mut legacy = opt.level.clone();
                    legacy.sos.reduction.mode = ReduceMode::Legacy;
                    levels = maximizer.maximize(&certs, &legacy);
                }
                if let (Some(c), Some(l)) = (ckpt.as_mut(), &levels) {
                    c.record(StageRecord::LevelSet {
                        level: l.level,
                        ai_polys: l.ai_polys.clone(),
                        probes: l.probes,
                        ledger: snapshot(&ledger),
                    })?;
                }
                levels
            }
        };
        timings.push(StepTiming {
            name: "max level curves",
            seconds: t0.elapsed().as_secs_f64(),
        });
        drop(levelset_span);
        let Some(levels) = levels else {
            let failed = ledger.stats().failures - failures_before_levels;
            let verdict = if failed > 0 {
                failures.push(FailureReport {
                    stage: PipelineStage::LevelSet,
                    detail: format!(
                        "{failed} supervised solve(s) failed during \
                         level-set maximisation"
                    ),
                    attempts: Vec::new(),
                });
                Verdict::Degraded {
                    stage: PipelineStage::LevelSet,
                    reason: "level-set maximisation aborted on solver \
                             failures after exhausting retries"
                        .into(),
                }
            } else {
                Verdict::Inconclusive {
                    reason: "no level value could be certified".into(),
                }
            };
            return Ok(VerificationReport {
                certificates: Some(certs),
                levels: empty_levels(),
                advection_trace: Vec::new(),
                escape_certificates: Vec::new(),
                timings,
                verdict,
                failures,
                solve_stats: ledger.stats(),
                solve_timings: ledger.timings(),
                reduction: ledger.reduction(),
                resume: resume_of(&ckpt),
                advection_warm: Vec::new(),
                advection_warm_hits: 0,
            });
        };

        // ---- P2: bounded advection (Algorithm 1, piecewise fronts) ----
        opt.resilience.announce_stage(PipelineStage::Advection);
        let advection_span = stage_span("advection");
        let failures_before_advection = ledger.stats().failures;
        let t0 = Instant::now();
        let advector = Advection::new(self.system);
        let mut adv_opt = opt.advection.clone();
        if adv_opt.error_box.is_empty() {
            adv_opt.error_box = self.default_error_box();
        }
        let inc_opt = InclusionOptions {
            mult_half_degree: opt.inclusion_mult_half_degree,
            sos: opt.level.sos.clone(),
        };
        let nmodes = self.system.modes().len();
        let mut pieces: Vec<Polynomial> = vec![self.initial.level().clone(); nmodes];
        let mut trace: Vec<AdvectionTraceEntry> = Vec::new();
        let mut advection_ok = false;
        let mut inclusion_seconds = 0.0;
        // Per-mode warm-start chain: each inclusion probe is seeded from
        // the previous step's final iterate for the same mode (advection by
        // exact composition preserves the SDP block structure step to
        // step). Active under checkpointing or when the caller injected
        // parameter-step seeds; plain runs keep their historical solve
        // trajectories. An injected seed only primes the chain's first
        // links — a wrong-shape seed is simply never accepted by the solver.
        let mut warm: Vec<Option<SdpSolution>> = match &opt.advection_seed {
            Some(seed) if seed.len() == nmodes => seed.clone(),
            _ => vec![None; nmodes],
        };
        let mut warm_hits: usize = 0;
        for k in 0..opt.max_advection_iters {
            let _step_span = opt
                .trace
                .as_ref()
                .map(|t| t.span(TraceLevel::Stage, "advection_step", format!("k={k}")));
            if let Some(c) = ckpt.as_mut() {
                if matches!(c.peek(), Some(StageRecord::AdvectionStep { .. })) {
                    let Some(StageRecord::AdvectionStep {
                        iter,
                        pieces: journaled_pieces,
                        taylor_error,
                        guard_mismatch,
                        included,
                        warm: journaled_warm,
                        ..
                    }) = c.take()
                    else {
                        unreachable!("peek said AdvectionStep");
                    };
                    replay_mark("advection");
                    if iter != k {
                        return Err(VerifyError::Checkpoint {
                            source: CheckpointError::Corrupt {
                                line: 0,
                                message: format!(
                                    "advection step {iter} journaled out of order \
                                     (expected step {k})"
                                ),
                            },
                        });
                    }
                    pieces = journaled_pieces;
                    warm = journaled_warm;
                    trace.push(AdvectionTraceEntry {
                        pieces: pieces.clone(),
                        taylor_error,
                        guard_mismatch,
                        included,
                    });
                    if included {
                        advection_ok = true;
                        break;
                    }
                    continue;
                }
            }
            let taylor_error = advector.estimate_taylor_error(&pieces[0], &adv_opt);
            pieces = advector.step_pieces(&pieces, &adv_opt);
            let guard_mismatch = advector.guard_mismatch(&pieces, &adv_opt);
            let ti = Instant::now();
            let margin = opt.inclusion_margin;
            // Always the seeded path, even on cold runs: with all-`None`
            // seeds it solves exactly like the plain check (the chaos CI
            // pins those digests equal) while capturing the final iterates,
            // which the report exports as warm-start seeds for parameter
            // sweeps.
            let before = warm_hits;
            let included = self.pieces_inside_ai_seeded(
                &pieces,
                &levels,
                margin,
                &inc_opt,
                &mut warm,
                &mut warm_hits,
            );
            if let Some(c) = ckpt.as_mut() {
                c.warm_started_solves += warm_hits - before;
            }
            inclusion_seconds += ti.elapsed().as_secs_f64();
            trace.push(AdvectionTraceEntry {
                pieces: pieces.clone(),
                taylor_error,
                guard_mismatch,
                included,
            });
            if let Some(c) = ckpt.as_mut() {
                c.record(StageRecord::AdvectionStep {
                    iter: k,
                    pieces: pieces.clone(),
                    taylor_error,
                    guard_mismatch,
                    included,
                    warm: warm.clone(),
                    ledger: snapshot(&ledger),
                })?;
            }
            if included {
                advection_ok = true;
                break;
            }
        }
        timings.push(StepTiming {
            name: "advection",
            seconds: t0.elapsed().as_secs_f64() - inclusion_seconds,
        });
        // Inclusion checking is booked separately (Table 2 reports it so).
        timings.push(StepTiming {
            name: "checking set inclusion",
            seconds: inclusion_seconds,
        });
        drop(advection_span);
        let final_included = advection_ok;
        let advection_failures = ledger.stats().failures - failures_before_advection;
        if !final_included && advection_failures > 0 {
            // Inclusion checks absorb solver errors into `false`; the
            // ledger delta tells us failures happened. Record them — escape
            // certificates may still rescue the run below.
            failures.push(FailureReport {
                stage: PipelineStage::Advection,
                detail: format!(
                    "{advection_failures} supervised solve(s) failed during \
                     advection/inclusion checking"
                ),
                attempts: Vec::new(),
            });
        }

        if final_included {
            return Ok(VerificationReport {
                certificates: Some(certs),
                levels,
                advection_trace: trace,
                escape_certificates: Vec::new(),
                timings,
                verdict: Verdict::Inevitable {
                    advection_sufficed: true,
                },
                failures,
                solve_stats: ledger.stats(),
                solve_timings: ledger.timings(),
                reduction: ledger.reduction(),
                resume: resume_of(&ckpt),
                advection_warm: warm,
                advection_warm_hits: warm_hits,
            });
        }

        // ---- Escape certificates for the leftover ----------------------
        // Per mode, the front piece must either be certified inside the AI
        // (Lemma-1 inclusion) or admit an escape certificate on the leftover
        // {frontᵢ ≤ 0} ∖ int(AI) ∩ Cᵢ. A grid emptiness test would not be a
        // certificate, so modes are never skipped without one of the two.
        opt.resilience.announce_stage(PipelineStage::Escape);
        let _escape_span = stage_span("escape");
        let t0 = Instant::now();
        let n = self.system.nstates();
        let mut escapes = Vec::new();
        let mut failed_mode: Option<usize> = None;
        let mut escape_numerical = false;
        for (mi, piece) in pieces.iter().enumerate() {
            if let Some(c) = ckpt.as_mut() {
                if matches!(c.peek(), Some(StageRecord::Escape { mode, .. }) if *mode == mi) {
                    let Some(StageRecord::Escape {
                        included,
                        certificate,
                        ..
                    }) = c.take()
                    else {
                        unreachable!("peek said Escape");
                    };
                    replay_mark("escape");
                    if !included {
                        if let Some(cert) = certificate {
                            escapes.push(cert);
                        }
                    }
                    continue;
                }
            }
            let ai = &levels.ai_polys[mi] + &Polynomial::constant(n, opt.inclusion_margin);
            let mut domain = self.boundary.clone();
            domain.extend(self.system.modes()[mi].flow_set().iter().cloned());
            if check_inclusion(piece, &ai, &domain, &inc_opt) {
                if let Some(c) = ckpt.as_mut() {
                    c.record(StageRecord::Escape {
                        mode: mi,
                        included: true,
                        certificate: None,
                        ledger: snapshot(&ledger),
                    })?;
                }
                continue; // this mode's piece is already inside the AI
            }
            let set = vec![
                piece.scale(-1.0),
                levels.ai_polys[mi].clone(), // Vᵢ − c ≥ 0 (outside the AI)
            ];
            match EscapeSynthesizer::new(self.system).synthesize(mi, &set, &opt.escape) {
                Ok(cert) => {
                    if let Some(c) = ckpt.as_mut() {
                        c.record(StageRecord::Escape {
                            mode: mi,
                            included: false,
                            certificate: Some(cert.clone()),
                            ledger: snapshot(&ledger),
                        })?;
                    }
                    escapes.push(cert);
                }
                Err(e) => {
                    if let VerifyError::Numerical { step, source } = &e {
                        escape_numerical = true;
                        failures.push(FailureReport {
                            stage: PipelineStage::Escape,
                            detail: format!("mode {mi}: {step}: {source}"),
                            attempts: source.attempts().to_vec(),
                        });
                    }
                    failed_mode = Some(mi);
                    break;
                }
            }
        }
        timings.push(StepTiming {
            name: "escape certificate",
            seconds: t0.elapsed().as_secs_f64(),
        });

        let verdict = if let Some(mi) = failed_mode {
            if escape_numerical {
                Verdict::Degraded {
                    stage: PipelineStage::Escape,
                    reason: format!(
                        "escape-certificate synthesis for mode {mi} failed \
                         numerically after exhausting retries"
                    ),
                }
            } else if advection_failures > 0 {
                Verdict::Degraded {
                    stage: PipelineStage::Advection,
                    reason: format!(
                        "inclusion checking was degraded by solver failures \
                         and no escape certificate of degree {} exists for \
                         mode {mi}",
                        opt.escape.degree
                    ),
                }
            } else {
                Verdict::Inconclusive {
                    reason: format!(
                        "advection did not immerse the front and no escape certificate \
                         of degree {} exists for mode {mi}",
                        opt.escape.degree
                    ),
                }
            }
        } else {
            Verdict::Inevitable {
                advection_sufficed: escapes.is_empty(),
            }
        };
        Ok(VerificationReport {
            certificates: Some(certs),
            levels,
            advection_trace: trace,
            escape_certificates: escapes,
            timings,
            verdict,
            failures,
            solve_stats: ledger.stats(),
            solve_timings: ledger.timings(),
            reduction: ledger.reduction(),
            resume: resume_of(&ckpt),
            advection_warm: warm,
            advection_warm_hits: warm_hits,
        })
    }

    /// Coordinate extents of the initial region, found by axis probing of
    /// its level polynomial. Shared by the advection error box and the
    /// Monte-Carlo validation sampling box.
    fn initial_extents(&self) -> Vec<f64> {
        let n = self.system.nstates();
        let p = self.initial.level();
        (0..n)
            .map(|i| {
                let mut extent = 0.1f64;
                for k in 1..200 {
                    let t = 0.05 * k as f64;
                    let mut x = vec![0.0; n];
                    x[i] = t;
                    let mut y = vec![0.0; n];
                    y[i] = -t;
                    if p.eval(&x) <= 0.0 || p.eval(&y) <= 0.0 {
                        extent = t;
                    }
                }
                extent
            })
            .collect()
    }

    /// Error-sampling box half-widths: the initial region's coordinate
    /// extents, inflated.
    fn default_error_box(&self) -> Vec<f64> {
        self.initial_extents().into_iter().map(|e| 1.25 * e).collect()
    }

    /// Monte-Carlo validation of a report's certified claims: samples
    /// `trials` initial states across the initial region's extents,
    /// simulates the hybrid system, and checks certificate monotonicity,
    /// AI entry, and final lock against the certificates the report
    /// carries. Returns `None` when the report holds no certificates to
    /// validate (a degraded run).
    pub fn validate(
        &self,
        report: &VerificationReport,
        trials: usize,
        seed: u64,
    ) -> Option<crate::validation::ValidationReport> {
        let certs = report.certificates.as_ref()?;
        let validator = crate::validation::Validator::new(self.system);
        Some(validator.validate(certs, &report.levels, &self.initial_extents(), trials, seed))
    }

    /// [`Self::pieces_inside_ai`] with a per-mode warm-start chain: each
    /// probe is seeded from the previous advection step's final iterate for
    /// the same mode (or, on the first step, from an injected
    /// [`PipelineOptions::advection_seed`]), and the iterate produced here
    /// (feasible or not) is stored back for the next step. Mode order and
    /// the stop-at-first-failure short-circuit match the unseeded path
    /// exactly; `warm_hits` counts the solves that accepted their seed.
    fn pieces_inside_ai_seeded(
        &self,
        pieces: &[Polynomial],
        levels: &LevelSetResult,
        margin: f64,
        inc_opt: &InclusionOptions,
        warm: &mut [Option<SdpSolution>],
        warm_hits: &mut usize,
    ) -> bool {
        let n = self.system.nstates();
        for mi in 0..self.system.modes().len() {
            let ai = &levels.ai_polys[mi] + &Polynomial::constant(n, margin);
            let mut domain = self.boundary.clone();
            domain.extend(self.system.modes()[mi].flow_set().iter().cloned());
            let probe =
                check_inclusion_seeded(&pieces[mi], &ai, &domain, inc_opt, warm[mi].as_ref());
            if probe.warm_started {
                *warm_hits += 1;
            }
            warm[mi] = probe.iterate;
            if !probe.included {
                return false;
            }
        }
        true
    }

}
