//! A-posteriori validation of certificates by Monte-Carlo simulation.
//!
//! The SOS pipeline is numerical; this module closes the loop by sampling
//! trajectories of the actual hybrid system and checking the certified
//! claims along them: the Lyapunov certificate decreases, trajectories
//! enter the attractive invariant, and final states approach the
//! equilibrium.

use cppll_hybrid::{HybridSystem, Simulator};

use crate::levelset::LevelSetResult;
use crate::lyapunov::LyapunovCertificates;

/// Outcome of a Monte-Carlo validation run.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Number of trajectories simulated.
    pub trials: usize,
    /// Trajectories along which the active certificate was monotone
    /// non-increasing (within tolerance) while inside the modeled region.
    pub monotone: usize,
    /// Trajectories that entered the attractive invariant.
    pub reached_ai: usize,
    /// Trajectories whose final state norm was below the lock threshold.
    pub locked: usize,
    /// Worst observed certificate increase along any trajectory.
    pub worst_increase: f64,
}

impl ValidationReport {
    /// `true` when every sampled trajectory respected every claim.
    pub fn all_passed(&self) -> bool {
        self.monotone == self.trials && self.reached_ai == self.trials && self.locked == self.trials
    }
}

impl cppll_json::ToJson for ValidationReport {
    fn to_json(&self) -> cppll_json::Value {
        cppll_json::ObjectBuilder::new()
            .field("trials", self.trials)
            .field("monotone", self.monotone)
            .field("reached_ai", self.reached_ai)
            .field("locked", self.locked)
            .field("worst_increase", self.worst_increase)
            .field("all_passed", self.all_passed())
            .build()
    }
}

/// Deterministic xorshift sampler (no external RNG dependency; reproducible
/// validation runs).
#[derive(Debug, Clone)]
pub struct Sampler {
    state: u64,
}

impl Sampler {
    /// Creates a sampler from a seed.
    pub fn new(seed: u64) -> Self {
        Sampler { state: seed.max(1) }
    }

    /// Next value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next value in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

/// Monte-Carlo validator.
pub struct Validator<'s> {
    system: &'s HybridSystem,
    /// Simulation horizon (scaled time units).
    pub horizon: f64,
    /// Integration step.
    pub dt: f64,
    /// Norm threshold counting as "locked".
    pub lock_tol: f64,
    /// Allowed relative certificate increase (numerical slack).
    pub monotone_tol: f64,
}

impl<'s> Validator<'s> {
    /// Creates a validator with defaults suitable for the scaled PLL models.
    pub fn new(system: &'s HybridSystem) -> Self {
        Validator {
            system,
            horizon: 300.0,
            dt: 1e-2,
            lock_tol: 5e-2,
            monotone_tol: 1e-6,
        }
    }

    /// Samples `trials` initial states inside the box `[-bound, bound]ⁿ`
    /// intersected with the flow sets, simulates each, and checks the
    /// certificates. Initial mode: any mode containing the state.
    pub fn validate(
        &self,
        certs: &LyapunovCertificates,
        levels: &LevelSetResult,
        bound: &[f64],
        trials: usize,
        seed: u64,
    ) -> ValidationReport {
        let n = self.system.nstates();
        assert_eq!(bound.len(), n, "bound dimension mismatch");
        let mut sampler = Sampler::new(seed);
        let mut report = ValidationReport {
            trials: 0,
            monotone: 0,
            reached_ai: 0,
            locked: 0,
            worst_increase: 0.0,
        };
        let nominal = self.system.params().nominal();
        while report.trials < trials {
            let x0: Vec<f64> = bound.iter().map(|&b| sampler.range(-b, b)).collect();
            let modes = self.system.modes_containing(&x0, 1e-9);
            let Some(&mode0) = modes.first() else {
                continue; // outside every flow set; resample
            };
            report.trials += 1;
            let sim = Simulator::new(self.system)
                .with_step(self.dt)
                .with_params(nominal.clone())
                .with_thinning(5);
            let arc = sim.simulate(&x0, mode0, self.horizon);
            // Monotone check of the active-mode certificate.
            let mut prev = f64::INFINITY;
            let mut monotone = true;
            let mut reached = false;
            for s in arc.samples() {
                let v = certs.for_mode(s.mode).eval(&s.state);
                if v > prev * (1.0 + self.monotone_tol) + self.monotone_tol {
                    report.worst_increase = report.worst_increase.max(v - prev);
                    monotone = false;
                }
                prev = v;
                if levels.contains(self.system, &s.state, 0.0) {
                    reached = true;
                }
            }
            let fin = arc.final_state();
            let norm: f64 = fin.iter().map(|v| v * v).sum::<f64>().sqrt();
            if monotone {
                report.monotone += 1;
            }
            if reached {
                report.reached_ai += 1;
            }
            if norm < self.lock_tol {
                report.locked += 1;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_uniform_ish() {
        let mut s = Sampler::new(42);
        let mut acc = 0.0;
        let k = 10_000;
        for _ in 0..k {
            let v = s.unit();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        let mean = acc / k as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
