//! Verification of **inevitability of phase-locking** for charge-pump PLLs —
//! the paper's primary contribution, built on the `cppll` substrate crates.
//!
//! The inevitability property `P` ("every trajectory eventually reaches the
//! phase-lock equilibrium") is split into `P = P1 ∧ P2` over a partition
//! `S1 ∪ S2` of the modeled state space:
//!
//! * **P1** (deductive): all trajectories starting in the *attractive
//!   invariant* `S1` converge to the equilibrium — certified by multiple
//!   Lyapunov functions for the hybrid system ([`LyapunovSynthesizer`],
//!   Theorem 1/2 of the paper) with their level curves maximised to carve
//!   out the largest certified `S1` ([`LevelSetMaximizer`]).
//! * **P2** (bounded): all trajectories starting in `S2` reach `S1` in
//!   bounded time — shown by advecting polynomial level sets with the flow
//!   ([`Advection`], Algorithm 1) and closing inconclusive leftovers with
//!   deductive escape certificates ([`EscapeSynthesizer`], Proposition 1).
//!
//! The one-call entry point is [`InevitabilityVerifier`], which produces a
//! [`VerificationReport`] with every certificate, the advection trace and
//! per-step timings (the reproduction of the paper's Table 2).
//!
//! Every positivity check is an SOS relaxation — sound but incomplete, so a
//! failed step means *inconclusive*, never "false". Certificates can be
//! re-validated a posteriori with [`validation`] (SOS residuals +
//! Monte-Carlo simulation).

pub mod advection;
pub mod barrier;
pub mod checkpoint;
pub mod escape;
pub mod exactify;
pub mod levelset;
pub mod lyapunov;
pub mod parse;
pub mod pipeline;
pub mod region;
pub mod resilience;
pub mod spec;
pub mod sweep;
pub mod validation;

pub use advection::{Advection, AdvectionOptions, AdvectionStep};
pub use barrier::{BarrierCertificate, BarrierOptions, BarrierSynthesizer};
pub use checkpoint::{
    CacheEntry, CertificateCache, CheckpointConfig, CheckpointError, Durability, JournalRecovery,
    LedgerSnapshot, ResumeSummary, RunJournal, StageRecord,
};
pub use parse::{parse_polynomial, ParsePolynomialError};
pub use escape::{EscapeCertificate, EscapeOptions, EscapeSynthesizer};
pub use exactify::{exactify_certificates, ExactificationReport, ExactifyError, ExactifyOptions};
pub use levelset::{LevelSetMaximizer, LevelSetOptions, LevelSetResult};
pub use lyapunov::{
    CertificateScheme, LyapunovCertificates, LyapunovOptions, LyapunovSynthesizer, RobustEncoding,
};
pub use pipeline::{
    InevitabilityVerifier, PipelineOptions, StepTiming, Verdict, VerificationReport,
};
pub use region::Region;
pub use resilience::{FailureReport, PipelineStage, ResilienceConfig};
pub use spec::{
    run_inevitability, run_inevitability_checkpointed, run_inevitability_traced,
    run_inevitability_tuned, run_inevitability_validated, run_inevitability_with,
    spec_fingerprint, JumpSpec, ModeSpec, ParamSpec, SpecError, SystemSpec,
};
pub use sweep::{
    run_sweep, run_sweep_with, Atlas, CellOutcome, CellProblem, CellRecord, CellStatus,
    SweepAxis, SweepCounters, SweepError, SweepOptions, SweepSpec, SweepTarget,
};
pub use validation::{Sampler, ValidationReport, Validator};

// Fault-injection plumbing, re-exported so front-ends (CLI, CI smoke jobs)
// can build crash plans without depending on `cppll-sdp` directly.
pub use cppll_sdp::{CrashMode, FaultInjector, FaultKind, FaultPlan, JournalFault};

// Problem-size reduction knobs and statistics, re-exported so front-ends
// can toggle `--no-reduce` without depending on `cppll-sos` directly.
pub use cppll_sos::{ReduceMode, ReductionOptions, ReductionStats, SosCone};

// Tracing plumbing, re-exported so front-ends and tests can build a
// tracer / recorder without depending on `cppll-trace` directly.
pub use cppll_trace::{
    check_lane_monotonic, match_span_tree, span_forest, Event, EventKind, FieldValue, SpanNode,
    TraceLevel, TraceRecorder, Tracer,
};

/// Errors surfaced by the verification pipeline.
#[derive(Debug)]
pub enum VerifyError {
    /// A certificate synthesis SOS program was infeasible at the requested
    /// degree (the relaxation is incomplete: try a higher degree).
    Infeasible {
        /// Which step failed.
        step: &'static str,
        /// Underlying SOS error.
        source: cppll_sos::SosError,
    },
    /// Numerical failure inside the SDP solver.
    Numerical {
        /// Which step failed.
        step: &'static str,
        /// Underlying SOS error.
        source: cppll_sos::SosError,
    },
    /// The run journal could not be written, or an existing journal could
    /// not be replayed (corrupt or stale).
    Checkpoint {
        /// Underlying checkpoint error.
        source: CheckpointError,
    },
}

impl VerifyError {
    /// The supervised attempt log of the underlying solve, when one exists.
    pub fn attempts(&self) -> &[cppll_sos::AttemptRecord] {
        match self {
            VerifyError::Infeasible { source, .. } | VerifyError::Numerical { source, .. } => {
                source.attempts()
            }
            VerifyError::Checkpoint { .. } => &[],
        }
    }

    pub(crate) fn from_sos(step: &'static str, e: cppll_sos::SosError) -> Self {
        match e {
            cppll_sos::SosError::Infeasible { .. } => VerifyError::Infeasible { step, source: e },
            cppll_sos::SosError::Numerical { .. } => VerifyError::Numerical { step, source: e },
        }
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Infeasible { step, source } => {
                write!(f, "{step}: no certificate at this degree ({source})")
            }
            VerifyError::Numerical { step, source } => {
                write!(f, "{step}: solver failure ({source})")
            }
            VerifyError::Checkpoint { source } => {
                write!(f, "checkpoint: {source}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<CheckpointError> for VerifyError {
    fn from(source: CheckpointError) -> Self {
        VerifyError::Checkpoint { source }
    }
}
