//! Semialgebraic regions described by polynomial sublevel sets.

use cppll_poly::Polynomial;

/// A basic semialgebraic region `{x : p(x) ≤ 0, gⱼ(x) ≥ 0}` — one sublevel
/// inequality plus optional side constraints.
///
/// Used for attractive-invariant level sets, advected fronts and escape
/// domains.
#[derive(Debug, Clone)]
pub struct Region {
    /// The defining sublevel polynomial (`p(x) ≤ 0`).
    level: Polynomial,
    /// Side constraints `g(x) ≥ 0`.
    side: Vec<Polynomial>,
}

impl Region {
    /// Region `{p ≤ 0}`.
    pub fn sublevel(level: Polynomial) -> Self {
        Region {
            level,
            side: Vec::new(),
        }
    }

    /// The closed ball `{‖x‖² ≤ r²}` over `nvars` variables.
    pub fn ball(nvars: usize, radius: f64) -> Self {
        let p = &Polynomial::norm_squared(nvars) - &Polynomial::constant(nvars, radius * radius);
        Region::sublevel(p)
    }

    /// An axis-aligned ellipsoid `{Σ (xᵢ/rᵢ)² ≤ 1}`.
    ///
    /// # Panics
    ///
    /// Panics if any radius is non-positive.
    pub fn ellipsoid(radii: &[f64]) -> Self {
        let n = radii.len();
        let mut p = Polynomial::constant(n, -1.0);
        for (i, &r) in radii.iter().enumerate() {
            assert!(r > 0.0, "ellipsoid radii must be positive");
            let xi = Polynomial::var(n, i);
            p = &p + &(&xi * &xi).scale(1.0 / (r * r));
        }
        Region::sublevel(p)
    }

    /// Adds a side constraint `g(x) ≥ 0` (builder style).
    pub fn with_side(mut self, g: Polynomial) -> Self {
        self.side.push(g);
        self
    }

    /// The defining sublevel polynomial.
    pub fn level(&self) -> &Polynomial {
        &self.level
    }

    /// The side constraints.
    pub fn side(&self) -> &[Polynomial] {
        &self.side
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.level.nvars()
    }

    /// Membership test (up to `tol`).
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        self.level.eval(x) <= tol && self.side.iter().all(|g| g.eval(x) >= -tol)
    }

    /// Samples the region's bounding box `[-bound, bound]ⁿ` with `steps`
    /// points per axis and returns the points inside the region — a crude
    /// but dependency-free way to extract figure data.
    pub fn grid_sample(&self, bound: f64, steps: usize) -> Vec<Vec<f64>> {
        let n = self.nvars();
        let mut out = Vec::new();
        let mut idx = vec![0usize; n];
        loop {
            let point: Vec<f64> = idx
                .iter()
                .map(|&i| -bound + 2.0 * bound * (i as f64) / ((steps - 1) as f64))
                .collect();
            if self.contains(&point, 0.0) {
                out.push(point);
            }
            // Increment the mixed-radix counter.
            let mut k = 0;
            loop {
                if k == n {
                    return out;
                }
                idx[k] += 1;
                if idx[k] < steps {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ball_membership() {
        let b = Region::ball(2, 2.0);
        assert!(b.contains(&[1.0, 1.0], 0.0));
        assert!(!b.contains(&[2.0, 2.0], 0.0));
    }

    #[test]
    fn ellipsoid_membership() {
        let e = Region::ellipsoid(&[2.0, 0.5]);
        assert!(e.contains(&[1.9, 0.0], 0.0));
        assert!(!e.contains(&[0.0, 0.6], 0.0));
    }

    #[test]
    fn side_constraints_cut() {
        let half = Region::ball(2, 1.0).with_side(Polynomial::var(2, 0)); // x ≥ 0
        assert!(half.contains(&[0.5, 0.0], 0.0));
        assert!(!half.contains(&[-0.5, 0.0], 0.0));
    }

    #[test]
    fn grid_sampling_counts() {
        let b = Region::ball(2, 1.0);
        let pts = b.grid_sample(1.0, 51);
        // Area ratio → π/4 of the box samples as the grid refines (the
        // coarse-grid fraction under-counts the boundary ring).
        let frac = pts.len() as f64 / (51.0 * 51.0);
        assert!(
            (frac - std::f64::consts::FRAC_PI_4).abs() < 0.04,
            "frac = {frac}"
        );
    }
}
