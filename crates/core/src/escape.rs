//! Escape certificates (Proposition 1 of the paper): prove that all
//! trajectories leave a compact set in finite time by exhibiting a function
//! strictly decreasing along the flow.

use cppll_hybrid::HybridSystem;
use cppll_poly::{monomials_up_to, Polynomial};
use cppll_sos::{SosOptions, SosProgram};

use crate::VerifyError;

/// Options for [`EscapeSynthesizer`].
#[derive(Debug, Clone)]
pub struct EscapeOptions {
    /// Degree of the escape certificate `E`. The paper uses degree 4.
    pub degree: u32,
    /// Required decrease rate `ε > 0`: `Ė ≤ −ε` on the set.
    pub epsilon: f64,
    /// Half-degree of the S-procedure multipliers.
    pub mult_half_degree: u32,
    /// SOS options.
    pub sos: SosOptions,
}

impl EscapeOptions {
    /// Defaults for a given degree (`ε = 10⁻²`).
    pub fn degree(degree: u32) -> Self {
        EscapeOptions {
            degree,
            epsilon: 1e-2,
            mult_half_degree: 1,
            sos: SosOptions::default(),
        }
    }
}

/// A synthesised escape certificate for one mode.
#[derive(Debug, Clone)]
pub struct EscapeCertificate {
    /// The certificate polynomial `E`.
    pub e: Polynomial,
    /// Mode it certifies.
    pub mode: usize,
    /// Certified decrease rate.
    pub epsilon: f64,
}

impl EscapeCertificate {
    /// Numeric check of the decrease `Ė(x) ≤ −ε` at a point, for a given
    /// parameter sample.
    pub fn decrease_at(&self, system: &HybridSystem, x: &[f64], u: &[f64]) -> f64 {
        let f = system.flow_with_params(self.mode, u);
        self.e.lie_derivative(&f).eval(x)
    }

    /// Certified **dwell-time bound**: by Proposition 1, a trajectory can
    /// stay in the set `{gⱼ ≥ 0}` for at most `(sup E − inf E)/ε` time.
    /// The range of `E` over the set is bounded with SOS certificates
    /// ([`cppll_sos::certified_range`]); returns `None` when the range
    /// cannot be certified (e.g. the set is unbounded).
    ///
    /// This extends the paper's escape argument into the explicit
    /// "time-to-lock" style bounds of the related work it compares against.
    pub fn dwell_time_bound(
        &self,
        set: &[Polynomial],
        opt: &cppll_sos::BoundOptions,
    ) -> Option<f64> {
        let (lo, hi) = cppll_sos::certified_range(&self.e, set, opt)?;
        Some((hi - lo) / self.epsilon)
    }
}

/// Synthesises escape certificates: finds `E` with `∇E·fᵢ(x, u) ≤ −ε` for
/// all `x` in a compact semialgebraic set and all parameter vertices.
///
/// By Proposition 1, every trajectory remaining in the mode must leave the
/// set within time `(sup E − inf E)/ε`.
pub struct EscapeSynthesizer<'s> {
    system: &'s HybridSystem,
}

impl<'s> EscapeSynthesizer<'s> {
    /// Creates a synthesizer.
    pub fn new(system: &'s HybridSystem) -> Self {
        EscapeSynthesizer { system }
    }

    /// Searches an escape certificate for `mode` on the set
    /// `{gⱼ(x) ≥ 0} ∩ Cᵢ`.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Infeasible`] when no certificate of the requested
    /// degree exists — e.g. when the set contains an equilibrium or limit
    /// cycle of the mode (escape is then genuinely impossible).
    pub fn synthesize(
        &self,
        mode: usize,
        set: &[Polynomial],
        opt: &EscapeOptions,
    ) -> Result<EscapeCertificate, VerifyError> {
        let n = self.system.nstates();
        let mut prog = SosProgram::new(n);
        // E has no constant term (it is only defined up to constants).
        let basis: Vec<_> = monomials_up_to(n, opt.degree)
            .into_iter()
            .filter(|m| m.degree() >= 1)
            .collect();
        let e = prog.new_poly(basis);
        let mut domain: Vec<Polynomial> = set.to_vec();
        domain.extend(self.system.modes()[mode].flow_set().iter().cloned());
        for f in self.system.flow_vertices(mode) {
            let edot = prog.poly_lie_derivative(e, &f);
            let expr = edot.neg().sub(&Polynomial::constant(n, opt.epsilon).into());
            prog.require_nonneg_on(expr, &domain, opt.mult_half_degree);
        }
        let sol = prog
            .solve(&opt.sos)
            .map_err(|er| VerifyError::from_sos("escape certificate", er))?;
        Ok(EscapeCertificate {
            e: sol.poly_value(e).prune(1e-12),
            mode,
            epsilon: opt.epsilon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppll_hybrid::{HybridSystem, Mode};

    /// ẋ = 1 (constant drift): trajectories must escape any compact set.
    #[test]
    fn drift_escapes_interval() {
        let f = vec![Polynomial::constant(1, 1.0)];
        let sys = HybridSystem::new(1, vec![Mode::new("drift", f)], vec![]);
        // Set: {x² ≤ 1} encoded as 1 − x² ≥ 0.
        let set = vec![
            &Polynomial::constant(1, 1.0) - &(&Polynomial::var(1, 0) * &Polynomial::var(1, 0)),
        ];
        let cert = EscapeSynthesizer::new(&sys)
            .synthesize(0, &set, &EscapeOptions::degree(2))
            .expect("escape exists");
        // Ė ≤ −ε across the set.
        for &x in &[-0.9, 0.0, 0.9] {
            let d = cert.decrease_at(&sys, &[x], &[]);
            assert!(d <= -cert.epsilon * 0.99, "Ė({x}) = {d}");
        }
        // Dwell time: ẋ = 1 crosses [−1, 1] in exactly 2 time units; the
        // certified bound must be ≥ 2 and finite.
        let bound = cert
            .dwell_time_bound(&set, &cppll_sos::BoundOptions::default())
            .expect("compact set, bounded E");
        assert!(
            bound >= 2.0 - 1e-3,
            "dwell bound {bound} below true crossing time"
        );
        assert!(bound.is_finite());
    }

    /// ẋ = −x has an equilibrium inside the unit interval: escape must fail.
    #[test]
    fn no_escape_from_equilibrium() {
        let f = vec![Polynomial::var(1, 0).scale(-1.0)];
        let sys = HybridSystem::new(1, vec![Mode::new("m", f)], vec![]);
        let set = vec![
            &Polynomial::constant(1, 1.0) - &(&Polynomial::var(1, 0) * &Polynomial::var(1, 0)),
        ];
        let r = EscapeSynthesizer::new(&sys).synthesize(0, &set, &EscapeOptions::degree(4));
        assert!(r.is_err(), "escape from a set containing an equilibrium");
    }

    /// Rotation ẋ = −y, ẏ = x on an annulus: no escape (closed orbits), but
    /// adding inward drift creates escape through the inner boundary.
    #[test]
    fn annulus_with_drift_escapes() {
        let f = vec![
            Polynomial::from_terms(2, &[(&[0, 1], -1.0), (&[1, 0], -0.5)]),
            Polynomial::from_terms(2, &[(&[1, 0], 1.0), (&[0, 1], -0.5)]),
        ];
        let sys = HybridSystem::new(2, vec![Mode::new("spiral", f)], vec![]);
        // Annulus 0.25 ≤ ‖x‖² ≤ 4.
        let n2 = Polynomial::norm_squared(2);
        let set = vec![
            &n2 - &Polynomial::constant(2, 0.25),
            &Polynomial::constant(2, 4.0) - &n2,
        ];
        let cert = EscapeSynthesizer::new(&sys)
            .synthesize(0, &set, &EscapeOptions::degree(2))
            .expect("spiral escapes annulus");
        let d = cert.decrease_at(&sys, &[1.0, 0.0], &[]);
        assert!(d < 0.0);
    }
}
