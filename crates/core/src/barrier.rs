//! Barrier certificates for hybrid safety (Prajna & Jadbabaie — reference
//! [11] of the paper).
//!
//! Inevitability says "everything eventually reaches the lock"; its safety
//! companion says "nothing ever reaches a bad set". A barrier certificate
//! `B` separates an initial set from an unsafe set with a surface no
//! trajectory can cross:
//!
//! * `B(x) ≤ 0` on the initial set,
//! * `B(x) ≥ ε > 0` on the unsafe set,
//! * `Ḃ(x) ≤ 0` on every mode's flow set (robust over parameter vertices),
//! * `B(R(x)) ≤ B(x)` across every jump.
//!
//! All four become SOS constraints over one decision polynomial — including
//! the jump condition, thanks to
//! [`cppll_sos::SosProgram::poly_composed`].

use cppll_hybrid::HybridSystem;
use cppll_poly::{monomials_up_to, Polynomial};
use cppll_sos::{SosOptions, SosProgram};

use crate::VerifyError;

/// Options for [`BarrierSynthesizer`].
#[derive(Debug, Clone)]
pub struct BarrierOptions {
    /// Degree of the barrier polynomial.
    pub degree: u32,
    /// Separation margin `ε` required on the unsafe set.
    pub epsilon: f64,
    /// Half-degree of the S-procedure multipliers.
    pub mult_half_degree: u32,
    /// SOS options.
    pub sos: SosOptions,
}

impl BarrierOptions {
    /// Defaults for a given degree (`ε = 1`).
    ///
    /// Barriers are scale-free (`B` works iff `2B` does); a sizeable `ε`
    /// pins the scale and keeps the SDP well conditioned — tiny margins
    /// leave a near-degenerate scaling ray that stalls the interior-point
    /// method.
    pub fn degree(degree: u32) -> Self {
        BarrierOptions {
            degree,
            epsilon: 1.0,
            mult_half_degree: 1,
            sos: SosOptions::default(),
        }
    }
}

/// A synthesised barrier certificate.
#[derive(Debug, Clone)]
pub struct BarrierCertificate {
    /// The barrier polynomial `B`.
    pub b: Polynomial,
    /// Certified separation margin on the unsafe set.
    pub epsilon: f64,
}

impl BarrierCertificate {
    /// Numeric check: `Ḃ` at a state for one mode and parameter sample.
    pub fn derivative_at(&self, system: &HybridSystem, mode: usize, x: &[f64], u: &[f64]) -> f64 {
        let f = system.flow_with_params(mode, u);
        self.b.lie_derivative(&f).eval(x)
    }

    /// `true` when the point is on the certified-safe side (`B ≤ 0`).
    pub fn is_safe_side(&self, x: &[f64]) -> bool {
        self.b.eval(x) <= 0.0
    }
}

/// Synthesises barrier certificates for a hybrid system.
///
/// # Examples
///
/// ```no_run
/// use cppll_hybrid::{HybridSystem, Mode};
/// use cppll_poly::Polynomial;
/// use cppll_verify::barrier::{BarrierOptions, BarrierSynthesizer};
///
/// // ẋ = −x: starting in {x ≤ 1}, the state never reaches {x ≥ 2}.
/// let f = vec![Polynomial::from_terms(1, &[(&[1], -1.0)])];
/// let sys = HybridSystem::new(1, vec![Mode::new("m", f)], vec![]);
/// let initial = vec![&Polynomial::constant(1, 1.0) - &Polynomial::var(1, 0)];
/// let unsafe_set = vec![&Polynomial::var(1, 0) - &Polynomial::constant(1, 2.0)];
/// let cert = BarrierSynthesizer::new(&sys)
///     .synthesize(&initial, &unsafe_set, &BarrierOptions::degree(2))?;
/// assert!(cert.is_safe_side(&[0.5]));
/// # Ok::<(), cppll_verify::VerifyError>(())
/// ```
pub struct BarrierSynthesizer<'s> {
    system: &'s HybridSystem,
}

impl<'s> BarrierSynthesizer<'s> {
    /// Creates a synthesizer.
    pub fn new(system: &'s HybridSystem) -> Self {
        BarrierSynthesizer { system }
    }

    /// Searches a barrier certificate separating `{g_init ≥ 0}` from
    /// `{g_unsafe ≥ 0}` under all system flows and jumps.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Infeasible`] when no certificate of this degree
    /// exists — including the case where the sets are actually connected by
    /// a trajectory (safety is false); the relaxation cannot distinguish
    /// the two, matching the paper's sound-but-incomplete framing.
    pub fn synthesize(
        &self,
        initial: &[Polynomial],
        unsafe_set: &[Polynomial],
        opt: &BarrierOptions,
    ) -> Result<BarrierCertificate, VerifyError> {
        let n = self.system.nstates();
        let mut prog = SosProgram::new(n);
        let basis = monomials_up_to(n, opt.degree);
        let b = prog.new_poly(basis);

        // B ≤ 0 on the initial set.
        prog.require_nonneg_on(prog.poly(b).neg(), initial, opt.mult_half_degree);
        // B ≥ ε on the unsafe set.
        let eps = Polynomial::constant(n, opt.epsilon);
        prog.require_nonneg_on(
            prog.poly(b).sub(&eps.into()),
            unsafe_set,
            opt.mult_half_degree,
        );
        // Ḃ ≤ 0 on every flow set, robust over parameter vertices.
        for (mi, mode) in self.system.modes().iter().enumerate() {
            let domain = mode.flow_set().to_vec();
            for f in self.system.flow_vertices(mi) {
                let bdot = prog.poly_lie_derivative(b, &f);
                prog.require_nonneg_on(bdot.neg(), &domain, opt.mult_half_degree);
            }
        }
        // B(R(x)) ≤ B(x) across jumps.
        for jump in self.system.jumps() {
            if jump.is_identity_reset() {
                continue; // trivially satisfied
            }
            let after = prog.poly_composed(b, &jump.reset);
            let mut expr = prog.poly(b).sub(&after);
            for h in &jump.guard_eq {
                let mu = prog.new_poly_of_degree(0, opt.degree.saturating_sub(1));
                expr = expr.sub(&prog.poly(mu).mul_poly(h));
            }
            prog.require_nonneg_on(expr, &jump.guard, opt.mult_half_degree);
        }

        let sol = prog
            .solve(&opt.sos)
            .map_err(|e| VerifyError::from_sos("barrier certificate", e))?;
        Ok(BarrierCertificate {
            b: sol.poly_value(b).prune(1e-12),
            epsilon: opt.epsilon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppll_hybrid::{HybridSystem, Jump, Mode, Simulator};

    fn interval(lo: f64, hi: f64) -> Vec<Polynomial> {
        let x = Polynomial::var(1, 0);
        vec![
            &x - &Polynomial::constant(1, lo),
            &Polynomial::constant(1, hi) - &x,
        ]
    }

    #[test]
    fn decay_cannot_escape_upward() {
        // ẋ = −x from [−1, 1] never reaches [2, 3].
        let f = vec![Polynomial::var(1, 0).scale(-1.0)];
        let sys = HybridSystem::new(1, vec![Mode::new("decay", f)], vec![]);
        let cert = BarrierSynthesizer::new(&sys)
            .synthesize(
                &interval(-1.0, 1.0),
                &interval(2.0, 3.0),
                &BarrierOptions::degree(2),
            )
            .expect("safe");
        // Initial on safe side, unsafe on the other, with margin.
        assert!(cert.is_safe_side(&[0.9]));
        assert!(cert.b.eval(&[2.5]) >= cert.epsilon * 0.99);
        // Ḃ ≤ 0 along the flow.
        for &x in &[-2.0, 0.5, 3.0] {
            assert!(cert.derivative_at(&sys, 0, &[x], &[]) <= 1e-9);
        }
    }

    #[test]
    fn unsafe_reachable_is_rejected() {
        // ẋ = +1 from [0, 1] DOES reach [2, 3]: no barrier may exist.
        let f = vec![Polynomial::constant(1, 1.0)];
        let sys = HybridSystem::new(1, vec![Mode::new("drift", f)], vec![]);
        let r = BarrierSynthesizer::new(&sys).synthesize(
            &interval(0.0, 1.0),
            &interval(2.0, 3.0),
            &BarrierOptions::degree(4),
        );
        assert!(r.is_err(), "reachable unsafe set must not be certified");
    }

    #[test]
    fn barrier_respects_jump_resets() {
        // Planar system: x is neutral, y falls (ẏ = −1) on {y ≥ 0}; at the
        // floor y = 0 a jump re-launches to y = 1 while HALVING x. The x
        // coordinate can never grow, so {|x| ≥ 3} is unreachable from
        // {‖(x,y)‖ small} — and the certificate must exploit the reset
        // (compiled through `poly_composed`).
        let f = vec![Polynomial::zero(2), Polynomial::constant(2, -1.0)];
        let x = Polynomial::var(2, 0);
        let y = Polynomial::var(2, 1);
        let mode = Mode::new("fall", f).with_flow_set(vec![y.clone()]);
        let jump = Jump::identity(0, 0)
            .with_guard_eq(vec![y.clone()])
            .with_reset(vec![x.scale(0.5), Polynomial::constant(2, 1.0)]);
        let sys = HybridSystem::new(2, vec![mode], vec![jump]);
        // Sanity: simulation keeps |x| bounded by its start value.
        let sim = Simulator::new(&sys).with_step(1e-3).with_thinning(50);
        let arc = sim.simulate(&[0.5, 1.0], 0, 5.0);
        assert!(arc.max_over(|s| s[0].abs()) <= 0.5 + 1e-6);
        // Initial: x² ≤ 1/4 and 0 ≤ y ≤ 1. Unsafe: x² ≥ 9.
        let initial = vec![
            &Polynomial::constant(2, 0.25) - &(&x * &x),
            y.clone(),
            &Polynomial::constant(2, 1.0) - &y,
        ];
        let unsafe_set = vec![&(&x * &x) - &Polynomial::constant(2, 9.0)];
        let cert = BarrierSynthesizer::new(&sys)
            .synthesize(&initial, &unsafe_set, &BarrierOptions::degree(2))
            .expect("safe with reset");
        assert!(cert.is_safe_side(&[0.0, 0.5]));
        assert!(!cert.is_safe_side(&[3.5, 0.5]));
    }

    #[test]
    fn planar_orbit_avoidance() {
        // Damped rotation from a small disc never reaches a far annulus.
        let f = vec![
            Polynomial::from_terms(2, &[(&[0, 1], -1.0), (&[1, 0], -0.2)]),
            Polynomial::from_terms(2, &[(&[1, 0], 1.0), (&[0, 1], -0.2)]),
        ];
        let sys = HybridSystem::new(2, vec![Mode::new("spiral", f)], vec![]);
        let n2 = Polynomial::norm_squared(2);
        let initial = vec![&Polynomial::constant(2, 1.0) - &n2]; // ‖x‖ ≤ 1
        let unsafe_set = vec![&n2 - &Polynomial::constant(2, 4.0)]; // ‖x‖ ≥ 2
        let cert = BarrierSynthesizer::new(&sys)
            .synthesize(&initial, &unsafe_set, &BarrierOptions::degree(2))
            .expect("contraction is safe");
        assert!(cert.is_safe_side(&[0.5, 0.5]));
        assert!(!cert.is_safe_side(&[2.0, 1.5]));
    }
}
