//! Multiple Lyapunov certificate synthesis (the paper's first SOS program,
//! conditions (a), (b), (c) of Section 3).

use cppll_hybrid::HybridSystem;
use cppll_poly::{monomials_up_to, Polynomial};
use cppll_sos::{SosOptions, SosProgram};

use crate::VerifyError;

/// Whether to search one common certificate or one per mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertificateScheme {
    /// One `V` valid in every mode. Jump conditions become vacuous for
    /// identity resets; the smallest and most robust SOS program.
    Common,
    /// One `Vᵢ` per mode with decrease conditions across jumps
    /// (condition (c) of the paper). More expressive; larger program.
    Multiple,
}

/// How uncertainty over the parameter box enters the Lie-derivative
/// conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustEncoding {
    /// One Lie condition per vertex of the parameter box. Exact (not
    /// conservative) for flows affine in the parameters — which the CP PLL
    /// flows are — and keeps the indeterminate count at the state dimension.
    Vertices,
    /// The paper's encoding: parameters become extra indeterminates and the
    /// box enters through S-procedure multipliers (constraint (b)'s
    /// `σ₃ʲ(x) hⱼ(u)` terms). More general, much larger SDPs.
    SProcedure,
}

/// Options for [`LyapunovSynthesizer`].
#[derive(Debug, Clone)]
pub struct LyapunovOptions {
    /// Certificate degree (even, ≥ 2). The paper uses 6 for the third-order
    /// and 4 for the fourth-order PLL.
    pub degree: u32,
    /// Positivity margin `ε`: conditions are `V − ε‖x‖² ∈ Σ` and
    /// `−V̇ − ε‖x‖² ∈ Σ` on the respective domains.
    pub epsilon: f64,
    /// Half-degree of the S-procedure multipliers σ.
    pub multiplier_half_degree: u32,
    /// Certificate scheme.
    pub scheme: CertificateScheme,
    /// Robustness encoding.
    pub robust: RobustEncoding,
    /// SOS/SDP options.
    pub sos: SosOptions,
}

impl LyapunovOptions {
    /// Defaults for a given certificate degree: `ε = 10⁻⁴`, multiplier
    /// degree `degree`, common scheme, vertex robustness.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is odd or zero.
    pub fn degree(degree: u32) -> Self {
        assert!(
            degree >= 2 && degree.is_multiple_of(2),
            "degree must be even and ≥ 2"
        );
        LyapunovOptions {
            degree,
            epsilon: 1e-4,
            multiplier_half_degree: (degree / 2).max(1),
            scheme: CertificateScheme::Common,
            robust: RobustEncoding::Vertices,
            sos: SosOptions::default(),
        }
    }

    /// Switches to the multiple-certificate scheme (builder style).
    pub fn with_scheme(mut self, scheme: CertificateScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Switches the robustness encoding (builder style).
    pub fn with_robust(mut self, robust: RobustEncoding) -> Self {
        self.robust = robust;
        self
    }
}

/// The synthesised certificates together with the data needed downstream.
#[derive(Debug, Clone)]
pub struct LyapunovCertificates {
    /// Per-mode certificate `Vᵢ` over the state ring (all clones of one
    /// polynomial for the common scheme).
    vs: Vec<Polynomial>,
    /// The options used (degree, margins) — downstream steps reuse them.
    degree: u32,
    epsilon: f64,
    scheme: CertificateScheme,
}

impl LyapunovCertificates {
    /// Certificate for `mode`.
    pub fn for_mode(&self, mode: usize) -> &Polynomial {
        &self.vs[mode]
    }

    /// All certificates in mode order.
    pub fn all(&self) -> &[Polynomial] {
        &self.vs
    }

    /// Certificate degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Positivity/decrease margin used during synthesis.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Scheme used.
    pub fn scheme(&self) -> CertificateScheme {
        self.scheme
    }

    /// Reassembles certificates from their parts — used by checkpoint
    /// replay, which must rebuild the exact struct the crashed run
    /// journaled without re-running synthesis.
    pub(crate) fn from_parts(
        vs: Vec<Polynomial>,
        degree: u32,
        epsilon: f64,
        scheme: CertificateScheme,
    ) -> Self {
        LyapunovCertificates {
            vs,
            degree,
            epsilon,
            scheme,
        }
    }

    /// Rescales all certificates by a common factor so the largest
    /// coefficient is 1 — Lyapunov conditions are scale-invariant, and the
    /// downstream level-set arithmetic is much better conditioned this way.
    pub fn normalized(mut self) -> Self {
        let scale = self
            .vs
            .iter()
            .map(Polynomial::max_abs_coefficient)
            .fold(0.0f64, f64::max);
        if scale > 0.0 {
            for v in &mut self.vs {
                *v = v.scale(1.0 / scale);
            }
        }
        self
    }

    /// Numeric sanity check: `V > 0` and `V̇ < 0` at a state (for a given
    /// mode and parameter sample). Used by tests and Monte-Carlo validation.
    pub fn check_at(&self, system: &HybridSystem, mode: usize, x: &[f64], u: &[f64]) -> (f64, f64) {
        let v = &self.vs[mode];
        let f = system.flow_with_params(mode, u);
        (v.eval(x), v.lie_derivative(&f).eval(x))
    }
}

/// Synthesises multiple Lyapunov certificates for a hybrid system whose
/// equilibrium is the origin.
///
/// Implements the paper's first SOS program:
///
/// * **(a)** `Vᵢ − ε‖x‖² − Σₖ σ₁ⁱᵏ gᵢₖ ∈ Σ` — positive definiteness on the
///   flow set `Cᵢ = {gᵢₖ ≥ 0}`;
/// * **(b)** `−∇Vᵢ·fᵢ(x, u) − ε‖x‖² − Σₖ σ₂ⁱᵏ gᵢₖ − Σⱼ σ₃ʲ hⱼ(u) ∈ Σ` —
///   strict decrease along flows, robust over the parameter box (via
///   vertices or the S-procedure depending on [`RobustEncoding`]);
/// * **(c)** `Vᵢ'(x) − Vᵢ(Rᵢ(x)) − μ·h_guard − Σ σ₅ g_guard ∈ Σ` — decrease
///   across jumps (multiple scheme only; vacuous for the common scheme with
///   identity resets, cf. Remark 2).
///
/// # Examples
///
/// ```no_run
/// use cppll_pll::{PllModelBuilder, PllOrder};
/// use cppll_verify::{LyapunovOptions, LyapunovSynthesizer};
///
/// let model = PllModelBuilder::new(PllOrder::Third).build();
/// let synth = LyapunovSynthesizer::new(model.system());
/// let certs = synth.synthesize(&LyapunovOptions::degree(2))?;
/// assert!(certs.for_mode(0).eval(&[0.1, 0.1, 0.1]) > 0.0);
/// # Ok::<(), cppll_verify::VerifyError>(())
/// ```
pub struct LyapunovSynthesizer<'s> {
    system: &'s HybridSystem,
}

impl<'s> LyapunovSynthesizer<'s> {
    /// Creates a synthesizer for `system` (equilibrium must be the origin).
    pub fn new(system: &'s HybridSystem) -> Self {
        LyapunovSynthesizer { system }
    }

    /// Runs the synthesis.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Infeasible`] when no certificate of the requested
    /// degree exists (the relaxation is incomplete — retry with a higher
    /// degree), [`VerifyError::Numerical`] on solver failure.
    pub fn synthesize(&self, opt: &LyapunovOptions) -> Result<LyapunovCertificates, VerifyError> {
        match opt.robust {
            RobustEncoding::Vertices => self.synthesize_vertices(opt),
            RobustEncoding::SProcedure => self.synthesize_sprocedure(opt),
        }
    }

    /// Like [`LyapunovSynthesizer::synthesize`], but retries with a
    /// geometrically smaller margin `ε` (down to `ε/100`) when the first
    /// attempt is infeasible: robust programs over parameter vertices are
    /// often feasible only under a slimmer margin than nominal ones.
    ///
    /// Numerical failures are *not* retried here — shrinking `ε` does not
    /// address them, and re-solves with adjusted numerical parameters are
    /// the solve supervisor's job (`SosOptions::resilience`).
    pub fn synthesize_auto(
        &self,
        opt: &LyapunovOptions,
    ) -> Result<LyapunovCertificates, VerifyError> {
        let mut attempt = opt.clone();
        let mut last_err = None;
        for _ in 0..3 {
            match self.synthesize(&attempt) {
                Ok(c) => return Ok(c),
                Err(e @ VerifyError::Numerical { .. }) => return Err(e),
                Err(e) => last_err = Some(e),
            }
            attempt.epsilon /= 10.0;
        }
        Err(last_err.expect("at least one attempt"))
    }

    fn synthesize_vertices(
        &self,
        opt: &LyapunovOptions,
    ) -> Result<LyapunovCertificates, VerifyError> {
        let n = self.system.nstates();
        let nmodes = self.system.modes().len();
        let mut prog = SosProgram::new(n);
        let basis: Vec<_> = monomials_up_to(n, opt.degree)
            .into_iter()
            .filter(|m| m.degree() >= 2)
            .collect();
        let nv = match opt.scheme {
            CertificateScheme::Common => 1,
            CertificateScheme::Multiple => nmodes,
        };
        let vids: Vec<_> = (0..nv).map(|_| prog.new_poly(basis.clone())).collect();
        let vid_of = |mode: usize| vids[mode.min(nv - 1)];
        let eps = Polynomial::norm_squared(n).scale(opt.epsilon);
        // Positivity margin coercive at every scale: ε(‖x‖² + ‖x‖^deg).
        // The top-degree part matters for downstream exact rounding — it
        // keeps the Gram interior in the highest-order directions too.
        let eps_pos = &eps
            + &Polynomial::norm_squared(n)
                .pow(opt.degree / 2)
                .scale(opt.epsilon);

        for (mi, mode) in self.system.modes().iter().enumerate() {
            let domain = mode.flow_set().to_vec();
            // (a) positivity. Certified *globally* (no S-procedure term):
            // slightly stronger than the paper's per-domain condition but it
            // makes every sublevel set of V compact and free of spurious
            // far-away components — which the level-curve characterisation
            // of the attractive invariant (Theorem 2) silently relies on.
            let pos = prog.poly(vid_of(mi)).sub(&eps_pos.clone().into());
            prog.require_sos(pos);
            // (b) decrease along every vertex flow, on the flow set.
            for f in self.system.flow_vertices(mi) {
                let vdot = prog.poly_lie_derivative(vid_of(mi), &f);
                let expr = vdot.neg().sub(&eps.clone().into());
                prog.require_nonneg_on(expr, &domain, opt.multiplier_half_degree);
            }
        }

        // (c) jump conditions for the multiple scheme.
        if matches!(opt.scheme, CertificateScheme::Multiple) {
            for jump in self.system.jumps() {
                let v_from = vid_of(jump.from);
                let v_to = vid_of(jump.to);
                if v_from == v_to && jump.is_identity_reset() {
                    continue; // vacuous (Remark 2)
                }
                // V_from(x) − V_to(R(x)) − Σ μⱼ hⱼ − Σ σₖ gₖ ∈ Σ on the guard.
                let v_to_after = if jump.is_identity_reset() {
                    prog.poly(v_to)
                } else {
                    prog.poly_composed(v_to, &jump.reset)
                };
                let mut expr = prog.poly(v_from).sub(&v_to_after);
                for h in &jump.guard_eq {
                    // Free polynomial multiplier on the equality surface.
                    let mu = prog.new_poly_of_degree(0, opt.degree.saturating_sub(1));
                    expr = expr.sub(&prog.poly(mu).mul_poly(h));
                }
                prog.require_nonneg_on(expr, &jump.guard, opt.multiplier_half_degree);
            }
        }

        let sol = prog
            .solve(&opt.sos)
            .map_err(|e| VerifyError::from_sos("lyapunov synthesis", e))?;
        let vs: Vec<Polynomial> = (0..nmodes)
            .map(|mi| sol.poly_value(vid_of(mi)).prune(1e-12))
            .collect();
        self.sample_check(&vs, opt)?;
        Ok(LyapunovCertificates {
            vs,
            degree: opt.degree,
            epsilon: opt.epsilon,
            scheme: opt.scheme,
        }
        .normalized())
    }

    /// A-posteriori guard against numerical false positives: the SDP is
    /// solved to finite tolerance, so an *infeasible-by-ε* program can come
    /// back "solved" once the margin ε is small. Sample each mode's flow
    /// set (within a box) at every parameter vertex and reject certificates
    /// that visibly violate positivity or decrease.
    fn sample_check(&self, vs: &[Polynomial], _opt: &LyapunovOptions) -> Result<(), VerifyError> {
        let n = self.system.nstates();
        let steps = if n <= 3 { 9 } else { 5 };
        let bound = 2.0f64;
        for (mi, mode) in self.system.modes().iter().enumerate() {
            let v = &vs[mi.min(vs.len() - 1)];
            let scale = v.max_abs_coefficient().max(1e-300);
            let fields = self.system.flow_vertices(mi);
            let vdots: Vec<Polynomial> = fields.iter().map(|f| v.lie_derivative(f)).collect();
            let mut idx = vec![0usize; n];
            loop {
                let x: Vec<f64> = idx
                    .iter()
                    .map(|&i| -bound + 2.0 * bound * (i as f64) / ((steps - 1) as f64))
                    .collect();
                let r2: f64 = x.iter().map(|v| v * v).sum();
                if r2 > 1e-4 && mode.contains(&x, 0.0) {
                    // Positivity with generous numerical slack.
                    if v.eval(&x) < -1e-7 * scale * (1.0 + r2 * r2) {
                        return Err(VerifyError::Infeasible {
                            step: "lyapunov sample check (positivity)",
                            source: cppll_sos::SosError::Infeasible {
                                status: cppll_sdp::SdpStatus::NearOptimal,
                            },
                        });
                    }
                    for vd in &vdots {
                        if vd.eval(&x) > 1e-7 * scale * (1.0 + r2 * r2) {
                            return Err(VerifyError::Infeasible {
                                step: "lyapunov sample check (decrease)",
                                source: cppll_sos::SosError::Infeasible {
                                    status: cppll_sdp::SdpStatus::NearOptimal,
                                },
                            });
                        }
                    }
                }
                let mut k = 0;
                loop {
                    if k == n {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < steps {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
            }
        }
        Ok(())
    }

    /// The paper's original encoding: parameters as indeterminates with
    /// S-procedure box multipliers.
    fn synthesize_sprocedure(
        &self,
        opt: &LyapunovOptions,
    ) -> Result<LyapunovCertificates, VerifyError> {
        let n = self.system.nstates();
        let k = self.system.params().len();
        let ring = n + k;
        let nmodes = self.system.modes().len();
        let mut prog = SosProgram::new(ring);
        // V depends on the state variables only.
        let basis: Vec<_> = monomials_up_to(ring, opt.degree)
            .into_iter()
            .filter(|m| m.degree() >= 2 && (n..ring).all(|i| m.exp(i) == 0))
            .collect();
        let nv = match opt.scheme {
            CertificateScheme::Common => 1,
            CertificateScheme::Multiple => nmodes,
        };
        let vids: Vec<_> = (0..nv).map(|_| prog.new_poly(basis.clone())).collect();
        let vid_of = |mode: usize| vids[mode.min(nv - 1)];
        // ε‖x‖² over the state block of the extended ring.
        let mut eps = Polynomial::zero(ring);
        for i in 0..n {
            let xi = Polynomial::var(ring, i);
            eps = &eps + &(&xi * &xi).scale(opt.epsilon);
        }
        let box_constraints = self.system.params().constraints(n);

        for (mi, mode) in self.system.modes().iter().enumerate() {
            let domain: Vec<Polynomial> = mode.flow_set().iter().map(|g| g.extend(ring)).collect();
            // (a) positivity, certified globally (see the vertex encoding
            // for why domain-free positivity is used).
            let pos = prog.poly(vid_of(mi)).sub(&eps.clone().into());
            prog.require_sos(pos);
            // (b) decrease with box multipliers σ₃ʲ hⱼ(u).
            let mut field: Vec<Polynomial> = mode.flow().to_vec();
            // Parameters do not flow: append zero components.
            field.resize(ring, Polynomial::zero(ring));
            let vdot = prog.poly_lie_derivative(vid_of(mi), &field);
            let mut full_domain = domain.clone();
            full_domain.extend(box_constraints.iter().cloned());
            let expr = vdot.neg().sub(&eps.clone().into());
            prog.require_nonneg_on(expr, &full_domain, opt.multiplier_half_degree);
        }

        if matches!(opt.scheme, CertificateScheme::Multiple) {
            for jump in self.system.jumps() {
                let v_from = vid_of(jump.from);
                let v_to = vid_of(jump.to);
                if v_from == v_to && jump.is_identity_reset() {
                    continue;
                }
                let v_to_after = if jump.is_identity_reset() {
                    prog.poly(v_to)
                } else {
                    let mut reset: Vec<Polynomial> =
                        jump.reset.iter().map(|r| r.extend(ring)).collect();
                    for i in n..ring {
                        reset.push(Polynomial::var(ring, i));
                    }
                    // poly_composed expects arity == ring.
                    prog.poly_composed(v_to, &reset)
                };
                let mut expr = prog.poly(v_from).sub(&v_to_after);
                for h in &jump.guard_eq {
                    let mu = prog.new_poly_of_degree(0, opt.degree.saturating_sub(1));
                    expr = expr.sub(&prog.poly(mu).mul_poly(&h.extend(ring)));
                }
                let guard: Vec<Polynomial> = jump.guard.iter().map(|g| g.extend(ring)).collect();
                prog.require_nonneg_on(expr, &guard, opt.multiplier_half_degree);
            }
        }

        let sol = prog
            .solve(&opt.sos)
            .map_err(|e| VerifyError::from_sos("lyapunov synthesis (s-procedure)", e))?;
        // Project back to the state ring.
        let subs: Vec<Polynomial> = (0..n)
            .map(|i| Polynomial::var(n, i))
            .chain((0..k).map(|_| Polynomial::zero(n)))
            .collect();
        let vs: Vec<Polynomial> = (0..nmodes)
            .map(|mi| sol.poly_value(vid_of(mi)).compose(&subs).prune(1e-12))
            .collect();
        self.sample_check(&vs, opt)?;
        Ok(LyapunovCertificates {
            vs,
            degree: opt.degree,
            epsilon: opt.epsilon,
            scheme: opt.scheme,
        }
        .normalized())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppll_hybrid::{HybridSystem, Jump, Mode, ParamBox};

    /// Two-mode planar switched system, both modes stable, identity jumps at
    /// x = 0: mode 0 on {x ≥ 0}, mode 1 on {x ≤ 0}.
    fn switched_stable() -> HybridSystem {
        let f0 = vec![
            Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
            Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
        ];
        let f1 = vec![
            Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
            Polynomial::from_terms(2, &[(&[0, 1], -1.0)]),
        ];
        let x = Polynomial::var(2, 0);
        let m0 = Mode::new("right", f0).with_flow_set(vec![x.clone()]);
        let m1 = Mode::new("left", f1).with_flow_set(vec![x.scale(-1.0)]);
        let guard_eq = vec![Polynomial::var(2, 0)];
        let jumps = vec![
            Jump::identity(0, 1).with_guard_eq(guard_eq.clone()),
            Jump::identity(1, 0).with_guard_eq(guard_eq),
        ];
        HybridSystem::new(2, vec![m0, m1], jumps)
    }

    #[test]
    fn common_certificate_for_switched_system() {
        let sys = switched_stable();
        let synth = LyapunovSynthesizer::new(&sys);
        let certs = synth
            .synthesize(&LyapunovOptions::degree(2))
            .expect("feasible");
        // V positive and decreasing at sample points in both modes.
        for &(x, y) in &[(0.5, 0.3), (1.0, -1.0)] {
            let (v, vdot) = certs.check_at(&sys, 0, &[x, y], &[]);
            assert!(v > 0.0 && vdot < 0.0, "mode0 at ({x},{y}): V={v} V̇={vdot}");
        }
        for &(x, y) in &[(-0.5, 0.3), (-1.0, -1.0)] {
            let (v, vdot) = certs.check_at(&sys, 1, &[x, y], &[]);
            assert!(v > 0.0 && vdot < 0.0, "mode1 at ({x},{y}): V={v} V̇={vdot}");
        }
    }

    #[test]
    fn multiple_certificates_also_feasible() {
        let sys = switched_stable();
        let synth = LyapunovSynthesizer::new(&sys);
        let opt = LyapunovOptions::degree(2).with_scheme(CertificateScheme::Multiple);
        let certs = synth.synthesize(&opt).expect("feasible");
        assert_eq!(certs.all().len(), 2);
        // Jump condition: V₁ ≤ V₀ on the guard x = 0 (both directions ⇒ equal).
        let v0 = certs.for_mode(0);
        let v1 = certs.for_mode(1);
        for &y in &[0.5, -0.7, 1.0] {
            let d = (v0.eval(&[0.0, y]) - v1.eval(&[0.0, y])).abs();
            let scale = v0.eval(&[0.0, y]).abs().max(1.0);
            assert!(d < 1e-4 * scale, "guard mismatch at y={y}: {d}");
        }
    }

    #[test]
    fn unstable_system_is_infeasible() {
        // ẋ = +x: no Lyapunov certificate exists.
        let f = vec![Polynomial::from_terms(1, &[(&[1], 1.0)])];
        let sys = HybridSystem::new(
            1,
            vec![Mode::new("unstable", f).with_flow_set(vec![
                // bounded domain |x| ≤ 1 so the S-procedure could "help"
                &Polynomial::constant(1, 1.0) - &Polynomial::var(1, 0),
                &Polynomial::constant(1, 1.0) + &Polynomial::var(1, 0),
            ])],
            vec![],
        );
        let r = LyapunovSynthesizer::new(&sys).synthesize(&LyapunovOptions::degree(2));
        assert!(r.is_err(), "unstable system must not yield a certificate");
    }

    #[test]
    fn robust_over_parameter_box_vertices() {
        // ẋ = -u x with u ∈ [0.5, 2]: common V = x² works for all u.
        let f = vec![Polynomial::from_terms(2, &[(&[1, 1], -1.0)])];
        let sys = HybridSystem::with_params(
            1,
            vec![Mode::new("m", f)],
            vec![],
            ParamBox::new(vec![0.5], vec![2.0]),
        );
        let certs = LyapunovSynthesizer::new(&sys)
            .synthesize(&LyapunovOptions::degree(2))
            .expect("feasible");
        let v = certs.for_mode(0);
        assert!(v.eval(&[1.0]) > 0.0);
    }

    #[test]
    fn sprocedure_encoding_matches_vertices() {
        let f = vec![Polynomial::from_terms(2, &[(&[1, 1], -1.0)])];
        let sys = HybridSystem::with_params(
            1,
            vec![Mode::new("m", f).with_flow_set(vec![
                &Polynomial::constant(1, 4.0) - &(&Polynomial::var(1, 0) * &Polynomial::var(1, 0)),
            ])],
            vec![],
            ParamBox::new(vec![0.5], vec![2.0]),
        );
        let opt = LyapunovOptions::degree(2).with_robust(RobustEncoding::SProcedure);
        let certs = LyapunovSynthesizer::new(&sys)
            .synthesize(&opt)
            .expect("feasible");
        let v = certs.for_mode(0);
        assert_eq!(v.nvars(), 1, "certificate projected to the state ring");
        assert!(v.eval(&[1.0]) > 0.0);
        let (_, vdot) = certs.check_at(&sys, 0, &[1.0], &[0.5]);
        assert!(vdot < 0.0);
    }
}
