//! The supervisor↔worker wire protocol: newline-framed text on stdout.
//!
//! A worker periodically prints heartbeat lines
//!
//! ```text
//! @cppll-hb seq=<n> rss_kb=<r>
//! ```
//!
//! interleaved with its ordinary output. Rust's `println!` takes the
//! stdout lock per call, so heartbeat lines and report lines never shear
//! into each other even though they come from different threads. The
//! supervisor classifies each line as heartbeat or passthrough output;
//! anything that fails to parse as a heartbeat *is* output — a garbled
//! worker must never be able to crash its supervisor.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::rss::current_rss_kb;

/// Prefix marking a heartbeat line.
pub const HEARTBEAT_PREFIX: &str = "@cppll-hb ";

/// One line read from a worker's stdout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerLine {
    /// A parsed heartbeat.
    Heartbeat {
        /// Monotone heartbeat sequence number (0-based).
        seq: u64,
        /// Worker's self-reported resident set size in KiB (0 when the
        /// worker could not measure it).
        rss_kb: u64,
    },
    /// Any other line: the worker's ordinary output, forwarded verbatim.
    Output(String),
}

/// Renders a heartbeat line (without trailing newline).
pub fn heartbeat_line(seq: u64, rss_kb: u64) -> String {
    format!("{HEARTBEAT_PREFIX}seq={seq} rss_kb={rss_kb}")
}

/// Classifies one worker stdout line.
pub fn parse_line(line: &str) -> WorkerLine {
    let Some(rest) = line.strip_prefix(HEARTBEAT_PREFIX) else {
        return WorkerLine::Output(line.to_string());
    };
    let mut seq = None;
    let mut rss = None;
    for token in rest.split_ascii_whitespace() {
        if let Some(v) = token.strip_prefix("seq=") {
            seq = v.parse::<u64>().ok();
        } else if let Some(v) = token.strip_prefix("rss_kb=") {
            rss = v.parse::<u64>().ok();
        }
    }
    match (seq, rss) {
        (Some(seq), Some(rss_kb)) => WorkerLine::Heartbeat { seq, rss_kb },
        // A malformed heartbeat is treated as output, not an error.
        _ => WorkerLine::Output(line.to_string()),
    }
}

/// Worker-side heartbeat thread: prints a heartbeat to stdout every
/// `interval` until dropped. Spawned by the CLI when it runs as a
/// supervised worker (`--worker-heartbeat <ms>`).
#[derive(Debug)]
pub struct HeartbeatEmitter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatEmitter {
    /// Starts emitting heartbeats every `interval`.
    pub fn start(interval: Duration) -> HeartbeatEmitter {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cppll-heartbeat".to_string())
            .spawn(move || {
                let mut seq = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    println!("{}", heartbeat_line(seq, current_rss_kb().unwrap_or(0)));
                    seq += 1;
                    // Sleep in small slices so drop() does not block for a
                    // full interval.
                    let mut left = interval;
                    while !stop2.load(Ordering::Relaxed) && !left.is_zero() {
                        let slice = left.min(Duration::from_millis(25));
                        std::thread::sleep(slice);
                        left = left.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn heartbeat thread");
        HeartbeatEmitter {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for HeartbeatEmitter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeats_round_trip() {
        let line = heartbeat_line(17, 204_800);
        assert_eq!(
            parse_line(&line),
            WorkerLine::Heartbeat {
                seq: 17,
                rss_kb: 204_800
            }
        );
    }

    #[test]
    fn ordinary_output_passes_through() {
        assert_eq!(
            parse_line("verdict: inevitable"),
            WorkerLine::Output("verdict: inevitable".to_string())
        );
    }

    #[test]
    fn malformed_heartbeats_degrade_to_output() {
        let garbled = format!("{HEARTBEAT_PREFIX}seq=banana rss_kb=12");
        assert_eq!(parse_line(&garbled), WorkerLine::Output(garbled.clone()));
        let partial = format!("{HEARTBEAT_PREFIX}seq=3");
        assert_eq!(parse_line(&partial), WorkerLine::Output(partial.clone()));
    }

    #[test]
    fn emitter_prints_and_stops() {
        // Smoke test: the emitter thread starts and joins cleanly. (Its
        // stdout goes to the test runner's captured stream.)
        let e = HeartbeatEmitter::start(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        drop(e);
    }
}
