//! Resident-set-size self-measurement for workers.
//!
//! The supervisor enforces the memory ceiling from the worker's
//! *self-reported* RSS (carried in every heartbeat) rather than polling
//! `/proc/<pid>` itself: the value travels over the same channel as
//! liveness, needs no extra permissions, and a worker too broken to report
//! is killed by the watchdog anyway.

/// Current resident set size of this process in KiB, from
/// `/proc/self/status` (`VmRSS`). `None` off Linux or when procfs is
/// unavailable.
pub fn current_rss_kb() -> Option<u64> {
    if !rss_self_report_supported() {
        return None;
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb = rest
                .split_ascii_whitespace()
                .next()
                .and_then(|v| v.parse::<u64>().ok())?;
            return Some(kb);
        }
    }
    None
}

/// Whether this platform supports RSS self-reporting at all. `--max-rss`
/// ceilings are only enforceable where this is `true` (Linux, via procfs);
/// elsewhere the supervisor warns once that the ceiling cannot fire.
pub fn rss_self_report_supported() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(rss_self_report_supported());
            let rss = current_rss_kb().expect("procfs available on linux");
            assert!(rss > 0, "a running process has pages resident");
        }
    }

    #[test]
    fn unsupported_platforms_report_none_consistently() {
        if !rss_self_report_supported() {
            assert_eq!(current_rss_kb(), None);
        }
    }
}
