//! The supervision loop: spawn a worker, watch it, kill it when it
//! misbehaves, restart it with resume arguments until it finishes.
//!
//! Exit-code vocabulary (shared with the CLI): `0` verified, `1` usage or
//! input error, `2` not-verified — all three are *final* verdicts and end
//! supervision. Any other exit code, and any signal death (including our
//! own kills), is an abnormal exit answered by a restart with
//! [`WorkerSpec::resume_args`], up to [`HarnessOptions::max_restarts`].
//! The checkpoint journal makes those restarts cheap and bit-exact.

use std::collections::VecDeque;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use cppll_trace::Tracer;

use crate::protocol::{parse_line, WorkerLine};

/// Lines of worker stderr retained per attempt. A panicking worker prints
/// its message and backtrace head well within this; a worker spewing
/// megabytes of diagnostics is bounded to the newest tail.
const STDERR_TAIL_LINES: usize = 64;

/// Longest stderr line retained verbatim; longer lines are truncated with a
/// marker so one pathological line cannot blow the bounded buffer's memory.
const STDERR_LINE_CAP: usize = 2048;

/// How to launch (and relaunch) a worker process.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Worker executable.
    pub program: PathBuf,
    /// Arguments for the first attempt.
    pub initial_args: Vec<String>,
    /// Arguments for every restart — typically the initial arguments with
    /// `--run-id` swapped for `--resume` and one-shot injection flags
    /// stripped (an injected fault simulates a one-time environmental
    /// failure; replaying it forever would turn chaos into livelock).
    pub resume_args: Vec<String>,
    /// Extra environment variables for the worker.
    pub envs: Vec<(String, String)>,
}

/// Parent-side chaos schedule: murder the worker at deterministic points
/// and optionally vandalise its journal tail, to prove kill-and-resume
/// converges from anywhere.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Kill the worker after this many heartbeats of its current attempt.
    pub kill_after_heartbeats: u64,
    /// Multiply the kill threshold by this after every chaos kill. A
    /// factor ≥ 2 guarantees eventual completion: the worker is always
    /// granted more time than any previous attempt survived.
    pub growth: u64,
    /// After each chaos kill, chop this many bytes off the end of the file
    /// (the worker's journal) — simulating a torn final append that the
    /// journal's self-healing resume must recover.
    pub corrupt_tail: Option<(PathBuf, u64)>,
}

/// Supervision parameters.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Liveness watchdog: kill the worker when *no* stdout line (heartbeat
    /// or output) arrives within this window.
    pub watchdog: Duration,
    /// Progress stall: kill the worker when its progress file has not been
    /// modified within this window. Catches a hung solve whose heartbeat
    /// thread is still beating.
    pub stall_timeout: Option<Duration>,
    /// The file whose mtime is the worker's progress signal (its run
    /// journal). Required for `stall_timeout` to act.
    pub progress_file: Option<PathBuf>,
    /// Kill the worker when its self-reported RSS exceeds this (KiB).
    pub max_rss_kb: Option<u64>,
    /// Restarts allowed before giving up.
    pub max_restarts: usize,
    /// Deterministic kill schedule (chaos testing).
    pub chaos: Option<ChaosPlan>,
    /// Counter sink (`worker_killed`, `heartbeat_missed`, `worker_stalled`,
    /// `worker_restarted`).
    pub tracer: Option<Tracer>,
    /// Echo worker output lines to this process's stdout as they arrive.
    pub forward_output: bool,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            watchdog: Duration::from_secs(30),
            stall_timeout: None,
            progress_file: None,
            max_rss_kb: None,
            max_restarts: 3,
            chaos: None,
            tracer: None,
            forward_output: false,
        }
    }
}

/// Why the supervisor killed a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillReason {
    /// No stdout line within the watchdog window.
    Watchdog,
    /// Progress file untouched within the stall window.
    Stall,
    /// Self-reported RSS above the ceiling.
    Rss,
    /// Scheduled chaos kill.
    Chaos,
}

impl KillReason {
    /// Human-readable label for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            KillReason::Watchdog => "watchdog",
            KillReason::Stall => "stall",
            KillReason::Rss => "rss",
            KillReason::Chaos => "chaos",
        }
    }
}

/// What supervision observed, returned when the worker reached a final
/// exit code.
#[derive(Debug, Clone, Default)]
pub struct HarnessReport {
    /// The worker's final exit code (0, 1, or 2).
    pub exit_code: i32,
    /// Restarts performed.
    pub restarts: usize,
    /// Every kill the supervisor performed, in order.
    pub kills: Vec<KillReason>,
    /// Heartbeats received across all attempts.
    pub heartbeats: u64,
    /// Output lines of the final (completed) attempt.
    pub output: Vec<String>,
    /// Bounded tail of worker stderr from the most recent attempt that
    /// wrote any — a dead worker's panic message survives here even when
    /// a later attempt succeeded silently.
    pub stderr_tail: Vec<String>,
}

/// Why supervision failed outright.
#[derive(Debug)]
pub enum HarnessError {
    /// The worker could not be spawned at all.
    Spawn {
        /// Executable involved.
        program: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The restart budget ran out without a final exit.
    GaveUp {
        /// Attempts performed (1 initial + restarts).
        attempts: usize,
        /// Kills performed along the way.
        kills: Vec<KillReason>,
        /// Bounded tail of the last attempt's stderr — the worker's dying
        /// words, captured so they are never lost to interleaved output.
        stderr_tail: Vec<String>,
    },
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Spawn { program, source } => {
                write!(f, "failed to spawn worker {}: {source}", program.display())
            }
            HarnessError::GaveUp {
                attempts,
                kills,
                stderr_tail,
            } => {
                write!(
                    f,
                    "worker failed to finish after {attempts} attempts ({} kills)",
                    kills.len()
                )?;
                if let Some(last) = stderr_tail.last() {
                    write!(f, "; last stderr: {last}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for HarnessError {}

/// Age of the progress signal: time since the file's mtime or the attempt
/// start, whichever is more recent — a worker that has not yet touched the
/// journal it inherited must not be blamed for its predecessor's mtime.
fn progress_age(path: &Path, attempt_started: SystemTime) -> Option<Duration> {
    let mtime = std::fs::metadata(path).ok()?.modified().ok()?;
    let anchor = mtime.max(attempt_started);
    SystemTime::now().duration_since(anchor).ok()
}

/// Chops `chop` bytes off the file's tail, never cutting into the header
/// (first) line — simulated torn-append damage must stay recoverable.
fn corrupt_tail(path: &Path, chop: u64) {
    let Ok(bytes) = std::fs::read(path) else {
        return;
    };
    let Some(header_end) = bytes.iter().position(|&b| b == b'\n') else {
        return;
    };
    let min_len = (header_end + 1) as u64;
    let len = bytes.len() as u64;
    let new_len = len.saturating_sub(chop).max(min_len);
    if new_len >= len {
        return;
    }
    if let Ok(f) = std::fs::OpenOptions::new().write(true).open(path) {
        let _ = f.set_len(new_len);
    }
}

/// Pushes a (length-capped) stderr line into a bounded ring buffer.
fn push_stderr_line(ring: &Mutex<VecDeque<String>>, mut line: String) {
    if line.len() > STDERR_LINE_CAP {
        let mut cut = STDERR_LINE_CAP;
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        line.truncate(cut);
        line.push_str(" …[truncated]");
    }
    let mut ring = ring.lock().unwrap();
    if ring.len() == STDERR_TAIL_LINES {
        ring.pop_front();
    }
    ring.push_back(line);
}

/// One-time process-wide latch for the "RSS ceiling unenforceable" warning.
static RSS_WARNING_EMITTED: AtomicBool = AtomicBool::new(false);

/// Runs a worker under supervision until it exits with a final code.
///
/// # Errors
///
/// [`HarnessError::Spawn`] when the worker cannot start at all,
/// [`HarnessError::GaveUp`] when the restart budget runs out.
pub fn run_supervised(
    spec: &WorkerSpec,
    opt: &HarnessOptions,
) -> Result<HarnessReport, HarnessError> {
    let mut report = HarnessReport::default();
    if opt.max_rss_kb.is_some()
        && !crate::rss::rss_self_report_supported()
        && !RSS_WARNING_EMITTED.swap(true, Ordering::Relaxed)
    {
        // The ceiling compares against the worker's *self-reported* RSS,
        // which comes from /proc and is Linux-only: elsewhere the heartbeat
        // reports 0 KiB and the limit can never fire. Say so once instead
        // of silently not enforcing.
        eprintln!(
            "harness: warning: an RSS ceiling is configured but RSS \
             self-reporting is unsupported on this platform (Linux-only); \
             the ceiling will not be enforced"
        );
        if let Some(t) = &opt.tracer {
            t.counter("rss_unenforceable", 1);
        }
    }
    let mut chaos_threshold = opt
        .chaos
        .as_ref()
        .map(|c| c.kill_after_heartbeats.max(1));
    let counter = |name: &'static str| {
        if let Some(t) = &opt.tracer {
            t.counter(name, 1);
        }
    };

    for attempt in 0..=opt.max_restarts {
        let args = if attempt == 0 {
            &spec.initial_args
        } else {
            &spec.resume_args
        };
        let mut cmd = Command::new(&spec.program);
        cmd.args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in &spec.envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().map_err(|e| HarnessError::Spawn {
            program: spec.program.clone(),
            source: e,
        })?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let stderr = child.stderr.take().expect("stderr was piped");

        // Stderr reader: drain into a bounded ring so a dead worker's panic
        // message is preserved without ever inheriting the terminal (which
        // interleaves) or buffering unboundedly. Not joined: the ring is
        // shared, and a killed worker's grandchildren may hold the pipe.
        let stderr_ring = Arc::new(Mutex::new(VecDeque::with_capacity(STDERR_TAIL_LINES)));
        {
            let ring = Arc::clone(&stderr_ring);
            let forward = opt.forward_output;
            std::thread::spawn(move || {
                for line in std::io::BufReader::new(stderr).lines() {
                    let Ok(l) = line else { break };
                    if forward {
                        eprintln!("{l}");
                    }
                    push_stderr_line(&ring, l);
                }
            });
        }

        // Reader thread: worker stdout → channel. The channel disconnect
        // (reader done, all lines drained) is the exit signal — a closed
        // stdout means the worker is gone or as good as.
        let (tx, rx) = mpsc::channel::<String>();
        let reader = std::thread::spawn(move || {
            for line in std::io::BufReader::new(stdout).lines() {
                match line {
                    Ok(l) => {
                        if tx.send(l).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });

        let attempt_started = SystemTime::now();
        let mut last_line = Instant::now();
        let mut attempt_heartbeats = 0u64;
        let mut attempt_output = Vec::new();
        let mut kill: Option<KillReason> = None;

        let status = loop {
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(line) => {
                    last_line = Instant::now();
                    match parse_line(&line) {
                        WorkerLine::Heartbeat { rss_kb, .. } => {
                            attempt_heartbeats += 1;
                            report.heartbeats += 1;
                            if kill.is_none() {
                                if let Some(ceiling) = opt.max_rss_kb {
                                    if rss_kb > ceiling {
                                        kill = Some(KillReason::Rss);
                                    }
                                }
                            }
                            if kill.is_none() {
                                if let Some(threshold) = chaos_threshold {
                                    if attempt_heartbeats >= threshold {
                                        kill = Some(KillReason::Chaos);
                                    }
                                }
                            }
                        }
                        WorkerLine::Output(l) => {
                            if opt.forward_output {
                                println!("{l}");
                            }
                            attempt_output.push(l);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if kill.is_none() && last_line.elapsed() > opt.watchdog {
                        counter("heartbeat_missed");
                        kill = Some(KillReason::Watchdog);
                    }
                    if kill.is_none() {
                        if let (Some(stall), Some(pf)) = (opt.stall_timeout, &opt.progress_file)
                        {
                            // A missing progress file counts from attempt
                            // start: a worker hung before creating its
                            // journal is still hung.
                            let age = progress_age(pf, attempt_started).or_else(|| {
                                SystemTime::now().duration_since(attempt_started).ok()
                            });
                            if age.is_some_and(|a| a > stall) {
                                counter("worker_stalled");
                                kill = Some(KillReason::Stall);
                            }
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    break child.wait();
                }
            }
            if kill.is_some() {
                // SIGKILL and reap directly: waiting for stdout EOF here
                // could hang forever if the worker leaked the pipe to a
                // grandchild the kill does not reach.
                let _ = child.kill();
                let status = child.wait();
                while let Ok(line) = rx.try_recv() {
                    if let WorkerLine::Output(l) = parse_line(&line) {
                        if opt.forward_output {
                            println!("{l}");
                        }
                        attempt_output.push(l);
                    }
                }
                break status;
            }
        };
        if kill.is_none() {
            let _ = reader.join();
        }
        drop(rx);
        let status = status.map_err(|e| HarnessError::Spawn {
            program: spec.program.clone(),
            source: e,
        })?;

        // Keep the newest attempt's stderr tail; a silent later attempt
        // must not erase the dying words of the one that crashed.
        {
            let ring = stderr_ring.lock().unwrap();
            if !ring.is_empty() {
                report.stderr_tail = ring.iter().cloned().collect();
            }
        }

        if let Some(reason) = kill {
            counter("worker_killed");
            report.kills.push(reason);
            if reason == KillReason::Chaos {
                if let Some(chaos) = &opt.chaos {
                    if let Some((path, chop)) = &chaos.corrupt_tail {
                        corrupt_tail(path, *chop);
                    }
                    chaos_threshold =
                        chaos_threshold.map(|t| t.saturating_mul(chaos.growth.max(2)));
                }
            }
        }

        // Final verdicts end supervision; anything else is an abnormal
        // exit and restarts. (A kill that raced a clean exit is a clean
        // exit: the exit status wins.)
        if let Some(code @ 0..=2) = status.code() {
            report.exit_code = code;
            report.output = attempt_output;
            return Ok(report);
        }

        if attempt < opt.max_restarts {
            counter("worker_restarted");
            report.restarts += 1;
        }
    }

    Err(HarnessError::GaveUp {
        attempts: opt.max_restarts + 1,
        kills: report.kills,
        stderr_tail: report.stderr_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> (PathBuf, Vec<String>) {
        (
            PathBuf::from("/bin/sh"),
            vec!["-c".to_string(), script.to_string()],
        )
    }

    fn spec(initial: &str, resume: &str) -> WorkerSpec {
        let (program, initial_args) = sh(initial);
        let (_, resume_args) = sh(resume);
        WorkerSpec {
            program,
            initial_args,
            resume_args,
            envs: Vec::new(),
        }
    }

    fn fast_opts() -> HarnessOptions {
        HarnessOptions {
            watchdog: Duration::from_millis(400),
            max_restarts: 3,
            ..HarnessOptions::default()
        }
    }

    #[test]
    fn clean_worker_finishes_first_try() {
        let s = spec("echo done; exit 0", "echo resumed; exit 0");
        let report = run_supervised(&s, &fast_opts()).unwrap();
        assert_eq!(report.exit_code, 0);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.output, vec!["done".to_string()]);
        assert!(report.kills.is_empty());
    }

    #[test]
    fn not_verified_exit_code_is_final_not_restarted() {
        let s = spec("exit 2", "echo should-not-run; exit 0");
        let report = run_supervised(&s, &fast_opts()).unwrap();
        assert_eq!(report.exit_code, 2);
        assert_eq!(report.restarts, 0);
    }

    #[test]
    fn crash_exit_code_restarts_with_resume_args() {
        let s = spec("echo first; exit 7", "echo resumed; exit 0");
        let report = run_supervised(&s, &fast_opts()).unwrap();
        assert_eq!(report.exit_code, 0);
        assert_eq!(report.restarts, 1);
        assert_eq!(report.output, vec!["resumed".to_string()]);
    }

    #[test]
    fn silent_worker_is_killed_by_watchdog_and_replaced() {
        let rec = cppll_trace::TraceRecorder::new(cppll_trace::TraceLevel::Stage);
        let s = spec("sleep 30", "echo resumed; exit 0");
        let mut opt = fast_opts();
        opt.tracer = Some(rec.tracer());
        let started = Instant::now();
        let report = run_supervised(&s, &opt).unwrap();
        assert_eq!(report.exit_code, 0);
        assert_eq!(report.kills, vec![KillReason::Watchdog]);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "watchdog must fire within its window, not wait for the sleep"
        );
        assert_eq!(rec.counter_total("heartbeat_missed"), 1);
        assert_eq!(rec.counter_total("worker_killed"), 1);
        assert_eq!(rec.counter_total("worker_restarted"), 1);
    }

    #[test]
    fn heartbeats_keep_a_busy_worker_alive_but_stalled_progress_kills_it() {
        // The worker heartbeats forever (liveness OK) but never touches
        // its progress file (no progress): only the stall detector can
        // catch this — exactly the hung-solve scenario.
        let dir = std::env::temp_dir().join("cppll-harness-tests/stall");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let progress = dir.join("journal.jsonl");
        std::fs::write(&progress, "header\n").unwrap();

        let rec = cppll_trace::TraceRecorder::new(cppll_trace::TraceLevel::Stage);
        let s = spec(
            "while true; do printf '@cppll-hb seq=0 rss_kb=1\\n'; sleep 0.05; done",
            "echo resumed; exit 0",
        );
        let mut opt = fast_opts();
        opt.watchdog = Duration::from_secs(30);
        opt.stall_timeout = Some(Duration::from_millis(300));
        opt.progress_file = Some(progress);
        opt.tracer = Some(rec.tracer());
        let report = run_supervised(&s, &opt).unwrap();
        assert_eq!(report.exit_code, 0);
        assert_eq!(report.kills, vec![KillReason::Stall]);
        assert!(report.heartbeats > 0, "heartbeats were flowing the whole time");
        assert_eq!(rec.counter_total("worker_stalled"), 1);
    }

    #[test]
    fn rss_ceiling_kills_a_bloated_worker() {
        let s = spec(
            "printf '@cppll-hb seq=0 rss_kb=999999999\\n'; sleep 30",
            "echo resumed; exit 0",
        );
        let mut opt = fast_opts();
        opt.max_rss_kb = Some(1024);
        let report = run_supervised(&s, &opt).unwrap();
        assert_eq!(report.exit_code, 0);
        assert_eq!(report.kills, vec![KillReason::Rss]);
    }

    #[test]
    fn chaos_kill_fires_after_the_scheduled_heartbeat_count() {
        let s = spec(
            "while true; do printf '@cppll-hb seq=0 rss_kb=1\\n'; sleep 0.02; done",
            "echo resumed; exit 0",
        );
        let mut opt = fast_opts();
        opt.chaos = Some(ChaosPlan {
            kill_after_heartbeats: 3,
            growth: 2,
            corrupt_tail: None,
        });
        let report = run_supervised(&s, &opt).unwrap();
        assert_eq!(report.exit_code, 0);
        assert_eq!(report.kills, vec![KillReason::Chaos]);
    }

    #[test]
    fn restart_budget_exhaustion_gives_up() {
        let s = spec("exit 9", "exit 9");
        let mut opt = fast_opts();
        opt.max_restarts = 2;
        match run_supervised(&s, &opt) {
            Err(HarnessError::GaveUp { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected GaveUp, got {other:?}"),
        }
    }

    #[test]
    fn crashed_workers_stderr_survives_a_silent_successful_resume() {
        let s = spec("echo boom >&2; exit 7", "exit 0");
        let report = run_supervised(&s, &fast_opts()).unwrap();
        assert_eq!(report.exit_code, 0);
        assert_eq!(report.restarts, 1);
        assert_eq!(report.stderr_tail, vec!["boom".to_string()]);
    }

    #[test]
    fn gave_up_error_carries_the_last_stderr_tail() {
        let s = spec("echo first-death >&2; exit 9", "echo later-death >&2; exit 9");
        let mut opt = fast_opts();
        opt.max_restarts = 2;
        match run_supervised(&s, &opt) {
            Err(HarnessError::GaveUp {
                attempts,
                stderr_tail,
                ..
            }) => {
                assert_eq!(attempts, 3);
                assert_eq!(stderr_tail, vec!["later-death".to_string()]);
                let display = run_supervised(&s, &opt).unwrap_err().to_string();
                assert!(display.contains("later-death"), "{display}");
            }
            other => panic!("expected GaveUp, got {other:?}"),
        }
    }

    #[test]
    fn stderr_tail_is_bounded_to_the_newest_lines() {
        let s = spec("seq 1 500 >&2; exit 0", "exit 0");
        let report = run_supervised(&s, &fast_opts()).unwrap();
        assert_eq!(report.stderr_tail.len(), STDERR_TAIL_LINES);
        assert_eq!(report.stderr_tail.last().unwrap(), "500");
        assert_eq!(
            report.stderr_tail.first().unwrap(),
            &(500 - STDERR_TAIL_LINES + 1).to_string()
        );
    }

    #[test]
    fn pathological_stderr_lines_are_truncated_not_buffered() {
        let ring = Mutex::new(VecDeque::new());
        push_stderr_line(&ring, "x".repeat(1_000_000));
        let got = ring.lock().unwrap().pop_front().unwrap();
        assert!(got.len() < STDERR_LINE_CAP + 32);
        assert!(got.ends_with("…[truncated]"));
    }

    #[test]
    fn corrupt_tail_never_cuts_into_the_header() {
        let dir = std::env::temp_dir().join("cppll-harness-tests/corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        std::fs::write(&path, "header-line\nrecord-line\n").unwrap();
        corrupt_tail(&path, 1_000_000);
        let left = std::fs::read_to_string(&path).unwrap();
        assert_eq!(left, "header-line\n");
        // Chopping nothing leaves the file alone.
        corrupt_tail(&path, 0);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "header-line\n");
    }
}
