//! Process isolation for verification jobs: run the pipeline in a
//! supervised child *worker* process so that a crashing, hanging, or
//! memory-exploding solve never takes the caller down with it.
//!
//! The contract between supervisor and worker is deliberately primitive —
//! newline-framed text on the worker's stdout ([`protocol`]) — because the
//! whole point is to keep working when the worker is in an arbitrarily bad
//! state. Three independent failure detectors run in the supervisor
//! ([`supervisor`]):
//!
//! * **liveness watchdog** — no stdout line (heartbeat or output) within
//!   the watchdog window. Catches wedged or `SIGSTOP`ped workers.
//! * **stall timeout** — the worker's *progress file* (its run journal)
//!   has not been touched within the stall window. Catches a worker whose
//!   heartbeat thread is happily beating while its solve thread hangs
//!   forever: heartbeats prove the process is alive, journal appends prove
//!   it is *working*.
//! * **RSS ceiling** — the worker self-reports its resident set in every
//!   heartbeat ([`rss`]); exceeding the ceiling gets it killed before the
//!   kernel OOM killer picks a victim at random.
//!
//! Any abnormal exit (signal death, crash exit code, or a harness kill) is
//! answered by restarting the worker with *resume* arguments; the
//! `cppll-core::checkpoint` journal guarantees the restarted worker
//! replays its predecessor's completed stages bit-identically. Exit codes
//! 0/1/2 are the worker's verdict vocabulary and end the supervision loop.

pub mod protocol;
pub mod rss;
pub mod supervisor;

pub use protocol::{heartbeat_line, parse_line, HeartbeatEmitter, WorkerLine, HEARTBEAT_PREFIX};
pub use rss::{current_rss_kb, rss_self_report_supported};
pub use supervisor::{
    run_supervised, ChaosPlan, HarnessError, HarnessOptions, HarnessReport, KillReason, WorkerSpec,
};
