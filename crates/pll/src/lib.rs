//! Behavioural charge-pump PLL models (third and fourth order) as hybrid
//! systems, matching Section 2.2 of the paper.
//!
//! Two families of models are provided:
//!
//! * **Verification models** ([`PllModelBuilder`]) in *difference
//!   coordinates*: states are the loop-filter voltages (shifted so that the
//!   phase-lock equilibrium is the origin) and the normalized phase error
//!   `e = (φ_ref − φ_vco)/2π`. The phase-frequency detector is abstracted as
//!   a three-mode piecewise inclusion on `e` (Eq. 2 of the paper); all jump
//!   maps are the identity (Remark 1), so the hybrid Lyapunov conditions
//!   simplify accordingly.
//! * **Simulation ground truth** ([`cyclic_automaton`]): the full cyclic PFD
//!   automaton with explicit reference/VCO phases and modulo-2π resets —
//!   the model whose hundreds of discrete transitions make reachability
//!   expensive, and which the difference model abstracts.
//!
//! Raw Table-1 parameters (picofarads, kilohms, megahertz) produce
//! absurdly-scaled polynomial coefficients, so models are built from
//! [`ScaledCoefficients`] — a documented nondimensionalisation (time in
//! reference periods, voltages relative to the lock voltage) with interval
//! arithmetic carrying Table 1's parameter uncertainty through to the
//! coefficients.
//!
//! # Examples
//!
//! ```
//! use cppll_pll::{PllModelBuilder, PllOrder};
//!
//! let model = PllModelBuilder::new(PllOrder::Third).build();
//! // Three modes: tracking, up-saturated, down-saturated.
//! assert_eq!(model.system().modes().len(), 3);
//! // Origin is the phase-lock equilibrium.
//! let nominal = model.system().params().nominal();
//! assert!(model.system().is_equilibrium(&vec![0.0; 3], &nominal, 1e-9));
//! ```

mod cyclic;
mod interval;
mod model;
mod params;
mod scaling;

pub use cyclic::{cyclic_automaton, CyclicPll};
pub use interval::Interval;
pub use model::{
    PfdAbstraction, PllModelBuilder, PllOrder, UncertaintySelection, VerificationModel,
};
pub use params::TableOneParams;
pub use scaling::ScaledCoefficients;
