//! Table 1 of the paper: CP PLL parameters used in the experimentation.

use crate::Interval;

/// Raw circuit parameters in SI units, directly transcribed from Table 1 of
/// the paper (with the two reconstructions documented in `DESIGN.md`: the
/// garbled `[198 202]` / `[495 502]` row is read as the feedback divider
/// ratio `N`, and the VCO gain/free-running frequency are chosen so that the
/// lock voltage is 1 V nominal — the published figures are in normalized
/// coordinates, so only the *shape* of the dynamics depends on this choice).
#[derive(Debug, Clone, PartialEq)]
pub struct TableOneParams {
    /// First loop-filter capacitor `C1` (farads).
    pub c1: Interval,
    /// Second loop-filter capacitor `C2` (farads).
    pub c2: Interval,
    /// Third loop-filter capacitor `C3` (farads) — fourth order only.
    pub c3: Option<Interval>,
    /// Loop-filter resistor `R` (ohms).
    pub r: Interval,
    /// Second loop-filter resistor `R2` (ohms) — fourth order only.
    pub r2: Option<Interval>,
    /// Reference frequency (hertz).
    pub f_ref: f64,
    /// VCO free-running frequency (hertz).
    pub f0: f64,
    /// Charge-pump current `Ip` (amperes).
    pub ip: Interval,
    /// Feedback divider ratio `N`.
    pub n: Interval,
    /// VCO gain `K_v` (rad/s per volt).
    pub kv: f64,
}

impl TableOneParams {
    /// Third-order column of Table 1.
    ///
    /// `C1 ∈ [1.98, 2.2] pF`, `C2 ∈ [6.1, 6.4] pF`, `R ∈ [7.8, 8.2] kΩ`,
    /// `f_ref = 27 MHz`, `Ip ∈ [495, 505] µA`, `N ∈ [198, 202]`.
    pub fn third_order() -> Self {
        let f_ref = 27.0e6;
        let n = Interval::new(198.0, 202.0);
        // Free-running frequency at 50% of the lock frequency and a VCO gain
        // placing the nominal lock voltage at exactly 1 V:
        //   f_vco = (Kv·v + 2π f0)/(2π N) · N … see `scaling.rs`.
        let f0 = 0.5 * n.mid() * f_ref;
        let kv = 2.0 * std::f64::consts::PI * (n.mid() * f_ref - f0); // per volt
        TableOneParams {
            c1: Interval::new(1.98e-12, 2.2e-12),
            c2: Interval::new(6.1e-12, 6.4e-12),
            c3: None,
            r: Interval::new(7.8e3, 8.2e3),
            r2: None,
            f_ref,
            f0,
            ip: Interval::new(495.0e-6, 505.0e-6),
            n,
            kv,
        }
    }

    /// Fourth-order column of Table 1.
    ///
    /// `C1 ∈ [29, 31] pF`, `C2 ∈ [3.2, 3.4] pF`, `C3 ∈ [1.8, 2.2] pF`,
    /// `R ∈ [48, 52] kΩ`, `R2 ∈ [7, 9] kΩ`, `f_ref = 5 MHz`,
    /// `Ip ∈ [395, 405] µA`, `N ∈ [495, 502]`.
    pub fn fourth_order() -> Self {
        let f_ref = 5.0e6;
        let n = Interval::new(495.0, 502.0);
        // The fourth-order loop has a stronger charge-pump drive in scaled
        // units (b ≈ 24); the free-running fraction is chosen at 96% so the
        // scaled loop gain κ ≈ 0.04 places the crossover between the filter
        // zero (≈ 0.13) and the parasitic poles (≈ 8–13), giving the stable,
        // weakly-damped response the paper's advection figures show.
        let f0 = 0.96 * n.mid() * f_ref;
        let kv = 2.0 * std::f64::consts::PI * (n.mid() * f_ref - f0);
        TableOneParams {
            c1: Interval::new(29.0e-12, 31.0e-12),
            c2: Interval::new(3.2e-12, 3.4e-12),
            c3: Some(Interval::new(1.8e-12, 2.2e-12)),
            r: Interval::new(48.0e3, 52.0e3),
            r2: Some(Interval::new(7.0e3, 9.0e3)),
            f_ref,
            f0,
            ip: Interval::new(395.0e-6, 405.0e-6),
            n,
            kv,
        }
    }

    /// Nominal (midpoint) lock voltage implied by the VCO model:
    /// `v* = 2π (N f_ref − f0) / K_v`.
    pub fn lock_voltage(&self) -> f64 {
        2.0 * std::f64::consts::PI * (self.n.mid() * self.f_ref - self.f0) / self.kv
    }

    /// `true` for a fourth-order parameter set.
    pub fn is_fourth_order(&self) -> bool {
        self.c3.is_some() && self.r2.is_some()
    }

    /// The field names a parameter sweep may use as an axis, in the order
    /// they appear in Table 1.
    pub const AXIS_NAMES: [&'static str; 10] =
        ["c1", "c2", "c3", "r", "r2", "f_ref", "f0", "ip", "n", "kv"];

    /// Re-centres the named parameter at `value`: interval parameters keep
    /// their Table-1 half-width and move their midpoint to `value` (the
    /// robustness envelope travels with the sweep axis); scalar parameters
    /// are set directly. `c3`/`r2` are only addressable on a fourth-order
    /// set.
    ///
    /// Returns `Err` with the offending name when it is not a sweepable
    /// field of this parameter set.
    pub fn with_axis(mut self, name: &str, value: f64) -> Result<Self, String> {
        fn recentre(iv: Interval, value: f64) -> Interval {
            let hw = 0.5 * iv.width();
            Interval::new(value - hw, value + hw)
        }
        match name {
            "c1" => self.c1 = recentre(self.c1, value),
            "c2" => self.c2 = recentre(self.c2, value),
            "r" => self.r = recentre(self.r, value),
            "ip" => self.ip = recentre(self.ip, value),
            "n" => self.n = recentre(self.n, value),
            "c3" => match self.c3 {
                Some(iv) => self.c3 = Some(recentre(iv, value)),
                None => return Err("axis 'c3' requires a fourth-order parameter set".into()),
            },
            "r2" => match self.r2 {
                Some(iv) => self.r2 = Some(recentre(iv, value)),
                None => return Err("axis 'r2' requires a fourth-order parameter set".into()),
            },
            "f_ref" => self.f_ref = value,
            "f0" => self.f0 = value,
            "kv" => self.kv = value,
            other => {
                return Err(format!(
                    "unknown sweep axis '{other}' (expected one of {})",
                    Self::AXIS_NAMES.join(", ")
                ))
            }
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn third_order_values_match_table() {
        let p = TableOneParams::third_order();
        assert!(p.c1.contains(2.0e-12));
        assert!(p.c2.contains(6.25e-12));
        assert!(p.r.contains(8.0e3));
        assert_eq!(p.f_ref, 27.0e6);
        assert!(p.ip.contains(500.0e-6));
        assert!(p.n.contains(200.0));
        assert!(!p.is_fourth_order());
    }

    #[test]
    fn fourth_order_values_match_table() {
        let p = TableOneParams::fourth_order();
        assert!(p.c1.contains(30.0e-12));
        assert!(p.c3.unwrap().contains(2.0e-12));
        assert!(p.r2.unwrap().contains(8.0e3));
        assert_eq!(p.f_ref, 5.0e6);
        assert!(p.is_fourth_order());
    }

    #[test]
    fn with_axis_recentres_intervals_and_sets_scalars() {
        let p = TableOneParams::third_order();
        let q = p.clone().with_axis("ip", 600.0e-6).unwrap();
        assert!((q.ip.mid() - 600.0e-6).abs() < 1e-18);
        assert!((q.ip.width() - p.ip.width()).abs() < 1e-18);
        let q = p.clone().with_axis("f0", 1.0e9).unwrap();
        assert_eq!(q.f0, 1.0e9);
        assert!(p.clone().with_axis("r2", 8.0e3).is_err());
        assert!(p.with_axis("bogus", 1.0).is_err());
    }

    #[test]
    fn lock_voltage_is_one_volt_nominal() {
        for p in [
            TableOneParams::third_order(),
            TableOneParams::fourth_order(),
        ] {
            assert!(
                (p.lock_voltage() - 1.0).abs() < 1e-12,
                "lock voltage {}",
                p.lock_voltage()
            );
        }
    }
}
