//! Difference-coordinate CP PLL verification models.

use cppll_hybrid::{HybridSystem, Jump, Mode, ParamBox};
use cppll_poly::Polynomial;

use crate::{Interval, ScaledCoefficients, TableOneParams};

/// Loop-filter order of the CP PLL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PllOrder {
    /// Third-order loop (states `v1, v2, e`).
    Third,
    /// Fourth-order loop (states `v1, v2, v3, e`).
    Fourth,
}

/// How the phase-frequency detector is abstracted in difference coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PfdAbstraction {
    /// Averaged three-mode model: pump current `i = Ip·e` for `|e| ≤ 1`
    /// (PFD pulse width proportional to the phase error) saturating at
    /// `±Ip` beyond. Keeps an isolated equilibrium at the origin, which the
    /// strict hybrid Lyapunov conditions of Theorem 1 require.
    Saturated,
    /// Literal dead-zone reading of Eq. 2: pump off for `|e| ≤ width`,
    /// constant `±Ip` outside. Convergence is to the lock *set*
    /// (practical inevitability); see `DESIGN.md`.
    DeadZone {
        /// Half-width of the pump-off region in normalized phase error.
        width: f64,
    },
}

/// Which scaled coefficients are treated as uncertain box parameters `u`
/// (the rest are fixed at their interval midpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UncertaintySelection {
    /// All coefficients at midpoints — fastest, no robustness.
    Nominal,
    /// Charge-pump drive `b` and loop gain `κ` uncertain (the paper's `u`:
    /// the `Ip` and `N` rows of Table 1). Default.
    PumpAndGain,
    /// Every scaled coefficient uncertain (2⁴/2⁶ vertices) — the full
    /// robustness ablation.
    Full,
}

/// A built verification model: the hybrid system in shifted difference
/// coordinates plus the metadata the verification pipeline needs.
#[derive(Debug, Clone)]
pub struct VerificationModel {
    order: PllOrder,
    abstraction: PfdAbstraction,
    theta_max: f64,
    coeffs: ScaledCoefficients,
    system: HybridSystem,
    state_names: Vec<&'static str>,
}

impl VerificationModel {
    /// The underlying hybrid system (origin = phase-lock equilibrium).
    pub fn system(&self) -> &HybridSystem {
        &self.system
    }

    /// The loop order.
    pub fn order(&self) -> PllOrder {
        self.order
    }

    /// The PFD abstraction used.
    pub fn abstraction(&self) -> PfdAbstraction {
        self.abstraction
    }

    /// Bound on the modeled phase-error range.
    pub fn theta_max(&self) -> f64 {
        self.theta_max
    }

    /// The scaled coefficients the model was built from.
    pub fn coeffs(&self) -> &ScaledCoefficients {
        &self.coeffs
    }

    /// Number of state variables (3 or 4).
    pub fn nstates(&self) -> usize {
        self.system.nstates()
    }

    /// Index of the mode containing the equilibrium (tracking / pump off).
    pub fn tracking_mode(&self) -> usize {
        0
    }

    /// Index of the up-saturated mode.
    pub fn up_mode(&self) -> usize {
        1
    }

    /// Index of the down-saturated mode.
    pub fn down_mode(&self) -> usize {
        2
    }

    /// Human-readable state names (shifted coordinates).
    pub fn state_names(&self) -> &[&'static str] {
        &self.state_names
    }

    /// Index of the phase-error state `e`.
    pub fn phase_error_index(&self) -> usize {
        self.nstates() - 1
    }
}

/// Builder for [`VerificationModel`].
#[derive(Debug, Clone)]
pub struct PllModelBuilder {
    order: PllOrder,
    abstraction: PfdAbstraction,
    uncertainty: UncertaintySelection,
    theta_max: Option<f64>,
    params: Option<TableOneParams>,
}

impl PllModelBuilder {
    /// Starts a builder for the given loop order with paper defaults
    /// (saturated PFD, pump+gain uncertainty, Table-1 parameters,
    /// `θ_max = 2` for third order and `1` for fourth — the ranges of the
    /// paper's figures).
    pub fn new(order: PllOrder) -> Self {
        PllModelBuilder {
            order,
            abstraction: PfdAbstraction::Saturated,
            uncertainty: UncertaintySelection::PumpAndGain,
            theta_max: None,
            params: None,
        }
    }

    /// Overrides the PFD abstraction (builder style).
    pub fn with_abstraction(mut self, abstraction: PfdAbstraction) -> Self {
        self.abstraction = abstraction;
        self
    }

    /// Overrides the uncertainty selection (builder style).
    pub fn with_uncertainty(mut self, uncertainty: UncertaintySelection) -> Self {
        self.uncertainty = uncertainty;
        self
    }

    /// Overrides the modeled phase-error bound (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `theta_max <= 1`.
    pub fn with_theta_max(mut self, theta_max: f64) -> Self {
        assert!(theta_max > 1.0, "theta_max must exceed the tracking range");
        self.theta_max = Some(theta_max);
        self
    }

    /// Overrides the raw parameters (builder style).
    pub fn with_params(mut self, params: TableOneParams) -> Self {
        self.params = params.into();
        self
    }

    /// Builds the verification model.
    ///
    /// # Panics
    ///
    /// Panics if fourth-order parameters are supplied for a third-order
    /// model or vice versa.
    pub fn build(self) -> VerificationModel {
        let params = self.params.unwrap_or_else(|| match self.order {
            PllOrder::Third => TableOneParams::third_order(),
            PllOrder::Fourth => TableOneParams::fourth_order(),
        });
        match self.order {
            PllOrder::Third => assert!(!params.is_fourth_order(), "parameter order mismatch"),
            PllOrder::Fourth => assert!(params.is_fourth_order(), "parameter order mismatch"),
        }
        let coeffs = ScaledCoefficients::from_params(&params);
        let theta_max = self.theta_max.unwrap_or(match self.order {
            PllOrder::Third => 2.0,
            PllOrder::Fourth => 2.0,
        });
        let (system, state_names) = build_system(
            &coeffs,
            self.order,
            self.abstraction,
            self.uncertainty,
            theta_max,
        );
        VerificationModel {
            order: self.order,
            abstraction: self.abstraction,
            theta_max,
            coeffs,
            system,
            state_names,
        }
    }
}

/// Uncertain-coefficient bookkeeping during model construction.
struct CoeffCtx {
    nstates: usize,
    nparams: usize,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// `(interval, Some(param slot))` per coefficient in registration order.
    slots: Vec<Option<usize>>,
    intervals: Vec<Interval>,
}

impl CoeffCtx {
    fn new(nstates: usize) -> Self {
        CoeffCtx {
            nstates,
            nparams: 0,
            lo: Vec::new(),
            hi: Vec::new(),
            slots: Vec::new(),
            intervals: Vec::new(),
        }
    }

    /// Registers a coefficient; `uncertain` promotes it to a box parameter.
    fn register(&mut self, iv: Interval, uncertain: bool) -> usize {
        let idx = self.slots.len();
        if uncertain && !iv.is_point() {
            self.slots.push(Some(self.nparams));
            self.lo.push(iv.lo);
            self.hi.push(iv.hi);
            self.nparams += 1;
        } else {
            self.slots.push(None);
        }
        self.intervals.push(iv);
        idx
    }

    /// Polynomial for coefficient `idx` over the final ring (call after all
    /// registrations).
    fn poly(&self, idx: usize) -> Polynomial {
        let ring = self.nstates + self.nparams;
        match self.slots[idx] {
            Some(slot) => Polynomial::var(ring, self.nstates + slot),
            None => Polynomial::constant(ring, self.intervals[idx].mid()),
        }
    }

    /// State variable over the final ring.
    fn state(&self, i: usize) -> Polynomial {
        Polynomial::var(self.nstates + self.nparams, i)
    }

    fn param_box(&self) -> ParamBox {
        ParamBox::new(self.lo.clone(), self.hi.clone())
    }
}

fn build_system(
    coeffs: &ScaledCoefficients,
    order: PllOrder,
    abstraction: PfdAbstraction,
    uncertainty: UncertaintySelection,
    theta_max: f64,
) -> (HybridSystem, Vec<&'static str>) {
    let nstates = coeffs.nstates();
    let mut ctx = CoeffCtx::new(nstates);
    let (unc_a, unc_bk) = match uncertainty {
        UncertaintySelection::Nominal => (false, false),
        UncertaintySelection::PumpAndGain => (false, true),
        UncertaintySelection::Full => (true, true),
    };
    let ia1 = ctx.register(coeffs.a1, unc_a);
    let ia2 = ctx.register(coeffs.a2, unc_a);
    let (ia3, ia4) = if order == PllOrder::Fourth {
        (
            Some(ctx.register(coeffs.a3.expect("fourth order has a3"), unc_a)),
            Some(ctx.register(coeffs.a4.expect("fourth order has a4"), unc_a)),
        )
    } else {
        (None, None)
    };
    let ib = ctx.register(coeffs.b, unc_bk);
    let ik = ctx.register(coeffs.kappa, unc_bk);

    let ring = nstates + ctx.nparams;
    let w1 = ctx.state(0);
    let w2 = ctx.state(1);
    let e = ctx.state(nstates - 1);
    let a1 = ctx.poly(ia1);
    let a2 = ctx.poly(ia2);
    let b = ctx.poly(ib);
    let kappa = ctx.poly(ik);

    // Flow map with normalized pump drive `i_n` as a polynomial in the ring.
    let flow_with_current = |i_n: &Polynomial| -> Vec<Polynomial> {
        match order {
            PllOrder::Third => {
                let f1 = &a1 * &(&w2 - &w1);
                let f2 = &(&a2 * &(&w1 - &w2)) + &(&b * i_n);
                let fe = (&kappa * &w2).scale(-1.0);
                vec![f1, f2, fe]
            }
            PllOrder::Fourth => {
                let w3 = ctx.state(2);
                let a3 = ctx.poly(ia3.expect("fourth order"));
                let a4 = ctx.poly(ia4.expect("fourth order"));
                let f1 = &a1 * &(&w2 - &w1);
                let f2 = &(&(&a2 * &(&w1 - &w2)) + &(&a3 * &(&w3 - &w2))) + &(&b * i_n);
                let f3 = &a4 * &(&w2 - &w3);
                let fe = (&kappa * &w3).scale(-1.0);
                vec![f1, f2, f3, fe]
            }
        }
    };

    // Tracking-region half width: 1 for the saturated abstraction, the dead
    // zone width for the literal model.
    let (track_halfwidth, track_current) = match abstraction {
        PfdAbstraction::Saturated => (1.0, e.clone()),
        PfdAbstraction::DeadZone { width } => {
            assert!(width > 0.0 && width < theta_max, "invalid dead zone width");
            (width, Polynomial::zero(ring))
        }
    };

    // Flow sets over the state-only ring.
    let es = Polynomial::var(nstates, nstates - 1);
    let c = |v: f64| Polynomial::constant(nstates, v);
    let track_set = vec![&c(track_halfwidth) - &es, &es + &c(track_halfwidth)];
    let up_set = vec![&es - &c(track_halfwidth), &c(theta_max) - &es];
    let down_set = vec![(&es + &c(track_halfwidth)).scale(-1.0), &es + &c(theta_max)];

    let one = Polynomial::constant(ring, 1.0);
    let modes = vec![
        Mode::new("tracking", flow_with_current(&track_current)).with_flow_set(track_set),
        Mode::new("up", flow_with_current(&one)).with_flow_set(up_set),
        Mode::new("down", flow_with_current(&one.scale(-1.0))).with_flow_set(down_set),
    ];

    // Identity jumps at the mode boundaries (Remark 1 of the paper).
    let boundary_up = vec![&es - &c(track_halfwidth)];
    let boundary_up_eq = vec![&es - &c(track_halfwidth)];
    let boundary_down_eq = vec![&es + &c(track_halfwidth)];
    let jumps = vec![
        Jump::identity(0, 1)
            .with_guard(boundary_up.clone())
            .with_guard_eq(boundary_up_eq.clone()),
        Jump::identity(1, 0).with_guard_eq(boundary_up_eq),
        Jump::identity(0, 2).with_guard_eq(boundary_down_eq.clone()),
        Jump::identity(2, 0).with_guard_eq(boundary_down_eq),
    ];

    let names: Vec<&'static str> = match order {
        PllOrder::Third => vec!["v1", "v2", "e"],
        PllOrder::Fourth => vec!["v1", "v2", "v3", "e"],
    };
    (
        HybridSystem::with_params(nstates, modes, jumps, ctx.param_box()),
        names,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppll_hybrid::Simulator;

    #[test]
    fn third_order_structure() {
        let m = PllModelBuilder::new(PllOrder::Third).build();
        assert_eq!(m.nstates(), 3);
        assert_eq!(m.system().modes().len(), 3);
        assert_eq!(m.system().params().len(), 2, "pump+gain uncertainty");
        assert_eq!(m.phase_error_index(), 2);
        let nominal = m.system().params().nominal();
        assert!(m.system().is_equilibrium(&[0.0, 0.0, 0.0], &nominal, 1e-12));
        // The saturated modes have no equilibrium on their flow sets.
        let f_up = m
            .system()
            .eval_flow(m.up_mode(), &[0.0, 0.0, 1.5], &nominal);
        assert!(f_up[1].abs() > 0.1, "up mode pumps charge");
    }

    #[test]
    fn nominal_uncertainty_has_no_params() {
        let m = PllModelBuilder::new(PllOrder::Third)
            .with_uncertainty(UncertaintySelection::Nominal)
            .build();
        assert_eq!(m.system().params().len(), 0);
    }

    #[test]
    fn full_uncertainty_counts_params() {
        let m3 = PllModelBuilder::new(PllOrder::Third)
            .with_uncertainty(UncertaintySelection::Full)
            .build();
        assert_eq!(m3.system().params().len(), 4); // a1 a2 b kappa
        let m4 = PllModelBuilder::new(PllOrder::Fourth)
            .with_uncertainty(UncertaintySelection::Full)
            .build();
        assert_eq!(m4.system().params().len(), 6);
    }

    #[test]
    fn third_order_locks_from_perturbation() {
        let m = PllModelBuilder::new(PllOrder::Third).build();
        let sim = Simulator::new(m.system()).with_step(1e-2).with_thinning(10);
        // Start inside the tracking region, perturbed.
        let arc = sim.simulate(&[0.3, -0.2, 0.5], 0, 150.0);
        let xf = arc.final_state();
        let norm: f64 = xf.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm < 1e-2, "did not lock: final state {xf:?}");
    }

    #[test]
    fn third_order_locks_from_saturation_region() {
        let m = PllModelBuilder::new(PllOrder::Third).build();
        let sim = Simulator::new(m.system()).with_step(1e-2).with_thinning(10);
        let (arc, _) = sim.simulate_with_outcome(&[0.0, 0.0, 1.8], 1, 300.0);
        let xf = arc.final_state();
        let norm: f64 = xf.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm < 1e-2, "did not lock from saturation: {xf:?}");
        assert!(arc.jumps() >= 1, "must cross the mode boundary");
    }

    #[test]
    fn fourth_order_locks_from_perturbation() {
        let m = PllModelBuilder::new(PllOrder::Fourth).build();
        let sim = Simulator::new(m.system()).with_step(1e-2).with_thinning(10);
        let arc = sim.simulate(&[0.1, 0.1, -0.1, 0.3], 0, 2000.0);
        let xf = arc.final_state();
        let norm: f64 = xf.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm < 1e-2, "fourth order did not lock: {xf:?}");
    }

    #[test]
    fn dead_zone_variant_converges_to_lock_set() {
        let m = PllModelBuilder::new(PllOrder::Third)
            .with_abstraction(PfdAbstraction::DeadZone { width: 0.05 })
            .build();
        let sim = Simulator::new(m.system()).with_step(1e-2).with_thinning(10);
        let (arc, _) = sim.simulate_with_outcome(&[0.0, 0.0, 0.8], 1, 400.0);
        let xf = arc.final_state();
        // Voltages settle; phase error lands inside the dead zone.
        assert!(xf[0].abs() < 0.05 && xf[1].abs() < 0.05, "{xf:?}");
        assert!(xf[2].abs() <= 0.06, "phase error outside lock set: {xf:?}");
    }
}
