//! The full cyclic PFD automaton — simulation ground truth.
//!
//! Unlike the difference-coordinate verification models, this automaton
//! tracks the reference and VCO phases explicitly (normalized to `[0, 1]`,
//! i.e. the paper's "phases normalized by 2π") and switches the charge pump
//! on the phase *edges*:
//!
//! * reference edge (`p_ref` wraps): pump `OFF → UP`, `DOWN → OFF`;
//! * VCO edge (`p_vco` wraps): pump `OFF → DOWN`, `UP → OFF`.
//!
//! Cycle slips saturate (self-loops), matching the paper's "ignoring the
//! cycle slip phenomena". A locking transient crosses *hundreds* of these
//! discrete transitions — the reason reach-set verification is expensive and
//! the paper's certificate methodology pays off.

use cppll_hybrid::{HybridSystem, Jump, Mode, ParamBox};
use cppll_poly::Polynomial;

use crate::{PllOrder, ScaledCoefficients, TableOneParams};

/// A built cyclic PFD automaton with its metadata.
#[derive(Debug, Clone)]
pub struct CyclicPll {
    system: HybridSystem,
    order: PllOrder,
    nvolts: usize,
}

impl CyclicPll {
    /// The hybrid system: states `(w₁, …, w_k, p_ref, p_vco)` with the
    /// voltages shifted so the lock point is the origin.
    pub fn system(&self) -> &HybridSystem {
        &self.system
    }

    /// The loop order.
    pub fn order(&self) -> PllOrder {
        self.order
    }

    /// Number of voltage states (2 or 3).
    pub fn nvolts(&self) -> usize {
        self.nvolts
    }

    /// Index of the reference-phase state.
    pub fn p_ref_index(&self) -> usize {
        self.nvolts
    }

    /// Index of the VCO-phase state.
    pub fn p_vco_index(&self) -> usize {
        self.nvolts + 1
    }

    /// Pump-off mode index.
    pub fn off_mode(&self) -> usize {
        0
    }

    /// Within-cycle phase error `p_ref − p_vco` of a state vector.
    pub fn phase_error(&self, x: &[f64]) -> f64 {
        x[self.p_ref_index()] - x[self.p_vco_index()]
    }
}

/// Builds the cyclic PFD automaton at **nominal** parameters.
///
/// # Examples
///
/// ```
/// use cppll_pll::{cyclic_automaton, PllOrder, TableOneParams};
///
/// let pll = cyclic_automaton(PllOrder::Third, &TableOneParams::third_order());
/// assert_eq!(pll.system().modes().len(), 3); // off / up / down
/// assert_eq!(pll.system().nstates(), 4);     // w1, w2, p_ref, p_vco
/// ```
pub fn cyclic_automaton(order: PllOrder, params: &TableOneParams) -> CyclicPll {
    let coeffs = ScaledCoefficients::from_params(params);
    let nvolts = match order {
        PllOrder::Third => 2,
        PllOrder::Fourth => 3,
    };
    let n = nvolts + 2; // + p_ref, p_vco
    let var = |i: usize| Polynomial::var(n, i);
    let c = |v: f64| Polynomial::constant(n, v);
    let a1 = coeffs.a1.mid();
    let a2 = coeffs.a2.mid();
    let b = coeffs.b.mid();
    let kappa = coeffs.kappa.mid();
    let w1 = var(0);
    let w2 = var(1);
    let vctl = var(nvolts - 1); // voltage driving the VCO
    let p_ref = var(nvolts);
    let p_vco = var(nvolts + 1);

    let flow_with_current = |i_n: f64| -> Vec<Polynomial> {
        let mut f = Vec::with_capacity(n);
        match order {
            PllOrder::Third => {
                f.push((&w2 - &w1).scale(a1));
                f.push(&(&w1 - &w2).scale(a2) + &c(b * i_n));
            }
            PllOrder::Fourth => {
                let w3 = var(2);
                let a3 = coeffs.a3.expect("fourth order").mid();
                let a4 = coeffs.a4.expect("fourth order").mid();
                f.push((&w2 - &w1).scale(a1));
                f.push(&(&(&w1 - &w2).scale(a2) + &(&w3 - &w2).scale(a3)) + &c(b * i_n));
                f.push((&w2 - &w3).scale(a4));
            }
        }
        f.push(c(1.0)); // ṗ_ref = 1
        f.push(&c(1.0) + &vctl.scale(kappa)); // ṗ_vco = 1 + κ·v_ctl
        f
    };

    // All modes share the flow set {p_ref ≤ 1, p_vco ≤ 1}.
    let flow_set = || vec![&c(1.0) - &p_ref, &c(1.0) - &p_vco];
    let modes = vec![
        Mode::new("off", flow_with_current(0.0)).with_flow_set(flow_set()),
        Mode::new("up", flow_with_current(1.0)).with_flow_set(flow_set()),
        Mode::new("down", flow_with_current(-1.0)).with_flow_set(flow_set()),
    ];

    // Resets: wrap the crossing phase back by one period.
    let wrap = |which: usize| -> Vec<Polynomial> {
        (0..n)
            .map(|i| {
                if i == which {
                    &var(i) - &c(1.0)
                } else {
                    var(i)
                }
            })
            .collect()
    };
    let ref_edge_eq = vec![&p_ref - &c(1.0)];
    let vco_edge_eq = vec![&p_vco - &c(1.0)];
    let ref_jump = |from: usize, to: usize| {
        Jump::identity(from, to)
            .with_guard_eq(ref_edge_eq.clone())
            .with_reset(wrap(nvolts))
    };
    let vco_jump = |from: usize, to: usize| {
        Jump::identity(from, to)
            .with_guard_eq(vco_edge_eq.clone())
            .with_reset(wrap(nvolts + 1))
    };
    let jumps = vec![
        // reference edges
        ref_jump(0, 1), // OFF → UP
        ref_jump(2, 0), // DOWN → OFF
        ref_jump(1, 1), // UP self-loop (saturated)
        // vco edges
        vco_jump(0, 2), // OFF → DOWN
        vco_jump(1, 0), // UP → OFF
        vco_jump(2, 2), // DOWN self-loop (saturated)
    ];

    CyclicPll {
        system: HybridSystem::with_params(n, modes, jumps, ParamBox::empty()),
        order,
        nvolts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppll_hybrid::{SimOutcome, Simulator};

    #[test]
    fn cyclic_automaton_locks_with_many_transitions() {
        let pll = cyclic_automaton(PllOrder::Third, &TableOneParams::third_order());
        let sim = Simulator::new(pll.system())
            .with_step(2e-3)
            .with_thinning(50)
            .with_max_jumps(100_000);
        // Start with a frequency/phase offset: w2 = 0.4 (VCO fast).
        let x0 = vec![0.0, 0.4, 0.0, 0.3];
        let (arc, outcome) = sim.simulate_with_outcome(&x0, pll.off_mode(), 200.0);
        assert_eq!(outcome, SimOutcome::TimeHorizon, "jumps: {}", arc.jumps());
        // The PFD automaton must have cycled many times (paper: "hundreds of
        // discrete transitions").
        assert!(
            arc.jumps() > 100,
            "expected hundreds of edges, got {}",
            arc.jumps()
        );
        // Lock: control voltage settles at the lock value (w = 0).
        let xf = arc.final_state();
        assert!(xf[1].abs() < 0.05, "v2 did not settle: {xf:?}");
        assert!(
            pll.phase_error(xf).abs() < 0.1,
            "phase error too large: {}",
            pll.phase_error(xf)
        );
    }

    #[test]
    fn fourth_order_cyclic_locks() {
        let pll = cyclic_automaton(PllOrder::Fourth, &TableOneParams::fourth_order());
        let sim = Simulator::new(pll.system())
            .with_step(2e-3)
            .with_thinning(100)
            .with_max_jumps(1_000_000);
        let x0 = vec![0.0, 0.1, 0.1, 0.0, 0.2];
        let (arc, outcome) = sim.simulate_with_outcome(&x0, pll.off_mode(), 2000.0);
        assert_eq!(outcome, SimOutcome::TimeHorizon);
        let xf = arc.final_state();
        assert!(xf[2].abs() < 0.05, "v3 did not settle: {xf:?}");
    }

    #[test]
    fn agreement_with_difference_model() {
        // The cyclic automaton and the averaged difference model must agree
        // on the asymptotic lock point (origin voltages) from the same
        // initial voltage offset.
        use crate::PllModelBuilder;
        let cyc = cyclic_automaton(PllOrder::Third, &TableOneParams::third_order());
        let sim_c = Simulator::new(cyc.system())
            .with_step(2e-3)
            .with_thinning(100)
            .with_max_jumps(100_000);
        let arc_c = sim_c.simulate(&[0.0, 0.3, 0.0, 0.0], cyc.off_mode(), 200.0);

        let avg = PllModelBuilder::new(PllOrder::Third).build();
        let sim_a = Simulator::new(avg.system())
            .with_step(2e-3)
            .with_thinning(100);
        let arc_a = sim_a.simulate(&[0.0, 0.3, 0.0], avg.tracking_mode(), 200.0);

        let vc = arc_c.final_state()[1];
        let va = arc_a.final_state()[1];
        assert!(vc.abs() < 0.05 && va.abs() < 0.05, "both settle: {vc} {va}");
    }
}
