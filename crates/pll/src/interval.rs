//! Closed intervals with the small amount of interval arithmetic needed to
//! carry Table-1 parameter uncertainty into scaled model coefficients.

/// A closed interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "interval endpoints out of order");
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Midpoint.
    pub fn mid(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Width `hi − lo`.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// `true` when `v ∈ [lo, hi]`.
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` when the interval is a single point.
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// Interval product (both operands may straddle zero).
    // Not the `std::ops::Mul` trait: interval arithmetic here is by-value
    // with explicit call sites, and an operator impl would hide that.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Interval) -> Interval {
        let cands = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        Interval {
            lo: cands.iter().cloned().fold(f64::INFINITY, f64::min),
            hi: cands.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Interval reciprocal.
    ///
    /// # Panics
    ///
    /// Panics if the interval contains zero.
    pub fn recip(self) -> Interval {
        assert!(
            !(self.lo <= 0.0 && self.hi >= 0.0),
            "reciprocal of an interval containing zero"
        );
        Interval::new(1.0 / self.hi, 1.0 / self.lo)
    }

    /// Scalar multiple (sign-aware).
    pub fn scale(self, s: f64) -> Interval {
        if s >= 0.0 {
            Interval::new(self.lo * s, self.hi * s)
        } else {
            Interval::new(self.hi * s, self.lo * s)
        }
    }

    /// Interval quotient `self / rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` contains zero.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Interval) -> Interval {
        self.mul(rhs.recip())
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_point() {
            write!(f, "{:.6}", self.lo)
        } else {
            write!(f, "[{:.6}, {:.6}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Interval::new(2.0, 4.0);
        let b = Interval::new(-1.0, 1.0);
        assert_eq!(a.mid(), 3.0);
        assert_eq!(a.width(), 2.0);
        let p = a.mul(b);
        assert_eq!((p.lo, p.hi), (-4.0, 4.0));
        let r = a.recip();
        assert_eq!((r.lo, r.hi), (0.25, 0.5));
        let q = a.div(Interval::new(2.0, 2.0));
        assert_eq!((q.lo, q.hi), (1.0, 2.0));
        assert!(a.contains(3.0));
        assert!(!a.contains(5.0));
    }

    #[test]
    fn negative_scale_flips() {
        let a = Interval::new(1.0, 2.0);
        let s = a.scale(-2.0);
        assert_eq!((s.lo, s.hi), (-4.0, -2.0));
    }

    #[test]
    #[should_panic(expected = "containing zero")]
    fn recip_through_zero_panics() {
        Interval::new(-1.0, 1.0).recip();
    }
}
