//! Nondimensionalisation of the raw Table-1 parameters.
//!
//! SI-unit coefficients such as `1/(R C1) ≈ 6·10⁷ s⁻¹` would poison the SOS
//! programs, so the verification models use scaled coordinates:
//!
//! * **time** is measured in reference periods: `t' = t · f_ref`,
//! * **voltages** relative to the lock voltage: `v' = v / v_lock`,
//! * **phase error** normalized by `2π` (as in the paper's figures):
//!   `e = (φ_ref − φ_vco) / 2π`.
//!
//! In these coordinates the third-order flow becomes (with
//! `w = v' − 1` shifted so the lock point is the origin)
//!
//! ```text
//! ẇ₁ = a₁ (w₂ − w₁)              a₁ = 1 / (R C₁ f_ref)
//! ẇ₂ = a₂ (w₁ − w₂) + b·i_n      a₂ = 1 / (R C₂ f_ref),  b = Ip / (C₂ f_ref v_lock)
//! ė  = −κ w₂                     κ = K_v v_lock / (2π N f_ref)
//! ```
//!
//! where `i_n = i/Ip ∈ [−1, 1]` is the normalized charge-pump current. The
//! fourth order adds `a₃ = 1/(R₂ C₂ f_ref)`, `a₄ = 1/(R₂ C₃ f_ref)` and
//! drives the VCO from `w₃`. All coefficients land in `[10⁻², 10²]`.

use crate::{Interval, TableOneParams};

/// Scaled (dimensionless) model coefficients with interval uncertainty
/// propagated from Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledCoefficients {
    /// `a₁ = 1/(R C₁ f_ref)`.
    pub a1: Interval,
    /// `a₂ = 1/(R C₂ f_ref)`.
    pub a2: Interval,
    /// `a₃ = 1/(R₂ C₂ f_ref)` — fourth order only.
    pub a3: Option<Interval>,
    /// `a₄ = 1/(R₂ C₃ f_ref)` — fourth order only.
    pub a4: Option<Interval>,
    /// Charge-pump drive `b = Ip/(C₂ f_ref v_lock)`.
    pub b: Interval,
    /// Loop gain `κ = K_v v_lock/(2π N f_ref)`.
    pub kappa: Interval,
    /// Voltage scale used (volts) — needed to map certificates back.
    pub v_lock: f64,
    /// Time scale used (seconds per unit) — the reference period.
    pub t_scale: f64,
}

impl ScaledCoefficients {
    /// Derives scaled coefficients from raw parameters via interval
    /// arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are degenerate (zero-containing intervals in
    /// denominators).
    pub fn from_params(p: &TableOneParams) -> Self {
        let v_lock = p.lock_voltage();
        let fr = Interval::point(p.f_ref);
        let a1 = p.r.mul(p.c1).mul(fr).recip();
        let a2 = p.r.mul(p.c2).mul(fr).recip();
        let (a3, a4) = match (p.r2, p.c3) {
            (Some(r2), Some(c3)) => (
                Some(r2.mul(p.c2).mul(fr).recip()),
                Some(r2.mul(c3).mul(fr).recip()),
            ),
            _ => (None, None),
        };
        let b = p.ip.div(p.c2.mul(fr).scale(v_lock));
        let kappa = Interval::point(p.kv * v_lock / (2.0 * std::f64::consts::PI)).div(p.n.mul(fr));
        ScaledCoefficients {
            a1,
            a2,
            a3,
            a4,
            b,
            kappa,
            v_lock,
            t_scale: 1.0 / p.f_ref,
        }
    }

    /// `true` when the coefficients describe a fourth-order loop filter.
    pub fn is_fourth_order(&self) -> bool {
        self.a3.is_some() && self.a4.is_some()
    }

    /// Number of state variables of the difference-coordinate model.
    pub fn nstates(&self) -> usize {
        if self.is_fourth_order() {
            4
        } else {
            3
        }
    }

    /// Maximum absolute coefficient magnitude — a scaling sanity metric.
    pub fn max_magnitude(&self) -> f64 {
        let mut m = self.a1.hi.abs().max(self.a2.hi.abs());
        if let Some(a3) = self.a3 {
            m = m.max(a3.hi.abs());
        }
        if let Some(a4) = self.a4 {
            m = m.max(a4.hi.abs());
        }
        m.max(self.b.hi.abs()).max(self.kappa.hi.abs())
    }
}

impl std::fmt::Display for ScaledCoefficients {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a1={} a2={}", self.a1, self.a2)?;
        if let (Some(a3), Some(a4)) = (self.a3, self.a4) {
            write!(f, " a3={a3} a4={a4}")?;
        }
        write!(f, " b={} kappa={}", self.b, self.kappa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn third_order_coefficients_are_order_one() {
        let c = ScaledCoefficients::from_params(&TableOneParams::third_order());
        assert!(!c.is_fourth_order());
        assert_eq!(c.nstates(), 3);
        // a1 ≈ 1/(8e3 · 2.09e-12 · 27e6) ≈ 2.2
        assert!(c.a1.contains(2.2), "a1 = {}", c.a1);
        // a2 ≈ 1/(8e3 · 6.25e-12 · 27e6) ≈ 0.74
        assert!(c.a2.contains(0.74), "a2 = {}", c.a2);
        // b ≈ 5e-4 / (6.25e-12 · 27e6 · 1.0) ≈ 2.96
        assert!(c.b.contains(2.96), "b = {}", c.b);
        // κ = (Nf − f0)/(N f) = 0.5 nominal.
        assert!(c.kappa.contains(0.5), "kappa = {}", c.kappa);
        assert!(c.max_magnitude() < 100.0);
    }

    #[test]
    fn fourth_order_coefficients_are_bounded() {
        let c = ScaledCoefficients::from_params(&TableOneParams::fourth_order());
        assert!(c.is_fourth_order());
        assert_eq!(c.nstates(), 4);
        assert!(c.max_magnitude() < 100.0, "{c}");
        assert!(c.a3.unwrap().lo > 0.0);
        assert!(c.a4.unwrap().lo > 0.0);
    }

    #[test]
    fn uncertainty_propagates() {
        let c = ScaledCoefficients::from_params(&TableOneParams::third_order());
        assert!(c.a1.width() > 0.0);
        assert!(c.b.width() > 0.0);
        assert!(
            c.kappa.width() > 0.0,
            "N interval must make kappa uncertain"
        );
    }
}
