//! Minimal deterministic fork/join parallelism for the `cppll` kernels.
//!
//! The workspace builds offline, so no rayon/crossbeam: this crate is a
//! small hand-rolled layer over [`std::thread::scope`] that the SDP solver
//! and the dense kernels use for their hot loops.
//!
//! # Determinism contract
//!
//! Every entry point here is *bit-deterministic in the thread count*: the
//! result of a call with `threads = 1` and `threads = N` is identical down
//! to the last floating-point bit. That holds because work items are pure
//! functions of their index (no shared accumulator is ever updated from a
//! worker), and all reductions happen on the calling thread in a fixed
//! index order after the workers join. The SDP solver's attempt logs are
//! required to be byte-identical across `--threads` settings; this contract
//! is what makes that possible.
//!
//! # Thread-count resolution
//!
//! A process-wide default is kept in an atomic ([`set_threads`] /
//! [`current_threads`]), initialised from the machine's available
//! parallelism on first read. Call sites that need an explicit override
//! (tests comparing 1-thread and N-thread runs side by side) pass a
//! resolved count instead of touching the global.
//!
//! # Spawn-failure degradation
//!
//! Work is split into index-determined chunks and pulled from a shared
//! queue by up to `threads` executors: the calling thread plus scoped
//! workers. A failed worker spawn (the OS can transiently refuse with
//! `EAGAIN` under heavy nested fork/join churn) is never fatal — the
//! calling thread always participates, so execution degrades toward serial
//! instead of panicking. Which executor runs a chunk never affects the
//! result: chunk boundaries and output placement are functions of the
//! index alone.
//!
//! # Examples
//!
//! ```
//! // Square the numbers 0..8 on however many workers are configured.
//! let squares = cppll_par::parallel_map(8, 0, |i| (i * i) as u64);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default worker count; 0 means "not yet resolved".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count (the CLI's `--threads` flag).
///
/// A value of 0 resets to "auto" (the machine's available parallelism).
pub fn set_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// The process-wide default worker count: the last [`set_threads`] value,
/// or the machine's available parallelism when none has been set.
pub fn current_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Resolves a call-site thread request: 0 means "use the process default".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        current_threads()
    } else {
        requested
    }
}

/// Below this many items a fork/join is pure overhead; run serially.
const MIN_ITEMS_PER_FORK: usize = 2;

/// Runs `jobs` on up to `executors` threads: the caller plus at most
/// `executors - 1` scoped workers draining a shared queue. Each job is an
/// index-determined chunk, so which executor runs it cannot affect the
/// result. Worker spawns that the OS refuses are ignored — the caller
/// always drains the queue, so the call completes (serially in the worst
/// case) rather than panicking on a transient `EAGAIN`.
///
/// Panics from `run` propagate: the calling thread re-raises directly, and
/// [`std::thread::scope`] re-raises worker panics when the scope closes.
fn run_jobs<J, F>(jobs: Vec<J>, executors: usize, run: F)
where
    J: Send,
    F: Fn(J) + Sync,
{
    let queue = std::sync::Mutex::new(jobs);
    let drain = |queue: &std::sync::Mutex<Vec<J>>| loop {
        let job = {
            let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
            q.pop()
        };
        match job {
            Some(j) => run(j),
            None => break,
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..executors {
            let _ = std::thread::Builder::new().spawn_scoped(scope, || drain(&queue));
        }
        drain(&queue);
    });
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// `threads = 0` uses the process default ([`current_threads`]); `1` (or a
/// small `n`) runs serially on the calling thread. The items are split into
/// at most `threads` contiguous chunks, each computed by one scoped worker,
/// and concatenated in chunk order — so the output is bit-identical for
/// every thread count.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n < MIN_ITEMS_PER_FORK {
        return (0..n).map(f).collect();
    }
    // Contiguous ceil-split chunks; each job fills its own slice of the
    // output, so placement depends only on the index, never the executor.
    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut jobs: Vec<(usize, &mut [Option<T>])> = Vec::with_capacity(threads);
    {
        let mut rest = slots.as_mut_slice();
        let mut lo = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            jobs.push((lo, head));
            lo += take;
            rest = tail;
        }
    }
    let f = &f;
    run_jobs(jobs, threads, |(lo, out): (usize, &mut [Option<T>])| {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = Some(f(lo + k));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("cppll-par: chunk left an item uncomputed"))
        .collect()
}

/// Applies `f` to disjoint contiguous chunks of `items` in parallel, giving
/// each invocation the chunk's starting index. Mutations stay within each
/// worker's chunk, so this is race-free by construction and deterministic
/// whenever `f` is (no cross-chunk reduction exists to reorder).
pub fn parallel_chunks_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n < MIN_ITEMS_PER_FORK {
        f(0, items);
        return;
    }
    let chunk = n.div_ceil(threads);
    let mut jobs: Vec<(usize, &mut [T])> = Vec::with_capacity(threads);
    let mut rest = items;
    let mut offset = 0;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        jobs.push((offset, head));
        offset += take;
        rest = tail;
    }
    let f = &f;
    run_jobs(jobs, threads, |(lo, head): (usize, &mut [T])| f(lo, head));
}

/// Splits `items` into consecutive chunks of exactly `chunk_len` elements
/// (the final chunk may be short) and applies `f(chunk_index, chunk)` to
/// each in parallel. This is the "fill a preallocated workspace" analogue
/// of [`parallel_map`]: the caller owns one flat buffer partitioned into
/// fixed-size slots — per-constraint Schur scratch matrices, per-column
/// factor panels — and each worker writes only its own slots.
///
/// Chunk boundaries depend only on `chunk_len`, never on `threads`, so the
/// writes `f` performs are bit-identical for every thread count whenever
/// `f` itself is deterministic in `(chunk_index, chunk)`.
///
/// # Panics
///
/// Panics if `chunk_len == 0` while `items` is non-empty.
pub fn parallel_fill_chunks<T, F>(items: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if items.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let nchunks = items.len().div_ceil(chunk_len);
    let threads = resolve_threads(threads).min(nchunks);
    let f = &f;
    if threads <= 1 || nchunks < MIN_ITEMS_PER_FORK {
        for (idx, chunk) in items.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    // Each job is a contiguous run of whole chunks.
    let per_worker = nchunks.div_ceil(threads);
    let mut jobs: Vec<(usize, &mut [T])> = Vec::with_capacity(threads);
    let mut rest = items;
    let mut next_chunk = 0;
    while !rest.is_empty() {
        let take = (per_worker * chunk_len).min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        jobs.push((next_chunk, head));
        next_chunk += per_worker;
        rest = tail;
    }
    run_jobs(jobs, threads, |(first, head): (usize, &mut [T])| {
        for (k, chunk) in head.chunks_mut(chunk_len).enumerate() {
            f(first + k, chunk);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 3, 7] {
            let got = parallel_map(23, threads, |i| 3 * i + 1);
            let want: Vec<_> = (0..23).map(|i| 3 * i + 1).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_degenerate_sizes() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 4, |i| i), vec![0]);
        // More threads than items.
        assert_eq!(parallel_map(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn map_is_bit_deterministic_across_thread_counts() {
        // A float reduction per item whose value depends on summation order
        // *within* the item only — across items there is no shared state.
        let work = |i: usize| {
            let mut acc = 0.0f64;
            for k in 1..100 {
                acc += 1.0 / ((i * 100 + k) as f64);
            }
            acc
        };
        let serial = parallel_map(64, 1, work);
        for threads in [2, 3, 5, 8] {
            let par = parallel_map(64, threads, work);
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn chunks_mut_touches_every_item_once() {
        for threads in [1, 2, 5] {
            let mut items: Vec<usize> = vec![0; 17];
            parallel_chunks_mut(&mut items, threads, |lo, chunk| {
                for (k, it) in chunk.iter_mut().enumerate() {
                    *it += lo + k + 1;
                }
            });
            let want: Vec<usize> = (1..=17).collect();
            assert_eq!(items, want, "threads={threads}");
        }
    }

    #[test]
    fn fill_chunks_visits_every_chunk_once() {
        for threads in [1, 2, 3, 8] {
            // 3 full chunks of 4 plus a short tail of 2.
            let mut items = vec![0usize; 14];
            parallel_fill_chunks(&mut items, 4, threads, |idx, chunk| {
                for (k, it) in chunk.iter_mut().enumerate() {
                    *it = idx * 100 + k;
                }
            });
            let want: Vec<usize> = (0..14).map(|i| (i / 4) * 100 + i % 4).collect();
            assert_eq!(items, want, "threads={threads}");
        }
    }

    #[test]
    fn fill_chunks_handles_degenerate_sizes() {
        let mut empty: Vec<u8> = Vec::new();
        parallel_fill_chunks(&mut empty, 0, 4, |_, _| unreachable!());
        let mut one = vec![0u8; 3];
        parallel_fill_chunks(&mut one, 16, 4, |idx, chunk| {
            assert_eq!((idx, chunk.len()), (0, 3));
            chunk.fill(7);
        });
        assert_eq!(one, vec![7, 7, 7]);
    }

    #[test]
    fn thread_default_resolution() {
        assert!(current_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
