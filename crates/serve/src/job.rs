//! Job specs, job states, and the in-memory job registry.
//!
//! A *job* is one verification request: either a JSON system spec
//! (`"kind": "verify"`) or a built-in CP PLL benchmark (`"kind": "pll"`).
//! Every job is keyed by the same problem fingerprint the checkpoint
//! journals use, which is what makes the certificate cache and the circuit
//! breaker coherent with the on-disk run state.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use cppll_json::{ObjectBuilder, Value};
use cppll_pll::{PllModelBuilder, PllOrder};
use cppll_verify::spec::{spec_fingerprint, SystemSpec};
use cppll_verify::{InevitabilityVerifier, PipelineOptions};

/// What to verify.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// A JSON system spec.
    Verify {
        /// The parsed spec.
        spec: SystemSpec,
    },
    /// A built-in CP PLL benchmark.
    Pll {
        /// PLL order (3 or 4).
        order: u32,
        /// Certificate degree.
        degree: u32,
    },
}

/// One parsed job request.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// What to verify.
    pub kind: JobKind,
    /// Pipeline deadline in seconds (flows into the worker's supervisor).
    pub deadline_secs: Option<f64>,
    /// Per-solve timeout in seconds.
    pub solve_timeout_secs: Option<f64>,
    /// Per-solve retry budget.
    pub retries: Option<u64>,
    /// Worker restart budget for this job (overrides the server default;
    /// chiefly a chaos-testing knob).
    pub max_restarts: Option<u64>,
    /// Chaos: kill the worker after this many heartbeats (testing).
    pub chaos_kill_after: Option<u64>,
    /// Chaos: chop this many journal-tail bytes after each kill (testing).
    pub chaos_corrupt_tail: Option<u64>,
}

/// Why a job request could not be parsed.
#[derive(Debug, Clone)]
pub struct JobParseError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JobParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for JobParseError {}

fn bad(message: impl Into<String>) -> JobParseError {
    JobParseError {
        message: message.into(),
    }
}

fn opt_f64(v: &Value, key: &str) -> Result<Option<f64>, JobParseError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_f64()
            .filter(|f| f.is_finite() && *f >= 0.0)
            .map(Some)
            .ok_or_else(|| bad(format!("{key}: expected a nonnegative number"))),
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, JobParseError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("{key}: expected a nonnegative integer"))),
    }
}

impl JobRequest {
    /// Parses a job request from JSON text.
    ///
    /// # Errors
    ///
    /// [`JobParseError`] on malformed JSON or an invalid spec.
    pub fn from_json_str(text: &str) -> Result<JobRequest, JobParseError> {
        let v = cppll_json::parse(text).map_err(|e| bad(format!("json: {e}")))?;
        let kind = match v.get("kind").and_then(Value::as_str) {
            Some("verify") => {
                let spec_v = v.get("spec").ok_or_else(|| bad("missing field 'spec'"))?;
                let spec =
                    SystemSpec::from_json(spec_v).map_err(|e| bad(format!("spec: {e}")))?;
                JobKind::Verify { spec }
            }
            Some("pll") => {
                let order = v
                    .get("order")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad("pll: missing field 'order'"))?;
                if order != 3 && order != 4 {
                    return Err(bad("pll: order must be 3 or 4"));
                }
                let degree = v.get("degree").and_then(Value::as_u64).unwrap_or(4);
                JobKind::Pll {
                    order: order as u32,
                    degree: degree as u32,
                }
            }
            Some(other) => return Err(bad(format!("unknown kind '{other}'"))),
            None => return Err(bad("missing field 'kind' (\"verify\" or \"pll\")")),
        };
        Ok(JobRequest {
            kind,
            deadline_secs: opt_f64(&v, "deadline_secs")?,
            solve_timeout_secs: opt_f64(&v, "solve_timeout_secs")?,
            retries: opt_u64(&v, "retries")?,
            max_restarts: opt_u64(&v, "max_restarts")?,
            chaos_kill_after: opt_u64(&v, "chaos_kill_after")?,
            chaos_corrupt_tail: opt_u64(&v, "chaos_corrupt_tail")?,
        })
    }

    /// The problem fingerprint this job's checkpointed run will be keyed
    /// by — computed *before* any solving, so cache and breaker lookups
    /// are free.
    ///
    /// # Errors
    ///
    /// [`JobParseError`] when a verify spec is structurally invalid.
    pub fn fingerprint(&self) -> Result<u64, JobParseError> {
        match &self.kind {
            JobKind::Verify { spec } => {
                spec_fingerprint(spec).map_err(|e| bad(format!("spec: {e}")))
            }
            JobKind::Pll { order, degree } => {
                let order = match order {
                    3 => PllOrder::Third,
                    _ => PllOrder::Fourth,
                };
                let model = PllModelBuilder::new(order).build();
                let verifier = InevitabilityVerifier::for_pll(&model);
                Ok(verifier.problem_fingerprint(&PipelineOptions::degree(*degree)))
            }
        }
    }
}

/// Terminal/non-terminal state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is on it.
    Running,
    /// The worker reached a final verdict (exit 0 or 2).
    Completed {
        /// Whether the verdict certifies inevitability.
        verified: bool,
        /// Canonical result digest.
        digest: String,
        /// Restarts the supervisor performed for this job.
        restarts: u64,
        /// Whether this result came from the certificate cache.
        cached: bool,
    },
    /// The job ended without a verdict.
    Failed {
        /// What went wrong.
        reason: String,
        /// Bounded tail of the last worker's stderr.
        stderr_tail: Vec<String>,
    },
}

impl JobState {
    /// Whether the job is finished (completed or failed).
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Completed { .. } | JobState::Failed { .. })
    }

    /// Short state label for JSON and logs.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed { .. } => "completed",
            JobState::Failed { .. } => "failed",
        }
    }
}

/// One job's full record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (monotonic).
    pub id: u64,
    /// Problem fingerprint.
    pub fingerprint: u64,
    /// Run id (names the journal directory).
    pub run_id: String,
    /// Current state.
    pub state: JobState,
    /// When the job was accepted.
    pub accepted_at: Instant,
    /// Seconds from acceptance to the terminal state.
    pub elapsed_secs: Option<f64>,
}

impl JobRecord {
    /// JSON rendering for the status endpoints.
    pub fn to_json(&self) -> Value {
        let mut b = ObjectBuilder::new()
            .field("id", self.id)
            .field("job", format!("job-{}", self.id))
            .field("fingerprint", cppll_verify::checkpoint::fingerprint_hex(self.fingerprint))
            .field("run_id", &self.run_id)
            .field("state", self.state.name());
        if let Some(elapsed) = self.elapsed_secs {
            b = b.field("elapsed_secs", elapsed);
        }
        match &self.state {
            JobState::Completed {
                verified,
                digest,
                restarts,
                cached,
            } => b
                .field("verified", *verified)
                .field("digest", digest.as_str())
                .field("restarts", *restarts)
                .field("cached", *cached)
                .build(),
            JobState::Failed {
                reason,
                stderr_tail,
            } => b
                .field("reason", reason.as_str())
                .field("stderr_tail", stderr_tail)
                .build(),
            _ => b.build(),
        }
    }
}

/// Thread-safe registry of every job this daemon instance has accepted.
#[derive(Default)]
pub struct JobRegistry {
    jobs: Mutex<BTreeMap<u64, JobRecord>>,
}

impl JobRegistry {
    /// An empty registry.
    pub fn new() -> JobRegistry {
        JobRegistry::default()
    }

    /// Inserts a freshly accepted job.
    pub fn insert(&self, record: JobRecord) {
        self.jobs
            .lock()
            .expect("job registry")
            .insert(record.id, record);
    }

    /// Removes a job (used to roll back an insert the queue then refused).
    pub fn remove(&self, id: u64) {
        self.jobs.lock().expect("job registry").remove(&id);
    }

    /// A snapshot of one job.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.jobs.lock().expect("job registry").get(&id).cloned()
    }

    /// Marks a job running.
    pub fn mark_running(&self, id: u64) {
        if let Some(job) = self.jobs.lock().expect("job registry").get_mut(&id) {
            job.state = JobState::Running;
        }
    }

    /// Moves a job to a terminal state, stamping its elapsed time.
    pub fn finish(&self, id: u64, state: JobState) {
        if let Some(job) = self.jobs.lock().expect("job registry").get_mut(&id) {
            job.elapsed_secs = Some(job.accepted_at.elapsed().as_secs_f64());
            job.state = state;
        }
    }

    /// Snapshot of every job, in id order.
    pub fn all(&self) -> Vec<JobRecord> {
        self.jobs
            .lock()
            .expect("job registry")
            .values()
            .cloned()
            .collect()
    }

    /// Run ids of jobs that are not yet terminal — the set whose journals
    /// the garbage collector must never touch.
    pub fn protected_run_ids(&self) -> Vec<String> {
        self.jobs
            .lock()
            .expect("job registry")
            .values()
            .filter(|j| !j.state.is_terminal())
            .map(|j| j.run_id.clone())
            .collect()
    }

    /// Count of jobs not yet terminal.
    pub fn inflight(&self) -> usize {
        self.jobs
            .lock()
            .expect("job registry")
            .values()
            .filter(|j| !j.state.is_terminal())
            .count()
    }

    /// Count of jobs in a terminal state with the given name.
    pub fn count_state(&self, name: &str) -> usize {
        self.jobs
            .lock()
            .expect("job registry")
            .values()
            .filter(|j| j.state.name() == name)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec_json() -> &'static str {
        r#"{
          "states": 1,
          "modes": [{"name": "only", "flow": ["-1 x0"]}],
          "boundary": ["2 - 1 x0", "2 + 1 x0"],
          "initial_radii": [1.0]
        }"#
    }

    #[test]
    fn parses_a_verify_job_and_fingerprints_it_stably() {
        let body = format!(r#"{{"kind":"verify","spec":{},"retries":2}}"#, toy_spec_json());
        let job = JobRequest::from_json_str(&body).unwrap();
        assert!(matches!(job.kind, JobKind::Verify { .. }));
        assert_eq!(job.retries, Some(2));
        let fp1 = job.fingerprint().unwrap();
        let fp2 = JobRequest::from_json_str(&body).unwrap().fingerprint().unwrap();
        assert_eq!(fp1, fp2, "identical specs must share a fingerprint");
    }

    #[test]
    fn parses_a_pll_job() {
        let job = JobRequest::from_json_str(r#"{"kind":"pll","order":3,"degree":4}"#).unwrap();
        assert!(matches!(job.kind, JobKind::Pll { order: 3, degree: 4 }));
        job.fingerprint().unwrap();
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(JobRequest::from_json_str("not json").is_err());
        assert!(JobRequest::from_json_str(r#"{"kind":"nope"}"#).is_err());
        assert!(JobRequest::from_json_str(r#"{"kind":"pll","order":7}"#).is_err());
        assert!(JobRequest::from_json_str(r#"{"kind":"verify"}"#).is_err());
        let neg = format!(
            r#"{{"kind":"verify","spec":{},"deadline_secs":-1}}"#,
            toy_spec_json()
        );
        assert!(JobRequest::from_json_str(&neg).is_err());
    }

    #[test]
    fn registry_tracks_lifecycle_and_protected_runs() {
        let reg = JobRegistry::new();
        reg.insert(JobRecord {
            id: 1,
            fingerprint: 7,
            run_id: "job-1".into(),
            state: JobState::Queued,
            accepted_at: Instant::now(),
            elapsed_secs: None,
        });
        reg.insert(JobRecord {
            id: 2,
            fingerprint: 8,
            run_id: "job-2".into(),
            state: JobState::Queued,
            accepted_at: Instant::now(),
            elapsed_secs: None,
        });
        reg.mark_running(1);
        assert_eq!(reg.inflight(), 2);
        assert_eq!(
            reg.protected_run_ids(),
            vec!["job-1".to_string(), "job-2".to_string()]
        );
        reg.finish(
            1,
            JobState::Completed {
                verified: true,
                digest: "abc".into(),
                restarts: 0,
                cached: false,
            },
        );
        assert_eq!(reg.inflight(), 1);
        assert_eq!(reg.protected_run_ids(), vec!["job-2".to_string()]);
        let rec = reg.get(1).unwrap();
        assert!(rec.state.is_terminal());
        assert!(rec.elapsed_secs.is_some());
        let json = rec.to_json().to_compact_string();
        assert!(json.contains("\"state\":\"completed\""), "{json}");
        assert!(json.contains("\"digest\":\"abc\""), "{json}");
    }
}
