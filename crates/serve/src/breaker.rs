//! Per-fingerprint circuit breaker.
//!
//! A spec whose workers die repeatedly (poison job: deterministic crash,
//! pathological memory growth, …) must not be retried forever — each retry
//! burns a worker slot that healthy jobs need. After `threshold`
//! consecutive worker-exhaustion failures for the same problem
//! fingerprint, the breaker *quarantines* that fingerprint: new
//! submissions are refused up front (HTTP `409`) until a success for the
//! fingerprint (e.g. after an operator fix) resets it.

use std::collections::HashMap;
use std::sync::Mutex;

/// The breaker. Cheap to share behind an `Arc`.
pub struct CircuitBreaker {
    threshold: u32,
    /// fingerprint → consecutive worker-exhaustion failures.
    failures: Mutex<HashMap<u64, u32>>,
}

impl CircuitBreaker {
    /// Quarantine after `threshold` consecutive failures (minimum 1).
    pub fn new(threshold: u32) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            failures: Mutex::new(HashMap::new()),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Records a worker-exhaustion failure. Returns `true` when this
    /// failure tripped the breaker for the fingerprint.
    pub fn record_failure(&self, fp: u64) -> bool {
        let mut failures = self.failures.lock().expect("breaker state");
        let count = failures.entry(fp).or_insert(0);
        *count += 1;
        *count == self.threshold
    }

    /// Records a success, closing the circuit for the fingerprint.
    pub fn record_success(&self, fp: u64) {
        self.failures.lock().expect("breaker state").remove(&fp);
    }

    /// Whether the fingerprint is quarantined.
    pub fn is_quarantined(&self, fp: u64) -> bool {
        self.failures
            .lock()
            .expect("breaker state")
            .get(&fp)
            .is_some_and(|&c| c >= self.threshold)
    }

    /// Number of quarantined fingerprints.
    pub fn quarantined(&self) -> usize {
        self.failures
            .lock()
            .expect("breaker state")
            .values()
            .filter(|&&c| c >= self.threshold)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_at_the_threshold_and_resets_on_success() {
        let b = CircuitBreaker::new(2);
        assert!(!b.is_quarantined(1));
        assert!(!b.record_failure(1), "one failure is not a pattern");
        assert!(!b.is_quarantined(1));
        assert!(b.record_failure(1), "second failure trips");
        assert!(b.is_quarantined(1));
        assert!(!b.is_quarantined(2), "other fingerprints unaffected");
        assert_eq!(b.quarantined(), 1);
        b.record_success(1);
        assert!(!b.is_quarantined(1));
        assert_eq!(b.quarantined(), 0);
    }

    #[test]
    fn threshold_has_a_floor_of_one() {
        let b = CircuitBreaker::new(0);
        assert!(b.record_failure(5));
        assert!(b.is_quarantined(5));
    }
}
