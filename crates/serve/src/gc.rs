//! Retention garbage collection over a runs directory.
//!
//! A long-lived daemon accretes one journal directory per job plus one
//! cache entry per distinct fingerprint. GC applies a retention policy —
//! keep the newest N, drop anything older than a max age — while *never*
//! touching a run referenced by an in-flight job: a journal under GC is a
//! journal some worker may be about to resume from.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Retention policy. `None` fields do not constrain.
#[derive(Debug, Clone, Default)]
pub struct GcPolicy {
    /// Remove entries older than this.
    pub max_age: Option<Duration>,
    /// Keep at most this many newest entries (in-flight runs do not count
    /// against the budget — they are unconditionally kept).
    pub keep: Option<usize>,
}

impl GcPolicy {
    /// Whether the policy can ever remove anything.
    pub fn is_active(&self) -> bool {
        self.max_age.is_some() || self.keep.is_some()
    }
}

/// What one GC sweep did (or would do, when dry).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries examined.
    pub scanned: usize,
    /// Entries removed (or removable, when dry).
    pub removed: usize,
    /// Entries kept by policy.
    pub kept: usize,
    /// Entries kept because an in-flight job references them.
    pub protected: usize,
}

/// One GC candidate: a run directory or a cache entry file.
struct Candidate {
    path: PathBuf,
    name: String,
    mtime: SystemTime,
    is_dir: bool,
}

fn scan_candidates(dir: &Path, want_dirs: bool) -> std::io::Result<Vec<Candidate>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let meta = entry.metadata()?;
        if meta.is_dir() != want_dirs {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if want_dirs && name == "cache" {
            // The cache directory lives inside the runs directory but is
            // swept separately, file by file.
            continue;
        }
        out.push(Candidate {
            path: entry.path(),
            name,
            mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            is_dir: want_dirs,
        });
    }
    // Newest first, name as the tiebreak so the order is deterministic.
    out.sort_by(|a, b| b.mtime.cmp(&a.mtime).then(a.name.cmp(&b.name)));
    Ok(out)
}

fn sweep(
    candidates: Vec<Candidate>,
    policy: &GcPolicy,
    protected: &HashSet<String>,
    dry_run: bool,
    report: &mut GcReport,
) -> std::io::Result<()> {
    let now = SystemTime::now();
    let mut kept_by_budget = 0usize;
    for c in candidates {
        report.scanned += 1;
        if protected.contains(&c.name) {
            report.protected += 1;
            continue;
        }
        let over_budget = policy.keep.is_some_and(|k| kept_by_budget >= k);
        let too_old = policy.max_age.is_some_and(|max| {
            now.duration_since(c.mtime)
                .map(|age| age > max)
                .unwrap_or(false)
        });
        if over_budget || too_old {
            report.removed += 1;
            if !dry_run {
                if c.is_dir {
                    std::fs::remove_dir_all(&c.path)?;
                } else {
                    std::fs::remove_file(&c.path)?;
                }
            }
        } else {
            kept_by_budget += 1;
            report.kept += 1;
        }
    }
    Ok(())
}

/// Applies `policy` to every run directory under `runs_dir` and every
/// cache entry under `runs_dir/cache`. `protected` lists run ids (and, if
/// desired, cache file names) that must survive regardless of policy.
///
/// # Errors
///
/// Filesystem failures. A dry run only reads.
pub fn gc_runs(
    runs_dir: &Path,
    policy: &GcPolicy,
    protected: &HashSet<String>,
    dry_run: bool,
) -> std::io::Result<GcReport> {
    let mut report = GcReport::default();
    if !policy.is_active() {
        return Ok(report);
    }
    sweep(
        scan_candidates(runs_dir, true)?,
        policy,
        protected,
        dry_run,
        &mut report,
    )?;
    sweep(
        scan_candidates(&runs_dir.join("cache"), false)?,
        policy,
        protected,
        dry_run,
        &mut report,
    )?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cppll-serve-gc").join(test);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mk_run(dir: &Path, name: &str, age: Duration) {
        let run = dir.join(name);
        std::fs::create_dir_all(&run).unwrap();
        std::fs::write(run.join("journal.jsonl"), "header\n").unwrap();
        let mtime = SystemTime::now() - age;
        // set_modified is available on stable std since 1.75.
        let f = std::fs::File::open(&run).unwrap();
        f.set_modified(mtime).unwrap();
    }

    #[test]
    fn keep_budget_retains_newest_and_protected_runs() {
        let dir = scratch("budget");
        for (i, age) in [1u64, 100, 200, 300].iter().enumerate() {
            mk_run(&dir, &format!("job-{i}"), Duration::from_secs(*age));
        }
        let protected: HashSet<String> = ["job-3".to_string()].into_iter().collect();
        let policy = GcPolicy {
            keep: Some(2),
            max_age: None,
        };
        let report = gc_runs(&dir, &policy, &protected, false).unwrap();
        assert_eq!(report.scanned, 4);
        assert_eq!(report.protected, 1);
        assert_eq!(report.kept, 2);
        assert_eq!(report.removed, 1);
        assert!(dir.join("job-0").exists(), "newest kept");
        assert!(dir.join("job-1").exists(), "second newest kept");
        assert!(!dir.join("job-2").exists(), "over budget removed");
        assert!(dir.join("job-3").exists(), "in-flight run is untouchable");
    }

    #[test]
    fn age_policy_and_cache_sweep() {
        let dir = scratch("age");
        mk_run(&dir, "young", Duration::from_secs(1));
        mk_run(&dir, "old", Duration::from_secs(3600));
        let cache = dir.join("cache");
        std::fs::create_dir_all(&cache).unwrap();
        std::fs::write(cache.join("aaaa.json"), "{}").unwrap();
        let f = std::fs::File::open(cache.join("aaaa.json")).unwrap();
        f.set_modified(SystemTime::now() - Duration::from_secs(3600)).unwrap();
        std::fs::write(cache.join("bbbb.json"), "{}").unwrap();

        let policy = GcPolicy {
            max_age: Some(Duration::from_secs(60)),
            keep: None,
        };
        let report = gc_runs(&dir, &policy, &HashSet::new(), false).unwrap();
        assert_eq!(report.scanned, 4);
        assert_eq!(report.removed, 2);
        assert!(dir.join("young").exists());
        assert!(!dir.join("old").exists());
        assert!(!cache.join("aaaa.json").exists());
        assert!(cache.join("bbbb.json").exists());
    }

    #[test]
    fn dry_run_reports_without_removing() {
        let dir = scratch("dry");
        mk_run(&dir, "old", Duration::from_secs(3600));
        let policy = GcPolicy {
            max_age: Some(Duration::from_secs(60)),
            keep: None,
        };
        let report = gc_runs(&dir, &policy, &HashSet::new(), true).unwrap();
        assert_eq!(report.removed, 1);
        assert!(dir.join("old").exists(), "dry run must not delete");
    }

    #[test]
    fn inactive_policy_is_a_no_op() {
        let dir = scratch("noop");
        mk_run(&dir, "any", Duration::from_secs(3600));
        let report = gc_runs(&dir, &GcPolicy::default(), &HashSet::new(), false).unwrap();
        assert_eq!(report, GcReport::default());
        assert!(dir.join("any").exists());
    }
}
