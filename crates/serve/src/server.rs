//! The daemon: accept loop, routes, worker pool, and graceful drain.
//!
//! Availability model in one paragraph: the accept loop never blocks on a
//! job (handlers run on short-lived connection threads), admission is
//! bounded by the job queue (full → `429` + `Retry-After`, draining →
//! `503`), poison specs are refused up front by the circuit breaker
//! (`409`), repeat specs are answered from the certificate cache without
//! touching a worker, and SIGTERM/`POST /shutdown` stops admission while
//! queued and running jobs run to a terminal state before `join` returns.

use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cppll_json::ObjectBuilder;
use cppll_trace::{TraceLevel, Tracer};
use cppll_verify::checkpoint::{fingerprint_hex, CacheEntry, CertificateCache};
use cppll_verify::Durability;

use crate::breaker::CircuitBreaker;
use crate::gc::{gc_runs, GcPolicy};
use crate::http::{read_request, Response};
use crate::job::{JobRecord, JobRegistry, JobRequest, JobState};
use crate::pool::{run_job, JobContext, JobOutcome, JobRunner, WorkerSupervision};
use crate::queue::{BoundedQueue, Pop, PushError};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks a free one).
    pub addr: String,
    /// Worker threads.
    pub workers: usize,
    /// Job queue capacity (admission bound).
    pub queue_capacity: usize,
    /// Base directory for run journals and the certificate cache.
    pub runs_dir: PathBuf,
    /// Journal/cache durability.
    pub durability: Durability,
    /// Whether the certificate cache answers repeat specs.
    pub cache_enabled: bool,
    /// Consecutive worker-exhaustion failures before a fingerprint is
    /// quarantined.
    pub breaker_threshold: u32,
    /// `Retry-After` seconds suggested on `429`/`503`.
    pub retry_after_secs: u64,
    /// How jobs execute.
    pub runner: JobRunner,
    /// Worker supervision defaults.
    pub supervision: WorkerSupervision,
    /// Retention GC applied after every terminal job (inactive by default).
    pub gc: GcPolicy,
    /// Counter/gauge sink (also serves `/metrics`).
    pub tracer: Tracer,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            runs_dir: PathBuf::from("target/runs"),
            durability: Durability::Fast,
            cache_enabled: true,
            breaker_threshold: 3,
            retry_after_secs: 2,
            runner: JobRunner::InProcess,
            supervision: WorkerSupervision::default(),
            gc: GcPolicy::default(),
            tracer: Tracer::new(TraceLevel::Stage),
        }
    }
}

/// One queued unit of work.
struct QueuedJob {
    id: u64,
    fp: u64,
    req: JobRequest,
}

struct Inner {
    opt: ServeOptions,
    queue: BoundedQueue<QueuedJob>,
    registry: JobRegistry,
    breaker: CircuitBreaker,
    cache: CertificateCache,
    draining: AtomicBool,
    next_id: AtomicU64,
}

impl Inner {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    fn refresh_gauges(&self) {
        let t = &self.opt.tracer;
        t.gauge("queue_depth", self.queue.len() as f64);
        t.gauge("jobs_inflight", self.registry.inflight() as f64);
        t.gauge("quarantined_fingerprints", self.breaker.quarantined() as f64);
    }
}

/// A running daemon. Dropping the handle does not stop it; call
/// [`Server::shutdown`] then [`Server::join`].
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and the worker pool, and returns.
    ///
    /// # Errors
    ///
    /// Bind or runs-directory creation failures.
    pub fn start(opt: ServeOptions) -> std::io::Result<Server> {
        std::fs::create_dir_all(&opt.runs_dir)?;
        let listener = TcpListener::bind(&opt.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(opt.queue_capacity),
            registry: JobRegistry::new(),
            breaker: CircuitBreaker::new(opt.breaker_threshold),
            cache: CertificateCache::new(opt.runs_dir.join("cache"), opt.durability),
            draining: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            opt,
        });

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&listener, &inner))
        };
        let workers = (0..inner.opt.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();

        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The breaker (exposed for tests and operator tooling).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.inner.breaker
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.inner.draining()
    }

    /// Begins a graceful drain: stop accepting, let queued and running
    /// jobs finish. Idempotent.
    pub fn shutdown(&self) {
        self.inner.begin_drain();
    }

    /// Waits for the acceptor and every worker to exit. Call after
    /// [`Server::shutdown`] (or after `/shutdown` was posted).
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        if inner.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                // Short-lived connection thread: one request, one response.
                std::thread::spawn(move || handle_connection(stream, &inner));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let response = match read_request(&mut stream) {
        Err(_) => return, // transport failure: nothing to answer
        Ok(Err(e)) => Response::json(
            e.status(),
            ObjectBuilder::new()
                .field("error", format!("{e:?}"))
                .build()
                .to_compact_string(),
        ),
        Ok(Ok(req)) => route(inner, &req.method, &req.path, &req.body),
    };
    let _ = response.write_to(&mut stream);
}

fn json_error(status: u16, message: impl Into<String>) -> Response {
    Response::json(
        status,
        ObjectBuilder::new()
            .field("error", message.into())
            .build()
            .to_compact_string(),
    )
}

fn route(inner: &Arc<Inner>, method: &str, path: &str, body: &[u8]) -> Response {
    match (method, path) {
        ("POST", "/jobs") => submit(inner, body),
        ("GET", "/jobs") => {
            let jobs: Vec<_> = inner.registry.all().iter().map(JobRecord::to_json).collect();
            Response::json(
                200,
                ObjectBuilder::new()
                    .field("jobs", jobs)
                    .field("inflight", inner.registry.inflight() as u64)
                    .build()
                    .to_compact_string(),
            )
        }
        ("GET", p) if p.starts_with("/jobs/") => {
            let raw = &p["/jobs/".len()..];
            let id = raw.strip_prefix("job-").unwrap_or(raw).parse::<u64>().ok();
            match id.and_then(|id| inner.registry.get(id)) {
                Some(rec) => Response::json(200, rec.to_json().to_compact_string()),
                None => json_error(404, format!("no such job: {raw}")),
            }
        }
        ("GET", "/metrics") => {
            inner.refresh_gauges();
            Response::text(200, inner.opt.tracer.to_prometheus())
        }
        ("GET", "/healthz") => {
            let status = if inner.draining() { "draining" } else { "ok" };
            Response::json(
                200,
                ObjectBuilder::new()
                    .field("status", status)
                    .field("queue_depth", inner.queue.len() as u64)
                    .field("queue_capacity", inner.queue.capacity() as u64)
                    .field("inflight", inner.registry.inflight() as u64)
                    .field("workers", inner.opt.workers as u64)
                    .field("quarantined", inner.breaker.quarantined() as u64)
                    .build()
                    .to_compact_string(),
            )
        }
        ("POST", "/shutdown") => {
            inner.begin_drain();
            Response::json(200, r#"{"status":"draining"}"#)
        }
        ("GET" | "POST", _) => json_error(404, format!("no such endpoint: {path}")),
        _ => json_error(405, format!("method not allowed: {method}")),
    }
}

fn submit(inner: &Arc<Inner>, body: &[u8]) -> Response {
    let tracer = &inner.opt.tracer;
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            tracer.counter("jobs_rejected", 1);
            return json_error(400, "body is not UTF-8");
        }
    };
    let req = match JobRequest::from_json_str(text) {
        Ok(r) => r,
        Err(e) => {
            tracer.counter("jobs_rejected", 1);
            return json_error(400, e.to_string());
        }
    };
    let fp = match req.fingerprint() {
        Ok(fp) => fp,
        Err(e) => {
            tracer.counter("jobs_rejected", 1);
            return json_error(400, e.to_string());
        }
    };

    if inner.breaker.is_quarantined(fp) {
        tracer.counter("jobs_rejected", 1);
        return Response::json(
            409,
            ObjectBuilder::new()
                .field("error", "fingerprint quarantined by circuit breaker")
                .field("fingerprint", fingerprint_hex(fp))
                .build()
                .to_compact_string(),
        );
    }

    // Answer repeats from the certificate cache without touching a worker.
    if inner.opt.cache_enabled {
        if let Some(entry) = inner.cache.lookup(fp) {
            let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
            inner.registry.insert(JobRecord {
                id,
                fingerprint: fp,
                run_id: entry.run_id.clone(),
                state: JobState::Completed {
                    verified: entry.verified,
                    digest: entry.digest.clone(),
                    restarts: 0,
                    cached: true,
                },
                accepted_at: Instant::now(),
                elapsed_secs: Some(0.0),
            });
            tracer.counter("jobs_accepted", 1);
            tracer.counter("cache_hits", 1);
            let rec = inner.registry.get(id).expect("just inserted");
            return Response::json(200, rec.to_json().to_compact_string());
        }
    }

    if inner.draining() {
        tracer.counter("jobs_rejected", 1);
        return json_error(503, "draining")
            .with_header("Retry-After", inner.opt.retry_after_secs.to_string());
    }

    let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
    inner.registry.insert(JobRecord {
        id,
        fingerprint: fp,
        run_id: format!("job-{id}"),
        state: JobState::Queued,
        accepted_at: Instant::now(),
        elapsed_secs: None,
    });
    match inner.queue.try_push(QueuedJob { id, fp, req }) {
        Ok(depth) => {
            tracer.counter("jobs_accepted", 1);
            tracer.gauge("queue_depth", depth as f64);
            Response::json(
                202,
                ObjectBuilder::new()
                    .field("id", id)
                    .field("job", format!("job-{id}"))
                    .field("fingerprint", fingerprint_hex(fp))
                    .field("state", "queued")
                    .field("queue_depth", depth as u64)
                    .build()
                    .to_compact_string(),
            )
        }
        Err(PushError::Full) => {
            inner.registry.remove(id);
            tracer.counter("jobs_rejected", 1);
            json_error(429, "queue full")
                .with_header("Retry-After", inner.opt.retry_after_secs.to_string())
        }
        Err(PushError::Closed) => {
            inner.registry.remove(id);
            tracer.counter("jobs_rejected", 1);
            json_error(503, "draining")
                .with_header("Retry-After", inner.opt.retry_after_secs.to_string())
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        match inner.queue.pop(Duration::from_millis(200)) {
            Pop::Item(job) => process_job(inner, job),
            Pop::TimedOut => continue,
            Pop::Drained => return,
        }
    }
}

fn process_job(inner: &Arc<Inner>, job: QueuedJob) {
    let tracer = &inner.opt.tracer;
    inner.registry.mark_running(job.id);
    inner.refresh_gauges();

    // Second-chance cache lookup: an identical job may have completed
    // while this one sat in the queue.
    if inner.opt.cache_enabled {
        if let Some(entry) = inner.cache.lookup(job.fp) {
            inner.registry.finish(
                job.id,
                JobState::Completed {
                    verified: entry.verified,
                    digest: entry.digest,
                    restarts: 0,
                    cached: true,
                },
            );
            tracer.counter("cache_hits", 1);
            tracer.counter("jobs_completed", 1);
            after_terminal(inner);
            return;
        }
    }

    let run_id = format!("job-{}", job.id);
    let ctx = JobContext {
        runner: &inner.opt.runner,
        supervision: &inner.opt.supervision,
        runs_dir: &inner.opt.runs_dir,
        durability: inner.opt.durability,
        run_id: &run_id,
        tracer: Some(tracer),
    };
    let started = Instant::now();
    match run_job(&ctx, &job.req) {
        JobOutcome::Final {
            verified,
            digest,
            verdict,
            restarts,
        } => {
            inner.breaker.record_success(job.fp);
            if inner.opt.cache_enabled {
                let entry = CacheEntry {
                    fingerprint: fingerprint_hex(job.fp),
                    digest: digest.clone(),
                    verified,
                    verdict,
                    run_id: run_id.clone(),
                    elapsed_secs: started.elapsed().as_secs_f64(),
                };
                if inner.cache.publish(job.fp, &entry, None).is_err() {
                    // The cache is advisory; a failed publish only costs a
                    // future recompute.
                    tracer.counter("cache_publish_errors", 1);
                }
            }
            inner.registry.finish(
                job.id,
                JobState::Completed {
                    verified,
                    digest,
                    restarts,
                    cached: false,
                },
            );
            tracer.counter("jobs_completed", 1);
        }
        JobOutcome::Exhausted {
            attempts,
            stderr_tail,
        } => {
            if inner.breaker.record_failure(job.fp) {
                tracer.counter("jobs_quarantined", 1);
            }
            inner.registry.finish(
                job.id,
                JobState::Failed {
                    reason: format!("worker restart budget exhausted after {attempts} attempts"),
                    stderr_tail,
                },
            );
            tracer.counter("jobs_failed", 1);
        }
        JobOutcome::Error {
            reason,
            stderr_tail,
        } => {
            inner.registry.finish(
                job.id,
                JobState::Failed {
                    reason,
                    stderr_tail,
                },
            );
            tracer.counter("jobs_failed", 1);
        }
    }
    after_terminal(inner);
}

/// Housekeeping after any job reaches a terminal state: refresh gauges and
/// apply retention GC with in-flight runs protected.
fn after_terminal(inner: &Arc<Inner>) {
    inner.refresh_gauges();
    if inner.opt.gc.is_active() {
        let protected: HashSet<String> =
            inner.registry.protected_run_ids().into_iter().collect();
        let _ = gc_runs(&inner.opt.runs_dir, &inner.opt.gc, &protected, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client_request;

    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cppll-serve-server").join(test);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn toy_job_body() -> &'static str {
        r#"{"kind":"verify","spec":{
          "states": 1,
          "modes": [{"name": "only", "flow": ["-1 x0"]}],
          "boundary": ["2 - 1 x0", "2 + 1 x0"],
          "initial_radii": [1.0]
        }}"#
    }

    fn wait_terminal(addr: &str, id: u64) -> String {
        for _ in 0..600 {
            let (status, body) = client_request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
            assert_eq!(status, 200, "{body}");
            if body.contains("\"state\":\"completed\"") || body.contains("\"state\":\"failed\"") {
                return body;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("job {id} never reached a terminal state");
    }

    fn extract_id(body: &str) -> u64 {
        let idx = body.find("\"id\":").expect("id field") + 5;
        body[idx..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    }

    #[test]
    fn submit_complete_cache_hit_and_drain() {
        let dir = scratch("lifecycle");
        let server = Server::start(ServeOptions {
            runs_dir: dir.clone(),
            workers: 1,
            ..ServeOptions::default()
        })
        .unwrap();
        let addr = server.addr().to_string();

        // Health first.
        let (status, health) = client_request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(health.contains("\"status\":\"ok\""), "{health}");

        // Submit and wait.
        let (status, body) =
            client_request(&addr, "POST", "/jobs", Some(toy_job_body())).unwrap();
        assert_eq!(status, 202, "{body}");
        let id = extract_id(&body);
        let done = wait_terminal(&addr, id);
        assert!(done.contains("\"state\":\"completed\""), "{done}");
        assert!(done.contains("\"verified\":true"), "{done}");
        assert!(done.contains("\"cached\":false"), "{done}");

        // The identical spec is now a synchronous cache hit (200, not 202).
        let (status, hit) = client_request(&addr, "POST", "/jobs", Some(toy_job_body())).unwrap();
        assert_eq!(status, 200, "{hit}");
        assert!(hit.contains("\"cached\":true"), "{hit}");
        let digest = |b: &str| {
            let i = b.find("\"digest\":\"").unwrap() + 10;
            b[i..i + 16].to_string()
        };
        assert_eq!(digest(&done), digest(&hit), "cache must preserve the digest");

        // Metrics reflect both paths.
        let (_, metrics) = client_request(&addr, "GET", "/metrics", None).unwrap();
        assert!(metrics.contains("cppll_jobs_accepted_total 2"), "{metrics}");
        assert!(metrics.contains("cppll_cache_hits_total 1"), "{metrics}");
        assert!(metrics.contains("cppll_queue_depth"), "{metrics}");

        // Drain: no new work, clean exit.
        let (status, _) = client_request(&addr, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        // The acceptor may already be gone; a refused connection counts as
        // drained too.
        let status = client_request(&addr, "POST", "/jobs", Some(toy_job_body()))
            .map(|(s, _)| s)
            .unwrap_or(503);
        assert_eq!(status, 503);
        server.join();
    }

    #[test]
    fn full_queue_rejects_with_retry_after_and_loses_nothing() {
        let dir = scratch("backpressure");
        // No workers: the queue fills and stays full.
        let server = Server::start(ServeOptions {
            runs_dir: dir,
            workers: 0,
            queue_capacity: 2,
            cache_enabled: false,
            ..ServeOptions::default()
        })
        .unwrap();
        let addr = server.addr().to_string();

        let mut accepted = 0;
        let mut rejected = 0;
        for _ in 0..5 {
            let (status, _) = client_request(&addr, "POST", "/jobs", Some(toy_job_body())).unwrap();
            match status {
                202 => accepted += 1,
                429 => rejected += 1,
                other => panic!("unexpected status {other}"),
            }
        }
        assert_eq!(accepted, 2, "exactly the queue capacity is admitted");
        assert_eq!(rejected, 3);

        // Every accepted job is visible; none were lost.
        let (_, jobs) = client_request(&addr, "GET", "/jobs", None).unwrap();
        assert!(jobs.contains("\"inflight\":2"), "{jobs}");

        let (_, metrics) = client_request(&addr, "GET", "/metrics", None).unwrap();
        assert!(metrics.contains("cppll_jobs_accepted_total 2"), "{metrics}");
        assert!(metrics.contains("cppll_jobs_rejected_total 3"), "{metrics}");

        server.shutdown();
        server.join();
    }

    #[test]
    fn quarantined_fingerprints_are_refused_up_front() {
        let dir = scratch("quarantine");
        let server = Server::start(ServeOptions {
            runs_dir: dir,
            workers: 0,
            breaker_threshold: 1,
            cache_enabled: false,
            ..ServeOptions::default()
        })
        .unwrap();
        let addr = server.addr().to_string();

        let fp = JobRequest::from_json_str(toy_job_body())
            .unwrap()
            .fingerprint()
            .unwrap();
        server.breaker().record_failure(fp);
        let (status, body) = client_request(&addr, "POST", "/jobs", Some(toy_job_body())).unwrap();
        assert_eq!(status, 409, "{body}");
        assert!(body.contains("quarantined"), "{body}");

        server.shutdown();
        server.join();
    }

    #[test]
    fn unknown_paths_and_bad_bodies_get_clean_errors() {
        let dir = scratch("errors");
        let server = Server::start(ServeOptions {
            runs_dir: dir,
            workers: 0,
            ..ServeOptions::default()
        })
        .unwrap();
        let addr = server.addr().to_string();

        let (status, _) = client_request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = client_request(&addr, "POST", "/jobs", Some("not json")).unwrap();
        assert_eq!(status, 400);
        let (status, _) = client_request(&addr, "GET", "/jobs/999", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = client_request(&addr, "DELETE", "/jobs", None).unwrap();
        assert_eq!(status, 405);

        server.shutdown();
        server.join();
    }
}
