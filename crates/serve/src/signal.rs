//! SIGTERM/SIGINT → a drain flag, with no libc crate.
//!
//! The daemon's graceful-drain contract starts here: delivery of SIGTERM
//! or SIGINT flips one process-global `AtomicBool` that the accept loop
//! polls. Storing to an atomic is async-signal-safe; everything else
//! (closing the queue, draining workers) happens on normal threads. The
//! `signal` symbol comes from the C runtime std already links, so no
//! external crate is needed.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once a shutdown signal has been delivered.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handler (idempotent). On non-unix targets
/// this is a no-op and [`shutdown_requested`] only ever flips via
/// [`request_shutdown`].
pub fn install_shutdown_handler() {
    imp::install();
}

/// Whether a shutdown has been requested (by signal or in-process).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests a shutdown from inside the process (the `/shutdown` endpoint
/// and tests use this path).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag — for tests that exercise several server lifecycles in
/// one process.
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}
