//! Executing one job on a worker, and the knobs for how.
//!
//! The default runner launches the `cppll` binary itself as a supervised,
//! process-isolated worker (via `cppll-harness`): a crashing or hanging
//! solve can never take the daemon down, and a killed worker resumes from
//! its run journal bit-identically. An in-process runner exists for unit
//! tests and throughput benchmarks, where process spawning is noise.

use std::path::PathBuf;
use std::time::Duration;

use cppll_harness::{run_supervised, ChaosPlan, HarnessError, HarnessOptions, WorkerSpec};
use cppll_json::ToJson;
use cppll_trace::Tracer;
use cppll_verify::spec::run_inevitability_checkpointed;
use cppll_verify::{CheckpointConfig, Durability, ResilienceConfig};

use crate::job::{JobKind, JobRequest};

/// How jobs are executed.
#[derive(Debug, Clone)]
pub enum JobRunner {
    /// Supervised worker processes running `program` (normally the `cppll`
    /// binary itself).
    Process {
        /// Worker executable.
        program: PathBuf,
    },
    /// Run the pipeline on the worker thread itself. No isolation, no
    /// crash-resume — for tests and benchmarks only.
    InProcess,
}

/// Supervision defaults applied to every worker (a job may override its
/// restart budget).
#[derive(Debug, Clone)]
pub struct WorkerSupervision {
    /// Liveness watchdog window.
    pub watchdog: Duration,
    /// Journal-mtime stall window.
    pub stall_timeout: Option<Duration>,
    /// Worker heartbeat interval (ms).
    pub heartbeat_ms: u64,
    /// RSS ceiling (MiB).
    pub max_rss_mb: Option<u64>,
    /// Restart budget per job.
    pub max_restarts: usize,
}

impl Default for WorkerSupervision {
    fn default() -> Self {
        WorkerSupervision {
            watchdog: Duration::from_secs(30),
            stall_timeout: None,
            heartbeat_ms: 500,
            max_rss_mb: None,
            max_restarts: 3,
        }
    }
}

/// How a job execution ended.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The worker reached a final verdict (exit 0 or 2).
    Final {
        /// Whether the claim was verified.
        verified: bool,
        /// Canonical result digest.
        digest: String,
        /// Short verdict text.
        verdict: String,
        /// Supervisor restarts spent on this job.
        restarts: u64,
    },
    /// The restart budget ran out — the spec's workers keep dying, which
    /// is what feeds the circuit breaker.
    Exhausted {
        /// Attempts performed.
        attempts: usize,
        /// Stderr tail of the last attempt.
        stderr_tail: Vec<String>,
    },
    /// The job could not be executed at all (spawn failure, invalid spec,
    /// worker usage error).
    Error {
        /// What went wrong.
        reason: String,
        /// Stderr tail, when a worker got far enough to produce one.
        stderr_tail: Vec<String>,
    },
}

/// Everything `run_job` needs besides the request itself.
pub struct JobContext<'a> {
    /// The runner.
    pub runner: &'a JobRunner,
    /// Supervision defaults.
    pub supervision: &'a WorkerSupervision,
    /// Base directory for run journals.
    pub runs_dir: &'a std::path::Path,
    /// Journal durability for workers.
    pub durability: Durability,
    /// Run id (also names the journal directory).
    pub run_id: &'a str,
    /// Counter sink.
    pub tracer: Option<&'a Tracer>,
}

/// Extracts the `result digest: <hex>` line from worker output.
fn output_digest(lines: &[String]) -> Option<String> {
    lines
        .iter()
        .find_map(|l| l.strip_prefix("result digest: "))
        .map(str::to_string)
}

/// Extracts the `verdict: …` line from worker output.
fn output_verdict(lines: &[String]) -> String {
    lines
        .iter()
        .find_map(|l| l.strip_prefix("verdict: "))
        .unwrap_or("unknown")
        .to_string()
}

fn push_resilience_flags(args: &mut Vec<String>, req: &JobRequest) {
    if let Some(secs) = req.deadline_secs {
        args.push("--deadline".into());
        args.push(format!("{secs}"));
    }
    if let Some(secs) = req.solve_timeout_secs {
        args.push("--solve-timeout".into());
        args.push(format!("{secs}"));
    }
    if let Some(n) = req.retries {
        args.push("--retries".into());
        args.push(n.to_string());
    }
}

fn run_process_job(
    program: &std::path::Path,
    ctx: &JobContext<'_>,
    req: &JobRequest,
) -> JobOutcome {
    let run_dir = ctx.runs_dir.join(ctx.run_id);
    if let Err(e) = std::fs::create_dir_all(&run_dir) {
        return JobOutcome::Error {
            reason: format!("cannot create run dir {}: {e}", run_dir.display()),
            stderr_tail: Vec::new(),
        };
    }

    // Subcommand + positionals.
    let mut base: Vec<String> = match &req.kind {
        JobKind::Verify { spec } => {
            let spec_path = run_dir.join("spec.json");
            let text = spec.to_json().to_pretty_string();
            if let Err(e) = std::fs::write(&spec_path, text) {
                return JobOutcome::Error {
                    reason: format!("cannot write {}: {e}", spec_path.display()),
                    stderr_tail: Vec::new(),
                };
            }
            vec!["verify".into(), spec_path.to_string_lossy().into_owned()]
        }
        JobKind::Pll { order, degree } => {
            vec!["pll".into(), order.to_string(), degree.to_string()]
        }
    };
    base.push("--runs-dir".into());
    base.push(ctx.runs_dir.to_string_lossy().into_owned());
    base.push("--durability".into());
    base.push(ctx.durability.name().into());
    base.push("--worker-heartbeat".into());
    base.push(ctx.supervision.heartbeat_ms.max(1).to_string());
    push_resilience_flags(&mut base, req);

    let mut initial_args = base.clone();
    initial_args.push("--run-id".into());
    initial_args.push(ctx.run_id.into());
    let mut resume_args = base;
    resume_args.push("--resume".into());
    resume_args.push(ctx.run_id.into());

    let journal = run_dir.join("journal.jsonl");
    let spec = WorkerSpec {
        program: program.to_path_buf(),
        initial_args,
        resume_args,
        envs: Vec::new(),
    };
    let opt = HarnessOptions {
        watchdog: ctx.supervision.watchdog,
        stall_timeout: ctx.supervision.stall_timeout,
        progress_file: Some(journal.clone()),
        max_rss_kb: ctx.supervision.max_rss_mb.map(|mb| mb.saturating_mul(1024)),
        max_restarts: req
            .max_restarts
            .map(|n| n as usize)
            .unwrap_or(ctx.supervision.max_restarts),
        chaos: req.chaos_kill_after.map(|n| ChaosPlan {
            kill_after_heartbeats: n,
            growth: 2,
            corrupt_tail: req.chaos_corrupt_tail.map(|bytes| (journal.clone(), bytes)),
        }),
        tracer: ctx.tracer.cloned(),
        forward_output: false,
    };

    match run_supervised(&spec, &opt) {
        Ok(report) => {
            if let Some(t) = ctx.tracer {
                if report.restarts > 0 {
                    t.counter("worker_restarts", report.restarts as u64);
                    t.counter("jobs_resumed", 1);
                }
            }
            match report.exit_code {
                0 | 2 => match output_digest(&report.output) {
                    Some(digest) => JobOutcome::Final {
                        verified: report.exit_code == 0,
                        digest,
                        verdict: output_verdict(&report.output),
                        restarts: report.restarts as u64,
                    },
                    None => JobOutcome::Error {
                        reason: format!(
                            "worker exited {} without a result digest",
                            report.exit_code
                        ),
                        stderr_tail: report.stderr_tail,
                    },
                },
                code => JobOutcome::Error {
                    reason: format!("worker usage error (exit {code})"),
                    stderr_tail: report.stderr_tail,
                },
            }
        }
        Err(HarnessError::GaveUp {
            attempts,
            stderr_tail,
            ..
        }) => JobOutcome::Exhausted {
            attempts,
            stderr_tail,
        },
        Err(e @ HarnessError::Spawn { .. }) => JobOutcome::Error {
            reason: e.to_string(),
            stderr_tail: Vec::new(),
        },
    }
}

fn run_inprocess_job(ctx: &JobContext<'_>, req: &JobRequest) -> JobOutcome {
    let defaults = ResilienceConfig::default();
    let resilience = ResilienceConfig {
        deadline: req.deadline_secs.map(Duration::from_secs_f64),
        solve_timeout: req.solve_timeout_secs.map(Duration::from_secs_f64),
        retries: req.retries.map_or(defaults.retries, |n| n as usize),
        ..defaults
    };
    let checkpoint = Some(
        CheckpointConfig::new(ctx.run_id.to_string())
            .with_dir(ctx.runs_dir.to_string_lossy().into_owned())
            .with_durability(ctx.durability),
    );
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &req.kind {
        JobKind::Verify { spec } => run_inevitability_checkpointed(spec, resilience, checkpoint),
        JobKind::Pll { order, degree } => {
            let order = match order {
                3 => cppll_pll::PllOrder::Third,
                _ => cppll_pll::PllOrder::Fourth,
            };
            let model = cppll_pll::PllModelBuilder::new(order).build();
            let verifier = cppll_verify::InevitabilityVerifier::for_pll(&model);
            let mut opt = cppll_verify::PipelineOptions::degree(*degree);
            opt.resilience = resilience;
            opt.checkpoint = checkpoint;
            verifier
                .verify(&opt)
                .map_err(cppll_verify::SpecError::Verify)
        }
    }));
    match outcome {
        Ok(Ok(report)) => JobOutcome::Final {
            verified: report.verdict.is_verified(),
            digest: report.result_digest(),
            verdict: format!("{:?}", report.verdict),
            restarts: 0,
        },
        Ok(Err(e)) => JobOutcome::Error {
            reason: e.to_string(),
            stderr_tail: Vec::new(),
        },
        Err(_) => JobOutcome::Error {
            reason: "worker panicked".into(),
            stderr_tail: Vec::new(),
        },
    }
}

/// Executes one job to an outcome. Blocking: call from a worker thread.
pub fn run_job(ctx: &JobContext<'_>, req: &JobRequest) -> JobOutcome {
    match ctx.runner {
        JobRunner::Process { program } => run_process_job(program, ctx, req),
        JobRunner::InProcess => run_inprocess_job(ctx, req),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_and_verdict_extraction() {
        let lines = vec![
            "verdict: Inevitable { advection_sufficed: true }".to_string(),
            "result digest: c31e1167d4a9bf69".to_string(),
        ];
        assert_eq!(output_digest(&lines).unwrap(), "c31e1167d4a9bf69");
        assert!(output_verdict(&lines).starts_with("Inevitable"));
        assert_eq!(output_digest(&[]), None);
        assert_eq!(output_verdict(&[]), "unknown");
    }

    #[test]
    fn inprocess_runner_completes_a_toy_job() {
        let dir = std::env::temp_dir().join("cppll-serve-pool/inproc");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let req = JobRequest::from_json_str(
            r#"{"kind":"verify","spec":{
              "states": 1,
              "modes": [{"name": "only", "flow": ["-1 x0"]}],
              "boundary": ["2 - 1 x0", "2 + 1 x0"],
              "initial_radii": [1.0]
            }}"#,
        )
        .unwrap();
        let ctx = JobContext {
            runner: &JobRunner::InProcess,
            supervision: &WorkerSupervision::default(),
            runs_dir: &dir,
            durability: Durability::Fast,
            run_id: "job-1",
            tracer: None,
        };
        match run_job(&ctx, &req) {
            JobOutcome::Final {
                verified, digest, ..
            } => {
                assert!(verified);
                assert_eq!(digest.len(), 16);
            }
            other => panic!("expected Final, got {other:?}"),
        }
        assert!(
            dir.join("job-1/journal.jsonl").exists(),
            "in-process jobs still journal"
        );
    }
}
