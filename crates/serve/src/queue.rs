//! A bounded MPMC job queue with *rejecting* backpressure.
//!
//! The availability contract of the daemon hinges on this type: when the
//! queue is full, `try_push` fails immediately (the HTTP layer answers
//! `429` + `Retry-After`) instead of blocking the acceptor or growing
//! without bound. Memory use is therefore `O(capacity)` no matter how hard
//! clients hammer the endpoint.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// At capacity: the caller should shed load (HTTP `429`).
    Full,
    /// Draining: no new work is admitted (HTTP `503`).
    Closed,
}

/// What a pop produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pop<T> {
    /// A queued item.
    Item(T),
    /// Nothing arrived within the timeout; poll again.
    TimedOut,
    /// Queue closed *and* empty: the worker should exit.
    Drained,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. `push` never blocks; `pop` blocks up to a timeout.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue state").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking. On success returns the new depth.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut st = self.state.lock().expect("queue state");
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.available.notify_one();
        Ok(depth)
    }

    /// Dequeues, waiting up to `timeout` for an item. Closing wakes all
    /// waiters; queued items are still handed out after close so a drain
    /// finishes accepted work.
    pub fn pop(&self, timeout: Duration) -> Pop<T> {
        let mut st = self.state.lock().expect("queue state");
        loop {
            if let Some(item) = st.items.pop_front() {
                return Pop::Item(item);
            }
            if st.closed {
                return Pop::Drained;
            }
            let (next, res) = self
                .available
                .wait_timeout(st, timeout)
                .expect("queue state");
            st = next;
            if res.timed_out() {
                return match st.items.pop_front() {
                    Some(item) => Pop::Item(item),
                    None if st.closed => Pop::Drained,
                    None => Pop::TimedOut,
                };
            }
        }
    }

    /// Stops admission (pushes fail with [`PushError::Closed`]); already
    /// queued items remain poppable.
    pub fn close(&self) {
        self.state.lock().expect("queue state").closed = true;
        self.available.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue state").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_above_capacity_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert_eq!(q.pop(Duration::from_millis(10)), Pop::Item(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn pop_times_out_when_idle() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.pop(Duration::from_millis(10)), Pop::TimedOut);
    }

    #[test]
    fn close_rejects_new_work_but_drains_queued_items() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(Duration::from_millis(10)), Pop::Item(1));
        assert_eq!(q.pop(Duration::from_millis(10)), Pop::Item(2));
        assert_eq!(q.pop(Duration::from_millis(10)), Pop::Drained);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(waiter.join().unwrap(), Pop::Drained);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(8));
        let total: u64 = 200;
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || loop {
                    match q.pop(Duration::from_millis(20)) {
                        Pop::Item(v) => consumed.lock().unwrap().push(v),
                        Pop::TimedOut => continue,
                        Pop::Drained => break,
                    }
                })
            })
            .collect();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut accepted = 0u64;
                let mut i = 0u64;
                while accepted < total {
                    if q.try_push(i).is_ok() {
                        accepted += 1;
                        i += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        producer.join().unwrap();
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        let mut got = consumed.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..total).collect::<Vec<_>>());
    }
}
