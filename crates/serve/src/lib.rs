//! `cppll-serve` — a fault-tolerant verification service.
//!
//! This crate turns the pipeline into a long-lived daemon: an HTTP/1.1
//! endpoint (plain `std::net`, zero dependencies) accepts verification
//! jobs, runs them on a pool of supervised, process-isolated workers, and
//! degrades *gracefully* instead of falling over:
//!
//! - **Bounded admission** ([`queue::BoundedQueue`]): a full queue answers
//!   `429` + `Retry-After`; memory never grows with offered load.
//! - **Crash-resume** ([`pool`]): workers are `cppll-harness`-supervised
//!   processes; a killed worker resumes from its checkpoint journal and
//!   lands the *same* result digest it would have without the crash.
//! - **Certificate cache** ([`cppll_verify::checkpoint::CertificateCache`]):
//!   repeat specs are answered from disk in milliseconds, keyed by the same
//!   problem fingerprint the journals use.
//! - **Circuit breaker** ([`breaker::CircuitBreaker`]): specs whose workers
//!   die repeatedly are quarantined (`409`) instead of burning worker slots
//!   forever.
//! - **Graceful drain** ([`signal`], [`server::Server::shutdown`]):
//!   SIGTERM stops admission, queued and running jobs reach a terminal
//!   state, and the process exits `0`.
//! - **Observability**: `/metrics` serves the `cppll-trace` Prometheus
//!   dump (job counters plus queue/in-flight gauges); `/healthz` reports
//!   drain state.
//! - **Retention GC** ([`gc`]): old run journals and cache entries are
//!   collected by age/count, never touching a run an in-flight job might
//!   resume from.

pub mod breaker;
pub mod gc;
pub mod http;
pub mod job;
pub mod pool;
pub mod queue;
pub mod server;
pub mod signal;

pub use breaker::CircuitBreaker;
pub use gc::{gc_runs, GcPolicy, GcReport};
pub use http::client_request;
pub use job::{JobKind, JobParseError, JobRecord, JobRegistry, JobRequest, JobState};
pub use pool::{run_job, JobContext, JobOutcome, JobRunner, WorkerSupervision};
pub use queue::{BoundedQueue, Pop, PushError};
pub use server::{ServeOptions, Server};
pub use signal::{install_shutdown_handler, request_shutdown, shutdown_requested};
