//! A deliberately minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! The daemon needs exactly four things from HTTP: parse a request line,
//! read headers, read a `Content-Length` body, and write a response with
//! `Connection: close`. Anything fancier (chunked encoding, keep-alive,
//! pipelining) adds failure modes without adding value to a job-submission
//! API, so it is intentionally absent; every connection carries one
//! request. Malformed input maps to a `400`, oversized input to `413`,
//! and a stalled peer is cut off by the socket read timeout rather than
//! wedging an acceptor thread forever.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on request bodies. Specs are small JSON documents; anything
/// bigger is a client bug or abuse.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (uppercased by the client, taken verbatim).
    pub method: String,
    /// Request path (no query parsing: the API does not use queries).
    pub path: String,
    /// Headers as `(lowercased-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed (mapped to a status code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically broken request head → 400.
    Malformed(String),
    /// Head or body above the hard limits → 413.
    TooLarge,
}

impl HttpError {
    /// The status code this parse failure answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::TooLarge => 413,
        }
    }
}

/// Reads one request from the stream.
///
/// # Errors
///
/// `std::io::Error` for transport failures (timeouts included); an inner
/// [`HttpError`] for protocol failures that deserve an HTTP answer.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Result<Request, HttpError>> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    // Request line.
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Ok(Err(HttpError::Malformed("empty request".into())));
    }
    head.push_str(&line);
    let mut parts = line.split_ascii_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Ok(Err(HttpError::Malformed("bad request line".into())));
    };
    let method = method.to_string();
    let path = path.to_string();

    // Headers.
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Ok(Err(HttpError::TooLarge));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Ok(Err(HttpError::Malformed(format!("bad header: {trimmed}"))));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body.
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>());
    let body = match content_length {
        None => Vec::new(),
        Some(Err(_)) => {
            return Ok(Err(HttpError::Malformed("bad content-length".into())));
        }
        Some(Ok(n)) if n > MAX_BODY_BYTES => return Ok(Err(HttpError::TooLarge)),
        Some(Ok(n)) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
    };

    Ok(Ok(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `Content-Length`, and
    /// `Connection: close` are always emitted).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; version=0.0.4",
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialises and writes the response; the connection is then done.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason);
        head.push_str(&format!("Content-Type: {}\r\n", self.content_type));
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str("Connection: close\r\n");
        for (k, v) in &self.headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Minimal one-shot client: connect, send one request, read the full
/// response. Used by the CLI's `submit`/`status` commands and by tests.
///
/// # Errors
///
/// Transport failures and responses with an unparseable status line.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(60)))?;
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(b) = body {
        req.push_str("Content-Type: application/json\r\n");
        req.push_str(&format!("Content-Length: {}\r\n", b.len()));
    }
    req.push_str("\r\n");
    if let Some(b) = body {
        req.push_str(b);
    }
    stream.write_all(req.as_bytes())?;
    stream.flush()?;
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split_ascii_whitespace().next())
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response status line")
        })?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn).unwrap();
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(
            b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert_eq!(round_trip(b"\r\n").unwrap_err().status(), 400);
        assert_eq!(
            round_trip(b"POST /jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        let huge = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(round_trip(huge.as_bytes()).unwrap_err().status(), 413);
    }

    #[test]
    fn response_writes_content_length_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            Response::json(429, "{\"error\":\"full\"}")
                .with_header("Retry-After", "2")
                .write_to(&mut conn)
                .unwrap();
        });
        let mut s = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        server.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"full\"}"), "{text}");
    }
}
